"""Tests for the extension applications: graph matching, frequent cliques,
and transactional (multi-graph) FSM."""

import itertools

import pytest

from repro.apps import (
    FrequentCliqueMining,
    GraphCollection,
    GraphMatching,
    TidSet,
    TransactionalFSM,
    frequent_clique_patterns,
    pattern_embeds_in,
    transactional_frequent_patterns,
)
from repro.core import ArabesqueConfig, Pattern, run_computation
from repro.graph import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    graph_from_edges,
    path_graph,
)
from repro.isomorphism import distinct_embeddings

TRIANGLE = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0)))
PATH3 = Pattern((0, 0, 0), ((0, 1, 0), (1, 2, 0)))
EDGE = Pattern((0, 0), ((0, 1, 0),))


class TestPatternEmbedsIn:
    def test_edge_in_triangle(self):
        assert pattern_embeds_in(EDGE, TRIANGLE, induced=False)
        assert pattern_embeds_in(EDGE, TRIANGLE, induced=True)

    def test_path_in_triangle_monomorphism_only(self):
        assert pattern_embeds_in(PATH3, TRIANGLE, induced=False)
        assert not pattern_embeds_in(PATH3, TRIANGLE, induced=True)

    def test_size_pruning(self):
        assert not pattern_embeds_in(TRIANGLE, EDGE, induced=False)

    def test_labels_respected(self):
        labeled_edge = Pattern((1, 2), ((0, 1, 0),))
        labeled_triangle = Pattern((1, 1, 2), ((0, 1, 0), (0, 2, 0), (1, 2, 0)))
        assert pattern_embeds_in(labeled_edge, labeled_triangle, induced=False)
        wrong = Pattern((3, 3), ((0, 1, 0),))
        assert not pattern_embeds_in(wrong, labeled_triangle, induced=False)


class TestGraphMatching:
    @pytest.mark.parametrize("seed", [1, 4])
    def test_matches_vf2_induced(self, seed):
        g = gnm_random_graph(15, 45, seed=seed)
        result = run_computation(g, GraphMatching(TRIANGLE, induced=True))
        ours = {frozenset(m) for m in result.outputs}
        expected = distinct_embeddings(
            TRIANGLE.vertex_labels, TRIANGLE.edge_dict(), g, induced=True
        )
        assert ours == expected

    def test_each_match_reported_once(self):
        g = complete_graph(5)
        result = run_computation(g, GraphMatching(TRIANGLE, induced=True))
        assert len(result.outputs) == len(set(result.outputs)) == 10

    def test_path_query_induced(self):
        g = cycle_graph(6)
        result = run_computation(g, GraphMatching(PATH3, induced=True))
        assert len(result.outputs) == 6

    def test_path_query_in_clique_no_induced_match(self):
        g = complete_graph(4)
        result = run_computation(g, GraphMatching(PATH3, induced=True))
        assert result.outputs == []

    def test_edge_based_monomorphism_mode(self):
        g = complete_graph(4)
        result = run_computation(g, GraphMatching(PATH3, induced=False))
        # Every vertex pair plus a middle: 4*3/2 choose middle... count via
        # VF2 distinct vertex sets of the monomorphism.
        expected = distinct_embeddings(
            PATH3.vertex_labels, PATH3.edge_dict(), g, induced=False
        )
        # Edge-based exploration reports edge-subgraph matches: each pattern
        # instance is an edge set whose vertex set we compare.
        assert {frozenset(m) for m in result.outputs} == expected

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            GraphMatching(Pattern((), ()))

    def test_worker_invariance(self):
        g = gnm_random_graph(14, 40, seed=3)
        reference = run_computation(g, GraphMatching(TRIANGLE)).outputs
        parallel = run_computation(
            g, GraphMatching(TRIANGLE), ArabesqueConfig(num_workers=4)
        ).outputs
        assert sorted(reference) == sorted(parallel)


class TestFrequentCliques:
    def test_unlabeled_triangles(self):
        g = complete_graph(5)
        result = run_computation(g, FrequentCliqueMining(2, max_size=3))
        frequent = frequent_clique_patterns(result, 2)
        # Patterns: single vertex, edge, triangle — all with support >= 2.
        assert all(p.num_vertices <= 3 for p in frequent)
        triangle = TRIANGLE.canonical()
        assert triangle in frequent
        assert frequent[triangle] == 5  # all 5 vertices participate

    def test_labeled_thresholding(self):
        # Two labeled triangles of shape (1,1,2) and one of shape (1,2,2).
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7), (7, 8), (6, 8)],
            vertex_labels=[1, 1, 2, 1, 1, 2, 1, 2, 2],
        )
        result = run_computation(g, FrequentCliqueMining(2, max_size=3))
        frequent = frequent_clique_patterns(result, 2)
        shape_112 = Pattern((1, 1, 2), ((0, 1, 0), (0, 2, 0), (1, 2, 0))).canonical()
        shape_122 = Pattern((1, 2, 2), ((0, 1, 0), (0, 2, 0), (1, 2, 0))).canonical()
        assert shape_112 in frequent
        assert shape_122 not in frequent

    def test_outputs_carry_support(self):
        g = complete_graph(4)
        result = run_computation(g, FrequentCliqueMining(2, max_size=3))
        for row in result.outputs:
            assert row.support >= 2
            assert row.pattern.is_canonical()

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequentCliqueMining(0)
        with pytest.raises(ValueError):
            FrequentCliqueMining(2, max_size=0)


class TestGraphCollection:
    def test_union_sizes(self):
        collection = GraphCollection([path_graph(3), complete_graph(3)])
        assert collection.union_graph.num_vertices == 6
        assert collection.union_graph.num_edges == 2 + 3

    def test_graph_of(self):
        collection = GraphCollection([path_graph(3), complete_graph(4), path_graph(2)])
        assert collection.graph_of(0) == 0
        assert collection.graph_of(2) == 0
        assert collection.graph_of(3) == 1
        assert collection.graph_of(6) == 1
        assert collection.graph_of(7) == 2

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            GraphCollection([])

    def test_components_stay_separate(self):
        collection = GraphCollection([path_graph(3), path_graph(3)])
        components = collection.union_graph.connected_components()
        assert len(components) == 2


class TestTidSet:
    def test_merge(self):
        merged = TidSet.merge_all([TidSet.single(1), TidSet.single(2), TidSet.single(1)])
        assert merged.support == 2

    def test_equality_and_wire_size(self):
        assert TidSet.single(3) == TidSet.single(3)
        assert TidSet.single(3).wire_size() == 8


class TestTransactionalFsm:
    def test_gspan_semantics(self):
        # Triangle occurs in graphs 0 and 2; path-only in graph 1.
        graphs = [complete_graph(3), path_graph(3), complete_graph(3)]
        collection = GraphCollection(graphs)
        app = TransactionalFSM(collection, support_threshold=2, max_edges=3)
        result = run_computation(collection.union_graph, app)
        frequent = transactional_frequent_patterns(result, 2)
        triangle = TRIANGLE.canonical()
        path = PATH3.canonical()
        edge = EDGE.canonical()
        assert frequent[edge] == 3
        assert frequent[path] == 3  # path occurs inside the triangles too
        assert frequent[triangle] == 2

    def test_threshold_prunes(self):
        graphs = [complete_graph(3), path_graph(3), path_graph(4)]
        collection = GraphCollection(graphs)
        app = TransactionalFSM(collection, support_threshold=3, max_edges=3)
        result = run_computation(collection.union_graph, app)
        frequent = transactional_frequent_patterns(result, 3)
        assert TRIANGLE.canonical() not in frequent
        assert PATH3.canonical() in frequent

    def test_support_counts_graphs_not_embeddings(self):
        # One graph with MANY triangles still counts as support 1.
        graphs = [complete_graph(6), path_graph(3)]
        collection = GraphCollection(graphs)
        app = TransactionalFSM(collection, support_threshold=2, max_edges=3)
        result = run_computation(collection.union_graph, app)
        frequent = transactional_frequent_patterns(result, 2)
        assert TRIANGLE.canonical() not in frequent

    def test_anti_monotone_termination(self):
        graphs = [gnm_random_graph(8, 14, seed=i) for i in range(4)]
        collection = GraphCollection(graphs)
        app = TransactionalFSM(collection, support_threshold=4)
        result = run_computation(collection.union_graph, app)
        # Terminates without a max_edges cap because support dies out.
        assert result.num_steps < 20

    def test_validation(self):
        collection = GraphCollection([path_graph(2)])
        with pytest.raises(ValueError):
            TransactionalFSM(collection, 0)
        with pytest.raises(ValueError):
            TransactionalFSM(collection, 1, max_edges=0)
