"""Tests for checkpointed out-of-core execution (repro.checkpoint).

Four concerns:

* **spill store** — :class:`SpillListStore` stays under its byte budget
  by writing sorted segment files, and its streamed extraction is
  byte-identical to a merged-and-sorted :class:`ListStore`;
* **snapshot writer** — versioned checksummed files, atomic naming,
  retain-last-K, fresh-run clearing;
* **crash-resume** — a run killed at *any* barrier (in-process raise or
  a real ``SIGKILL``) resumes to a ``canonical_signature`` byte-identical
  to the uninterrupted run, across every storage mode and backend, even
  when the resumed half runs with different execution knobs;
* **facade** — ``.checkpoint()`` / ``.cancellation()`` / ``Miner.resume``
  validate eagerly and round-trip through the session layer.

The determinism contract these tests lean on (pinned by
``test_properties.py``): at a FIXED worker count every backend yields
byte-identical full-order signatures; across worker counts only the
order-normalized signature (``ignore_output_order=True``) is invariant,
because ODAG's block round-robin extraction legitimately reorders
emissions.  Resume comparisons therefore pair each resumed run with a
fresh run at the SAME (storage, backend, workers) combination.
"""

import dataclasses
import os
import pickle
import signal

import pytest

from repro.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.checkpoint import (
    CheckpointWriter,
    CrashingWriter,
    InjectedCrash,
    graph_fingerprint,
    list_snapshots,
    load_latest,
    run_to_crash,
    resume_run,
)
from repro.core import (
    ArabesqueConfig,
    CancelFlag,
    LIST_STORAGE,
    ListStore,
    Pattern,
    RunCancelled,
    SPILL_STORAGE,
    STORAGE_MODES,
    SpillListStore,
    run_computation,
)
from repro.graph import assign_labels, complete_graph, gnm_random_graph, strip_labels
from repro.session import Miner, SessionError


def crash_graph():
    """Small but multi-barrier: cliques up to size 4 snapshot barriers
    0..3 (the size-5 step finds nothing and breaks before snapshotting)."""
    return complete_graph(7)


def mining_graph():
    return assign_labels(gnm_random_graph(10, 22, seed=11), 2, seed=12)


P_EDGE = Pattern((1, 2), ((0, 1, 0),))
P_PATH = Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0)))


# ---------------------------------------------------------------------------
# SpillListStore
# ---------------------------------------------------------------------------
class TestSpillListStore:
    def _fill(self, store, n=200, width=3):
        for i in range(n):
            store.add(P_PATH, (i, i + 1, i + 2))
            if width > 2:
                store.add(P_EDGE, (n - i, n - i + 1))

    def test_spills_past_budget_and_tracks_peak(self, tmp_path):
        store = SpillListStore(directory=str(tmp_path), budget_nbytes=512)
        self._fill(store)
        assert store.spill_count > 0
        assert store.num_segments > 0
        assert store.peak_memory_nbytes <= 512 + 4 + 4 * 3  # one-row slack
        segments = [n for n in os.listdir(tmp_path) if n.endswith(".seg")]
        assert len(segments) == store.num_segments

    def test_extraction_matches_sorted_list_store(self, tmp_path):
        spill = SpillListStore(directory=str(tmp_path), budget_nbytes=256)
        reference = ListStore()
        rows = [(P_PATH, (9 - i, i, i + 1)) for i in range(10)] + [
            (P_EDGE, (i % 5, i)) for i in range(1, 11)
        ]
        for pattern, words in rows:
            spill.add(pattern, words)
            reference.add(pattern, words)
        reference.sort()
        for workers in (1, 2, 3, 7):
            for worker in range(workers):
                assert list(spill.extract_partition(worker, workers)) == list(
                    reference.extract_partition(worker, workers)
                )

    def test_wire_size_and_counts_match_list_store(self, tmp_path):
        spill = SpillListStore(directory=str(tmp_path), budget_nbytes=128)
        reference = ListStore()
        self._fill(spill, n=50)
        self._fill(reference, n=50)
        assert spill.wire_size() == reference.wire_size()
        assert spill.num_embeddings == reference.num_embeddings
        assert spill.patterns() == reference.patterns()

    def test_merge_accepts_spill_and_list_sources(self, tmp_path):
        merged = SpillListStore(directory=str(tmp_path), budget_nbytes=256, tag="m")
        other_spill = SpillListStore(
            directory=str(tmp_path), budget_nbytes=128, tag="a"
        )
        other_list = ListStore()
        self._fill(other_spill, n=40)
        other_list.add(P_EDGE, (900, 901))
        merged.merge(other_spill)
        merged.merge(other_list)
        assert merged.num_embeddings == other_spill.num_embeddings + 1
        with pytest.raises(TypeError):
            merged.merge(object())

    def test_dispose_removes_segments(self, tmp_path):
        store = SpillListStore(directory=str(tmp_path), budget_nbytes=64)
        self._fill(store, n=60)
        assert any(name.endswith(".seg") for name in os.listdir(tmp_path))
        store.dispose()
        assert not any(name.endswith(".seg") for name in os.listdir(tmp_path))

    def test_owned_directory_is_created_and_disposed(self):
        store = SpillListStore(budget_nbytes=64)
        self._fill(store, n=60)
        directory = store._directory
        assert directory is not None and os.path.isdir(directory)
        store.dispose()
        assert not os.path.exists(directory)

    def test_survives_pickling_with_segments_on_disk(self, tmp_path):
        """The process backend ships worker deltas by pickling; a spill
        store's segment paths must stay valid across the round-trip."""
        store = SpillListStore(directory=str(tmp_path), budget_nbytes=128)
        self._fill(store, n=40)
        clone = pickle.loads(pickle.dumps(store))
        assert list(clone.extract_partition(0, 1)) == list(
            store.extract_partition(0, 1)
        )

    def test_engine_spill_results_match_list_storage(self):
        graph = mining_graph()
        reference = run_computation(
            graph,
            CliqueFinding(max_size=3, min_size=2),
            ArabesqueConfig(storage=LIST_STORAGE),
        )
        spilled = run_computation(
            graph,
            CliqueFinding(max_size=3, min_size=2),
            ArabesqueConfig(storage=SPILL_STORAGE, spill_budget_nbytes=128),
        )
        assert (
            spilled.canonical_signature() == reference.canonical_signature()
        )

    def test_engine_cleans_up_spill_root(self, tmp_path):
        config = ArabesqueConfig(
            storage=SPILL_STORAGE,
            spill_budget_nbytes=128,
            spill_dir=str(tmp_path),
        )
        run_computation(mining_graph(), MotifCounting(3), config)
        assert os.listdir(tmp_path) == []  # per-run root removed


# ---------------------------------------------------------------------------
# Snapshot writer
# ---------------------------------------------------------------------------
class TestCheckpointWriter:
    def _run(self, run_dir, keep=2, every=1):
        config = ArabesqueConfig(
            checkpoint_dir=str(run_dir),
            checkpoint_keep=keep,
            checkpoint_every=every,
        )
        return run_computation(
            crash_graph(), CliqueFinding(max_size=4, min_size=2), config
        )

    def test_retains_only_the_newest_keep_snapshots(self, tmp_path):
        self._run(tmp_path, keep=2)
        steps = [step for step, _ in list_snapshots(str(tmp_path))]
        assert steps == [1, 2]  # barriers 0..2 written, oldest pruned

    def test_checkpoint_every_skips_barriers(self, tmp_path):
        self._run(tmp_path, keep=10, every=2)
        steps = [step for step, _ in list_snapshots(str(tmp_path))]
        assert steps == [1]  # only (step + 1) % 2 == 0 barriers

    def test_fresh_run_clears_stale_snapshots_lazily(self, tmp_path):
        self._run(tmp_path, keep=10)
        stale = [path for _, path in list_snapshots(str(tmp_path))]
        assert stale
        writer = CheckpointWriter(str(tmp_path), keep=10, fresh=True)
        # Nothing destroyed until the new run actually writes...
        assert [path for _, path in list_snapshots(str(tmp_path))] == stale
        writer.write(0, load_latest(str(tmp_path)))
        steps = [step for step, _ in list_snapshots(str(tmp_path))]
        assert steps == [0]  # ...then the stale sequence is gone

    def test_no_tmp_files_left_behind(self, tmp_path):
        self._run(tmp_path)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointWriter(str(tmp_path), keep=0)


# ---------------------------------------------------------------------------
# Crash-resume: every barrier, every storage, across backends/workers
# ---------------------------------------------------------------------------
def _fresh_signature(graph, config):
    return run_computation(
        graph, CliqueFinding(max_size=4, min_size=2), config
    ).canonical_signature()


class TestCrashResume:
    @pytest.mark.parametrize("storage", STORAGE_MODES)
    @pytest.mark.parametrize("crash_after", [0, 1, 2])
    def test_every_barrier_and_storage_resumes_byte_identically(
        self, tmp_path, storage, crash_after
    ):
        graph = crash_graph()
        config = ArabesqueConfig(
            storage=storage, spill_budget_nbytes=256, checkpoint_keep=2
        )
        run_to_crash(
            graph,
            CliqueFinding(max_size=4, min_size=2),
            config,
            str(tmp_path),
            crash_after,
        )
        resumed = resume_run(str(tmp_path), graph, config=config)
        assert resumed.canonical_signature() == _fresh_signature(graph, config)

    @pytest.mark.parametrize(
        "backend,workers", [("serial", 3), ("thread", 2), ("process", 2)]
    )
    def test_backends_and_worker_counts_resume_byte_identically(
        self, tmp_path, backend, workers
    ):
        graph = crash_graph()
        config = ArabesqueConfig(
            storage=LIST_STORAGE, backend=backend, num_workers=workers
        )
        run_to_crash(
            graph, CliqueFinding(max_size=4, min_size=2), config, str(tmp_path), 1
        )
        resumed = resume_run(str(tmp_path), graph, config=config)
        # Full-order equality holds at the same (backend, workers) combo.
        assert resumed.canonical_signature() == _fresh_signature(graph, config)

    def test_execution_knobs_may_change_across_the_crash(self, tmp_path):
        graph = crash_graph()
        before = ArabesqueConfig(storage=LIST_STORAGE, num_workers=1)
        run_to_crash(
            graph, CliqueFinding(max_size=4, min_size=2), before, str(tmp_path), 1
        )
        after = dataclasses.replace(
            before, backend="thread", num_workers=3, checkpoint_every=2
        )
        resumed = resume_run(str(tmp_path), graph, config=after)
        reference = run_computation(
            graph, CliqueFinding(max_size=4, min_size=2), before
        )
        # Different worker counts reorder emissions (ODAG round-robin), so
        # only the order-normalized signature is comparable here.
        assert resumed.canonical_signature(
            ignore_output_order=True
        ) == reference.canonical_signature(ignore_output_order=True)

    def test_aggregating_workload_resumes_byte_identically(self, tmp_path):
        graph = mining_graph()
        config = ArabesqueConfig()
        writer = CrashingWriter(str(tmp_path), crash_after_step=1)
        from repro.core.engine import ArabesqueEngine

        with pytest.raises(InjectedCrash):
            ArabesqueEngine(
                graph, MotifCounting(3), config, checkpointer=writer
            ).run()
        resumed = resume_run(str(tmp_path), graph)
        reference = run_computation(graph, MotifCounting(3), ArabesqueConfig())
        assert resumed.canonical_signature() == reference.canonical_signature()

    def test_fsm_cross_step_aggregates_resume_byte_identically(self, tmp_path):
        graph = mining_graph()
        config = ArabesqueConfig()
        computation = FrequentSubgraphMining(2, max_edges=3)
        run_to_crash(graph, computation, config, str(tmp_path), 1)
        resumed = resume_run(str(tmp_path), graph)
        reference = run_computation(
            graph, FrequentSubgraphMining(2, max_edges=3), ArabesqueConfig()
        )
        assert resumed.canonical_signature() == reference.canonical_signature()

    def test_repeated_crashes_resume_from_the_latest_barrier(self, tmp_path):
        """A resumed run keeps checkpointing into the run dir, so a second
        crash re-executes only from the newest barrier."""
        graph = crash_graph()
        config = ArabesqueConfig(storage=LIST_STORAGE)
        run_to_crash(
            graph, CliqueFinding(max_size=4, min_size=2), config, str(tmp_path), 0
        )
        with pytest.raises(InjectedCrash):
            # Crash the RESUMED run too, at a later barrier.
            payload = load_latest(str(tmp_path))
            from repro.checkpoint.resume import (
                build_resume_config,
                validate_payload,
            )
            from repro.checkpoint.snapshot import payload_resume_state
            from repro.core.engine import ArabesqueEngine

            validate_payload(payload, graph, config)
            run_config = build_resume_config(payload, str(tmp_path), config)
            writer = CrashingWriter(
                str(tmp_path), crash_after_step=2, fresh=False
            )
            ArabesqueEngine(
                graph,
                payload["computation"],
                run_config,
                checkpointer=writer,
            ).run(resume_state=payload_resume_state(payload))
        assert load_latest(str(tmp_path))["step"] == 2
        resumed = resume_run(str(tmp_path), graph, config=config)
        assert resumed.canonical_signature() == _fresh_signature(graph, config)

    def test_hard_kill_sigkill_after_barrier_then_resume(self, tmp_path):
        """The real thing: a forked child SIGKILLs itself right after the
        barrier-1 snapshot lands — no finally blocks, no interpreter
        shutdown — and the parent resumes from what ``os.replace`` made
        durable."""
        graph = crash_graph()
        config = ArabesqueConfig(storage=LIST_STORAGE)
        pid = os.fork()
        if pid == 0:  # child: die hard, never return into pytest
            try:
                run_to_crash(
                    graph,
                    CliqueFinding(max_size=4, min_size=2),
                    config,
                    str(tmp_path),
                    1,
                    action=lambda: os.kill(os.getpid(), signal.SIGKILL),
                )
            finally:
                os._exit(1)  # pragma: no cover - only on injection failure
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        assert load_latest(str(tmp_path))["step"] == 1
        resumed = resume_run(str(tmp_path), graph, config=config)
        assert resumed.canonical_signature() == _fresh_signature(graph, config)

    def test_spill_run_snapshots_portable_rows(self, tmp_path):
        """Spill-mode snapshots materialize the rows (segment files die
        with the run): resume works even though the original spill
        directory is gone."""
        graph = crash_graph()
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        config = ArabesqueConfig(
            storage=SPILL_STORAGE,
            spill_budget_nbytes=128,
            spill_dir=str(spill_dir),
        )
        run_dir = tmp_path / "run"
        run_to_crash(
            graph, CliqueFinding(max_size=4, min_size=2), config, str(run_dir), 1
        )
        for name in os.listdir(spill_dir):  # simulate the crash's cleanup loss
            import shutil

            shutil.rmtree(spill_dir / name)
        resumed = resume_run(str(run_dir), graph, config=config)
        assert resumed.canonical_signature() == _fresh_signature(graph, config)

    def test_crash_past_the_last_barrier_is_a_loud_test_bug(self, tmp_path):
        with pytest.raises(RuntimeError, match="finished before"):
            run_to_crash(
                crash_graph(),
                CliqueFinding(max_size=4, min_size=2),
                ArabesqueConfig(),
                str(tmp_path),
                99,
            )


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------
class TestCancellation:
    def test_preset_flag_cancels_at_the_first_barrier(self):
        flag = CancelFlag()
        flag.set()
        with pytest.raises(RunCancelled, match="barrier"):
            run_computation(
                crash_graph(),
                CliqueFinding(max_size=4, min_size=2),
                ArabesqueConfig(cancel=flag),
            )

    def test_flag_set_from_another_thread_stops_the_run(self):
        import threading

        flag = CancelFlag()
        started = threading.Event()

        class Slow(CliqueFinding):
            def filter(self, embedding):
                started.set()
                return super().filter(embedding)

        def arm():
            started.wait(timeout=30)
            flag.set()

        killer = threading.Thread(target=arm)
        killer.start()
        try:
            with pytest.raises(RunCancelled):
                run_computation(
                    complete_graph(9),
                    Slow(max_size=6, min_size=2),
                    ArabesqueConfig(cancel=flag),
                )
        finally:
            killer.join(timeout=30)

    def test_cancel_must_be_a_cancel_flag(self):
        with pytest.raises(ValueError, match="cancel"):
            ArabesqueConfig(cancel=object())


# ---------------------------------------------------------------------------
# Session facade
# ---------------------------------------------------------------------------
class TestFacade:
    def test_checkpoint_and_resume_round_trip(self, tmp_path):
        miner = Miner(mining_graph())
        run_dir = tmp_path / "run"
        result = miner.cliques(max_size=3, min_size=2).checkpoint(run_dir).run()
        resumed = miner.resume(str(run_dir))
        assert (
            resumed.canonical_signature()
            == result.raw.canonical_signature()
        )

    def test_resume_retries_the_stripped_variant(self, tmp_path):
        """A run chained with .unlabeled() snapshots the stripped graph's
        fingerprint; Miner.resume on the same dataset must find it."""
        miner = Miner(mining_graph())
        run_dir = tmp_path / "run"
        result = (
            miner.cliques(max_size=3, min_size=2)
            .unlabeled()
            .checkpoint(run_dir)
            .run()
        )
        assert graph_fingerprint(miner.graph) != graph_fingerprint(
            strip_labels(miner.graph)
        )
        resumed = miner.resume(str(run_dir))
        assert (
            resumed.canonical_signature()
            == result.raw.canonical_signature()
        )

    def test_spill_storage_flows_through_the_facade(self):
        miner = Miner(mining_graph())
        spilled = miner.cliques(max_size=3, min_size=2).storage("spill").run()
        listed = miner.cliques(max_size=3, min_size=2).storage("list").run()
        assert (
            spilled.raw.canonical_signature()
            == listed.raw.canonical_signature()
        )

    def test_options_validate_eagerly(self):
        query = Miner(mining_graph()).cliques(max_size=3)
        with pytest.raises(SessionError, match="checkpoint"):
            query.checkpoint("")
        with pytest.raises(SessionError, match="CancelFlag"):
            query.cancellation("not a flag")
