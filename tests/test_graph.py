"""Unit tests for the LabeledGraph substrate."""

import pytest

import pickle

from repro.graph import (
    GraphError,
    LabeledGraph,
    complete_graph,
    cycle_graph,
    from_bitset,
    graph_from_edges,
    grid_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def triangle_with_tail():
    # 0-1-2 triangle, 2-3 tail; labels 5,6,7,8; edge labels 10..13.
    return LabeledGraph(
        vertex_labels=[5, 6, 7, 8],
        edges=[(0, 1), (1, 2), (0, 2), (2, 3)],
        edge_labels=[10, 11, 12, 13],
        name="tri-tail",
    )


class TestConstruction:
    def test_counts(self, triangle_with_tail):
        assert triangle_with_tail.num_vertices == 4
        assert triangle_with_tail.num_edges == 4

    def test_name(self, triangle_with_tail):
        assert triangle_with_tail.name == "tri-tail"

    def test_num_vertex_labels(self, triangle_with_tail):
        assert triangle_with_tail.num_vertex_labels == 4

    def test_average_degree(self, triangle_with_tail):
        assert triangle_with_tail.average_degree() == pytest.approx(2.0)

    def test_empty_graph(self):
        g = LabeledGraph([], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree() == 0.0
        assert g.num_vertex_labels == 0

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 0], [(1, 1)])

    def test_rejects_parallel_edge(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 0], [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 0], [(0, 5)])

    def test_rejects_edge_label_mismatch(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 0], [(0, 1)], edge_labels=[1, 2])

    def test_default_edge_labels_are_zero(self):
        g = LabeledGraph([0, 0], [(0, 1)])
        assert g.edge_label(0) == 0


class TestAccessors:
    def test_vertex_labels(self, triangle_with_tail):
        assert triangle_with_tail.vertex_label(0) == 5
        assert triangle_with_tail.vertex_labels == (5, 6, 7, 8)

    def test_neighbors_sorted(self, triangle_with_tail):
        assert tuple(triangle_with_tail.neighbors(2)) == (0, 1, 3)

    def test_neighbor_bits(self, triangle_with_tail):
        assert from_bitset(triangle_with_tail.neighbor_bits(0)) == (1, 2)

    def test_label_bits_match_index(self, triangle_with_tail):
        for label in (5, 6, 7, 8):
            assert from_bitset(triangle_with_tail.label_bits(label)) == (
                triangle_with_tail.vertices_with_label(label)
            )
        assert triangle_with_tail.label_bits(99) == 0

    def test_degree(self, triangle_with_tail):
        assert triangle_with_tail.degree(2) == 3
        assert triangle_with_tail.degree(3) == 1

    def test_adjacent(self, triangle_with_tail):
        assert triangle_with_tail.adjacent(0, 1)
        assert triangle_with_tail.adjacent(1, 0)
        assert not triangle_with_tail.adjacent(0, 3)

    def test_edge_endpoints_normalized(self, triangle_with_tail):
        assert triangle_with_tail.edge_endpoints(3) == (2, 3)

    def test_edge_id_symmetric(self, triangle_with_tail):
        assert triangle_with_tail.edge_id(1, 2) == 1
        assert triangle_with_tail.edge_id(2, 1) == 1

    def test_edge_id_missing_raises(self, triangle_with_tail):
        with pytest.raises(GraphError):
            triangle_with_tail.edge_id(0, 3)

    def test_edge_label(self, triangle_with_tail):
        assert triangle_with_tail.edge_label(2) == 12
        assert triangle_with_tail.edge_labels == (10, 11, 12, 13)

    def test_incident_edges(self, triangle_with_tail):
        assert tuple(triangle_with_tail.incident_edges(2)) == (1, 2, 3)

    def test_incident_bits(self, triangle_with_tail):
        assert from_bitset(triangle_with_tail.incident_bits(2)) == (1, 2, 3)

    def test_edge_between(self, triangle_with_tail):
        assert triangle_with_tail.edge_between(1, 2) == 1
        assert triangle_with_tail.edge_between(2, 1) == 1
        assert triangle_with_tail.edge_between(0, 3) is None

    def test_uniform_edge_label(self, triangle_with_tail):
        assert triangle_with_tail.uniform_edge_label is None
        unlabeled = LabeledGraph([0, 0], [(0, 1)])
        assert unlabeled.uniform_edge_label == 0
        assert LabeledGraph([0], []).uniform_edge_label == 0

    def test_memory_nbytes_positive(self, triangle_with_tail):
        assert triangle_with_tail.memory_nbytes() > 0

    def test_edge_other_endpoint(self, triangle_with_tail):
        assert triangle_with_tail.edge_other_endpoint(3, 2) == 3
        assert triangle_with_tail.edge_other_endpoint(3, 3) == 2

    def test_edge_other_endpoint_rejects_non_endpoint(self, triangle_with_tail):
        with pytest.raises(GraphError):
            triangle_with_tail.edge_other_endpoint(3, 0)

    def test_edge_iter(self, triangle_with_tail):
        triples = list(triangle_with_tail.edge_iter())
        assert triples[0] == (0, 0, 1)
        assert len(triples) == 4


class TestStructureHelpers:
    def test_vertex_label_histogram(self):
        g = LabeledGraph([1, 1, 2], [(0, 1), (1, 2)])
        assert g.vertex_label_histogram() == {1: 2, 2: 1}

    def test_induced_edge_ids(self, triangle_with_tail):
        assert triangle_with_tail.induced_edge_ids([0, 1, 2]) == [0, 1, 2]
        assert triangle_with_tail.induced_edge_ids([0, 3]) == []

    def test_is_connected_vertex_set(self, triangle_with_tail):
        assert triangle_with_tail.is_connected_vertex_set([0, 1, 2, 3])
        assert not triangle_with_tail.is_connected_vertex_set([0, 3])
        assert not triangle_with_tail.is_connected_vertex_set([])

    def test_connected_components_single(self, triangle_with_tail):
        assert triangle_with_tail.connected_components() == [[0, 1, 2, 3]]

    def test_connected_components_multiple(self):
        g = LabeledGraph([0] * 5, [(0, 1), (2, 3)])
        assert g.connected_components() == [[0, 1], [2, 3], [4]]

    def test_equality_and_hash(self):
        g1 = LabeledGraph([1, 2], [(0, 1)], [3])
        g2 = LabeledGraph([1, 2], [(0, 1)], [3], name="other")
        g3 = LabeledGraph([1, 2], [(0, 1)], [4])
        assert g1 == g2  # name excluded from identity
        assert hash(g1) == hash(g2)
        assert g1 != g3

    def test_relabel_with_sequence(self, triangle_with_tail):
        g = triangle_with_tail.relabel([0, 0, 0, 0])
        assert g.vertex_labels == (0, 0, 0, 0)
        assert g.num_edges == triangle_with_tail.num_edges

    def test_relabel_with_mapping(self, triangle_with_tail):
        g = triangle_with_tail.relabel({0: 99})
        assert g.vertex_label(0) == 99
        assert g.vertex_label(1) == 6

    def test_relabel_rejects_bad_length(self, triangle_with_tail):
        with pytest.raises(GraphError):
            triangle_with_tail.relabel([0, 0])

    def test_pickle_round_trip(self, triangle_with_tail):
        clone = pickle.loads(pickle.dumps(triangle_with_tail))
        assert clone == triangle_with_tail
        assert clone.name == triangle_with_tail.name
        assert tuple(clone.neighbors(2)) == (0, 1, 3)
        assert clone.edge_label(2) == 12


class TestNamedShapes:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_path_graph(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_rejects_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(6)
        assert g.num_vertices == 7
        assert g.degree(0) == 6

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_graph_from_edges_infers_size(self):
        g = graph_from_edges([(0, 3), (1, 2)])
        assert g.num_vertices == 4

    def test_graph_from_edges_rejects_short_labels(self):
        with pytest.raises(GraphError):
            graph_from_edges([(0, 3)], vertex_labels=[0])
