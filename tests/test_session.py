"""Tests for the `Miner` session facade (repro.session).

Four concerns:

* **fluency + validation** — every chainable option validates loudly at
  build time; conflicting combinations raise `SessionError` before
  anything runs;
* **equivalence** — each facade query is byte-identical
  (`canonical_signature`) to the legacy wiring it replaced, across
  serial/thread/process backends;
* **session caching** — a reused `Miner` demonstrably skips plan
  recompilation and step-0 universe re-setup;
* **result views / streaming** — typed accessors agree with the legacy
  post-processing helpers, and `.stream()` iterates the right items.
"""

import dataclasses

import pytest

from repro.apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    GraphMatching,
    GuidedMatching,
    MaximalCliqueFinding,
    MotifCounting,
    cliques_by_size,
    frequent_patterns,
    match_vertex_sets,
    motif_counts,
    run_matching,
    single_motif_count,
)
from repro.core import (
    ArabesqueConfig,
    Computation,
    Pattern,
    run_computation,
)
from repro.graph import assign_labels, gnm_random_graph, strip_labels
from repro.plan import NAMED_SHAPES, compile_plan
from repro.session import (
    CliqueResult,
    FSMResult,
    MatchResult,
    Miner,
    MiningResult,
    MotifResult,
    SessionError,
)

BACKENDS = ("serial", "thread", "process")


@pytest.fixture
def graph():
    return assign_labels(gnm_random_graph(24, 60, seed=5), 3, seed=5)


@pytest.fixture
def miner(graph):
    return Miner(graph)


# ---------------------------------------------------------------------------
# Fluency + option validation
# ---------------------------------------------------------------------------
class TestFluentOptions:
    def test_options_chain_and_return_the_query(self, miner):
        query = miner.motifs(max_size=3)
        assert (
            query.backend("thread").workers(2).storage("list").collect(False)
            is query
        )

    def test_unknown_backend_rejected_eagerly(self, miner):
        with pytest.raises(SessionError, match="unknown backend 'gpu'"):
            miner.motifs(3).backend("gpu")

    def test_unknown_storage_rejected_eagerly(self, miner):
        with pytest.raises(SessionError, match="unknown storage mode"):
            miner.cliques(3).storage("ram")

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True])
    def test_bad_worker_counts_rejected(self, miner, bad):
        with pytest.raises(SessionError, match="workers"):
            miner.fsm(2).workers(bad)

    def test_negative_limit_rejected(self, miner):
        with pytest.raises(SessionError, match="limit"):
            miner.cliques(3).limit(-1)

    def test_limit_conflicts_with_collect_false(self, miner):
        with pytest.raises(SessionError, match="collect"):
            miner.cliques(3).collect(False).limit(10)
        with pytest.raises(SessionError, match="limit"):
            miner.cliques(3).limit(10).collect(False)

    def test_limit_conflicts_with_uncollected_base_config(self, miner):
        query = miner.cliques(3).config(
            ArabesqueConfig(collect_outputs=False)
        ).limit(5)
        with pytest.raises(SessionError, match="collect_outputs=False"):
            query.run()

    def test_config_requires_arabesque_config(self, miner):
        with pytest.raises(SessionError, match="ArabesqueConfig"):
            miner.motifs(3).config({"num_workers": 2})

    def test_miner_requires_a_graph(self):
        with pytest.raises(SessionError, match="LabeledGraph"):
            Miner("citeseer")

    def test_workload_arguments_validated_eagerly(self, miner):
        with pytest.raises(ValueError):
            miner.motifs(max_size=0)
        with pytest.raises(ValueError):
            miner.fsm(0)
        with pytest.raises(ValueError):
            miner.cliques(max_size=0)
        with pytest.raises(SessionError):
            miner.compute("not a computation")

    def test_plan_carrying_config_rejected_for_non_pattern_query(self, miner):
        plan = compile_plan(NAMED_SHAPES["triangle"])
        query = miner.motifs(3).config(ArabesqueConfig(plan=plan))
        with pytest.raises(SessionError, match="MatchingPlan"):
            query.run()


class TestMatchStrategyValidation:
    def test_exhaustive_then_plan_conflicts(self, miner):
        plan = compile_plan(NAMED_SHAPES["triangle"])
        query = miner.match("triangle").unlabeled().exhaustive()
        with pytest.raises(SessionError, match="exhaustive"):
            query.plan(plan)

    def test_plan_then_exhaustive_conflicts(self, miner):
        plan = compile_plan(NAMED_SHAPES["triangle"])
        query = miner.match("triangle").unlabeled().plan(plan)
        with pytest.raises(SessionError, match="precompiled plan"):
            query.exhaustive()

    def test_plan_semantics_must_match(self, miner):
        plan = compile_plan(NAMED_SHAPES["triangle"], induced=True)
        with pytest.raises(SessionError, match="induced="):
            miner.match("triangle", induced=False).plan(plan)

    def test_plan_pattern_must_match(self, miner):
        plan = compile_plan(NAMED_SHAPES["square"].canonical())
        with pytest.raises(SessionError, match="different query pattern"):
            miner.match("triangle").plan(plan)

    def test_plan_must_be_a_matching_plan(self, miner):
        with pytest.raises(SessionError, match="MatchingPlan"):
            miner.match("triangle").plan("triangle")

    def test_guided_exhaustive_only_for_plan_capable_queries(self, miner):
        with pytest.raises(SessionError, match="cliques"):
            miner.cliques(3).guided()
        with pytest.raises(SessionError, match="cliques"):
            miner.cliques(3).exhaustive()
        with pytest.raises(SessionError, match="cliques"):
            miner.cliques(3).plan(compile_plan(NAMED_SHAPES["triangle"]))
        # FSM and motifs are plan-capable (guided by default) but compile
        # their own multi-query DAGs — a single precompiled plan is
        # rejected.
        with pytest.raises(SessionError, match="multi-query"):
            miner.fsm(2).plan(compile_plan(NAMED_SHAPES["triangle"]))
        with pytest.raises(SessionError, match="multi-query"):
            miner.motifs(3).plan(compile_plan(NAMED_SHAPES["triangle"]))
        assert miner.fsm(2).exhaustive().is_guided is False
        assert miner.fsm(2).guided().is_guided is True
        assert miner.motifs(3).exhaustive().is_guided is False
        assert miner.motifs(3).guided().is_guided is True

    def test_disconnected_pattern_rejected_at_build(self, miner):
        disconnected = Pattern((0, 0, 0, 0), ((0, 1, 0), (2, 3, 0)))
        with pytest.raises(SessionError, match="connected"):
            miner.match(disconnected)

    def test_empty_pattern_rejected_at_build(self, miner):
        with pytest.raises(SessionError, match="empty"):
            miner.match(Pattern((), ()))

    def test_unknown_shape_name_rejected_at_build(self, miner):
        with pytest.raises(ValueError, match="neither a named shape"):
            miner.match("heptadecagon")

    def test_non_pattern_query_rejected_at_build(self, miner):
        with pytest.raises(SessionError, match="Pattern"):
            miner.match(12345)

    def test_labeled_query_on_stripped_graph_rejected(self, miner):
        labeled = Pattern((1, 2), ((0, 1, 0),))
        query = miner.match(labeled).unlabeled()
        with pytest.raises(SessionError, match="labels"):
            query.run()
        # The same query on the labeled graph variant is fine.
        assert miner.match(labeled).run().num_matches >= 0


class TestStreamValidation:
    def test_stream_with_collect_false_rejected(self, miner):
        with pytest.raises(SessionError, match="stream"):
            miner.cliques(3).collect(False).stream()
        with pytest.raises(SessionError, match="stream"):
            miner.match("triangle").unlabeled().collect(False).stream()

    def test_stream_with_uncollected_base_config_rejected(self, miner):
        query = miner.cliques(3).config(ArabesqueConfig(collect_outputs=False))
        with pytest.raises(SessionError, match="stream"):
            query.stream()

    def test_aggregate_streams_work_without_collection(self, miner):
        # Motif and FSM streams come from aggregates, not outputs.
        motif_items = list(miner.motifs(3).unlabeled().collect(False).stream())
        assert motif_items
        fsm_items = list(miner.fsm(2, max_edges=2).collect(False).stream())
        assert all(support >= 2 for _, support in fsm_items)


# ---------------------------------------------------------------------------
# Equivalence with the legacy wiring (byte-identical signatures)
# ---------------------------------------------------------------------------
class TestLegacyEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_motifs_match_direct_engine_run(self, graph, backend):
        config = ArabesqueConfig(
            num_workers=2, backend=backend, collect_outputs=False
        )
        legacy = run_computation(strip_labels(graph), MotifCounting(3), config)
        facade = (
            Miner(graph).motifs(3).unlabeled()
            .workers(2).backend(backend).collect(False).run()
        )
        assert facade.signature() == legacy.canonical_signature()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_guided_match_equivalent_to_legacy_helper(self, graph, backend):
        # Storage pinned to the facade's guided default (list): output
        # *order* at multi-worker runs is only guaranteed byte-identical
        # at a fixed storage mode (the multiset always agrees).
        config = ArabesqueConfig(num_workers=2, backend=backend, storage="list")
        query = NAMED_SHAPES["square"]
        legacy = run_matching(
            strip_labels(graph), query, guided=True, config=config
        )
        facade = (
            Miner(graph).match(query).unlabeled()
            .workers(2).backend(backend).run()
        )
        assert facade.signature() == legacy.canonical_signature()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exhaustive_match_equivalent_to_legacy_helper(self, graph, backend):
        config = ArabesqueConfig(num_workers=2, backend=backend)
        query = NAMED_SHAPES["triangle"]
        legacy = run_matching(
            strip_labels(graph), query, guided=False, config=config
        )
        facade = (
            Miner(graph).match(query).unlabeled().exhaustive()
            .workers(2).backend(backend).run()
        )
        assert facade.signature() == legacy.canonical_signature()

    def test_guided_match_equivalent_to_direct_engine_wiring(self, graph):
        # Equivalence against the raw engine path (not the wrapper, which
        # itself delegates to the facade): GuidedMatching + config.plan.
        query = NAMED_SHAPES["square"].canonical()
        plan = compile_plan(query, induced=True)
        legacy = run_computation(
            strip_labels(graph), GuidedMatching(plan),
            ArabesqueConfig(plan=plan),
        )
        facade = Miner(graph).match(query).unlabeled().storage("odag").run()
        assert facade.signature() == legacy.canonical_signature()

    def test_exhaustive_match_equivalent_to_direct_engine_wiring(self, graph):
        query = NAMED_SHAPES["triangle"]
        legacy = run_computation(
            strip_labels(graph), GraphMatching(query, induced=True),
            ArabesqueConfig(),
        )
        facade = Miner(graph).match(query).unlabeled().exhaustive().run()
        assert facade.signature() == legacy.canonical_signature()

    def test_fsm_matches_direct_engine_run(self, graph):
        config = ArabesqueConfig(collect_outputs=False)
        legacy = run_computation(
            graph, FrequentSubgraphMining(3, max_edges=2), config
        )
        facade = (
            Miner(graph).fsm(3, max_edges=2).exhaustive().collect(False).run()
        )
        assert facade.signature() == legacy.canonical_signature()
        assert facade.patterns() == frequent_patterns(legacy, 3)
        # The guided default returns the identical pattern table through
        # a completely different execution strategy.
        guided = Miner(graph).fsm(3, max_edges=2).run()
        assert guided.guided and not facade.guided
        assert guided.patterns() == facade.patterns()

    def test_cliques_match_direct_engine_run(self, graph):
        legacy = run_computation(
            graph, CliqueFinding(max_size=4, min_size=3), ArabesqueConfig()
        )
        facade = Miner(graph).cliques(max_size=4, min_size=3).run()
        assert facade.signature() == legacy.canonical_signature()
        assert facade.by_size() == cliques_by_size(legacy)

    def test_maximal_cliques_match_direct_engine_run(self, graph):
        legacy = run_computation(
            graph, MaximalCliqueFinding(max_size=4), ArabesqueConfig()
        )
        facade = Miner(graph).maximal_cliques(max_size=4).run()
        assert facade.signature() == legacy.canonical_signature()

    def test_compute_escape_hatch_matches_direct_run(self, graph):
        legacy = run_computation(
            graph, CliqueFinding(max_size=3, min_size=3), ArabesqueConfig()
        )
        facade = Miner(graph).compute(
            CliqueFinding(max_size=3, min_size=3)
        ).run()
        assert isinstance(facade, MiningResult)
        assert facade.signature() == legacy.canonical_signature()

    def test_count_matches_single_motif_count(self, graph):
        stripped = strip_labels(graph)
        for name in ("triangle", "wedge", "square"):
            legacy = single_motif_count(stripped, NAMED_SHAPES[name])
            assert Miner(stripped).match(NAMED_SHAPES[name]).count() == legacy

    def test_guided_default_agrees_with_exhaustive_opt_out(self, miner):
        guided = miner.match("square").unlabeled().run()
        exhaustive = miner.match("square").unlabeled().exhaustive().run()
        assert guided.guided and guided.plan is not None
        assert not exhaustive.guided and exhaustive.plan is None
        assert guided.vertex_sets() == exhaustive.vertex_sets()
        assert guided.total_candidates < exhaustive.total_candidates

    def test_explicit_storage_and_config_override_guided_default(self, miner):
        # Guided queries default to list storage; an explicit .storage()
        # or a caller-supplied base config must win.
        auto = miner.match("triangle").unlabeled().run()
        assert auto.raw.steps[0].shipped_format == "list"
        odag = miner.match("triangle").unlabeled().storage("odag").run()
        assert odag.raw.steps[0].shipped_format == "odag"
        via_config = (
            miner.match("triangle").unlabeled()
            .config(ArabesqueConfig()).run()
        )
        assert via_config.raw.steps[0].shipped_format == "odag"
        assert auto.signature() == odag.signature() == via_config.signature()


# ---------------------------------------------------------------------------
# Session caching: reuse skips plan recompilation and step-0 setup
# ---------------------------------------------------------------------------
class TestSessionCaching:
    def test_repeated_pattern_query_skips_plan_compilation(
        self, miner, monkeypatch
    ):
        import repro.session.miner as miner_module

        calls = []
        real_compile = miner_module.compile_plan

        def counting_compile(pattern, induced=True, *, catalog=None):
            calls.append((pattern, induced))
            return real_compile(pattern, induced=induced, catalog=catalog)

        monkeypatch.setattr(miner_module, "compile_plan", counting_compile)
        first = miner.match("square").unlabeled().run()
        second = miner.match("square").unlabeled().run()
        assert first.signature() == second.signature()
        assert len(calls) == 1  # second query reused the cached plan
        info = miner.cache_info()
        assert info.plan_compilations == 1
        assert info.plan_hits == 1

    def test_plan_cache_is_per_semantics(self, miner):
        miner.match("wedge").unlabeled().run()
        miner.match("wedge", induced=False).unlabeled().run()
        assert miner.cache_info().plan_compilations == 2

    def test_reused_session_skips_step0_setup(self, miner, monkeypatch):
        import repro.core.engine as engine_module

        calls = []
        real_initial = engine_module.initial_candidates

        def counting_initial(graph, mode):
            calls.append(mode)
            return real_initial(graph, mode)

        monkeypatch.setattr(
            engine_module, "initial_candidates", counting_initial
        )
        # Session-path universes come from repro.session.miner's import.
        import repro.session.miner as miner_module

        monkeypatch.setattr(
            miner_module, "initial_candidates", counting_initial
        )
        # Guided motif and match queries bring their own step-0 pools
        # (the DAG root pools / the plan's label index), so they neither
        # build nor hit the universe; cliques build it once.
        miner.motifs(3).unlabeled().collect(False).run()
        miner.cliques(3, min_size=3).run()
        miner.match("triangle").unlabeled().run()
        assert calls == ["vertex"]  # one vertex universe, built once
        info = miner.cache_info()
        assert info.universe_builds == 1
        assert info.universe_hits == 0
        assert info.runs == 3
        miner.motifs(3).unlabeled().exhaustive().collect(False).run()
        assert miner.cache_info().universe_hits == 1
        miner.match("triangle").unlabeled().exhaustive().run()
        assert miner.cache_info().universe_hits == 2

    def test_universe_cached_per_exploration_mode(self, miner):
        # Exhaustive motifs build the vertex universe; exhaustive FSM is
        # the one edge-exploration workload.
        miner.motifs(3).unlabeled().exhaustive().collect(False).run()
        miner.fsm(3, max_edges=2).exhaustive().collect(False).run()
        miner.cliques(3, min_size=3).run()                 # vertex again
        info = miner.cache_info()
        assert info.universe_builds == 2
        assert info.universe_hits == 1
        # Guided FSM and guided motifs need no universe at all: DAG root
        # pools (label indexes / domain whitelists) are their step 0.
        miner.fsm(3, max_edges=2).run()
        miner.motifs(3).unlabeled().collect(False).run()
        info = miner.cache_info()
        assert info.universe_builds == 2
        assert info.universe_hits == 1

    def test_stripped_variant_built_once(self, miner):
        miner.motifs(3).unlabeled().collect(False).run()
        miner.match("triangle").unlabeled().run()
        assert miner.cache_info().strip_builds == 1

    def test_cache_info_is_a_snapshot(self, miner):
        before = miner.cache_info()
        miner.cliques(3).run()
        assert before.runs == 0
        assert miner.cache_info().runs == 1


# ---------------------------------------------------------------------------
# Result views and streaming
# ---------------------------------------------------------------------------
class TestResultViews:
    def test_motif_view_matches_helpers(self, miner):
        result = miner.motifs(3).unlabeled().collect(False).run()
        assert isinstance(result, MotifResult)
        assert result.counts() == motif_counts(result.raw)
        assert set(result.by_size()) == {3}

    def test_match_view_carries_strategy_metadata(self, miner):
        result = miner.match("triangle").unlabeled().run()
        assert isinstance(result, MatchResult)
        assert result.query == NAMED_SHAPES["triangle"].canonical()
        assert result.induced and result.guided
        assert result.plan.pattern == result.query
        assert result.num_matches == len(result.vertex_sets())

    def test_fsm_view_supports_post_filtering(self, miner):
        result = miner.fsm(2, max_edges=2).collect(False).run()
        assert isinstance(result, FSMResult)
        assert result.support_threshold == 2
        stricter = result.patterns(support_threshold=10)
        assert set(stricter) <= set(result.patterns())
        assert all(s >= 10 for s in stricter.values())
        # Filtering below the mined θ would silently miss patterns whose
        # ancestors were pruned — rejected instead.
        with pytest.raises(ValueError, match="re-mine"):
            result.patterns(support_threshold=1)

    def test_clique_view_flags_maximality(self, miner):
        all_cliques = miner.cliques(max_size=3, min_size=1).run()
        maximal = miner.maximal_cliques(max_size=3).run()
        assert isinstance(all_cliques, CliqueResult)
        assert not all_cliques.maximal and maximal.maximal
        for size, found in maximal.by_size().items():
            assert set(found) <= set(all_cliques.by_size().get(size, []))

    def test_summary_is_one_line(self, miner):
        summary = miner.cliques(3).run().summary()
        assert summary.startswith("#") and "\n" not in summary

    def test_match_stream_yields_sorted_vertex_sets(self, miner):
        result = miner.match("wedge").unlabeled().run()
        streamed = list(miner.match("wedge").unlabeled().stream())
        assert streamed == result.vertex_sets()

    def test_limit_caps_collected_outputs_but_not_counts(self, miner):
        capped = miner.cliques(3, min_size=1).limit(5).run()
        uncapped = miner.cliques(3, min_size=1).run()
        assert len(capped.outputs) == 5
        assert capped.num_outputs == uncapped.num_outputs > 5

    def test_count_disables_collection(self, miner):
        query = miner.cliques(3, min_size=3)
        count = query.count()
        assert count == miner.cliques(3, min_size=3).run().num_outputs
        assert count > 0

    def test_count_does_not_poison_later_runs(self, miner):
        # count() must override collection per-call, not mutate the query:
        # a later .run() on the same builder still collects outputs.
        query = miner.cliques(3, min_size=3)
        count = query.count()
        rerun = query.run()
        assert rerun.num_outputs == count
        assert len(rerun.outputs) == count
        assert rerun.by_size()
        # ...unless the query itself opted out of collection.
        opted_out = miner.cliques(3, min_size=3).collect(False)
        assert opted_out.count() == count
        assert opted_out.run().outputs == []

    def test_count_ignores_limit(self, miner):
        # limit() only caps collected outputs; the count stays exact and
        # count() must not trip over its own per-call collect override.
        query = miner.cliques(3, min_size=1).limit(5)
        exact = miner.cliques(3, min_size=1).run().num_outputs
        assert query.count() == exact > 5
        assert len(query.run().outputs) == 5  # the cap still holds for run()


# ---------------------------------------------------------------------------
# Deprecated wrappers still behave (and warn)
# ---------------------------------------------------------------------------
class TestDeprecatedWrappers:
    def test_run_matching_warns_but_delegates(self, graph):
        stripped = strip_labels(graph)
        with pytest.warns(DeprecationWarning, match="Miner"):
            legacy = run_matching(stripped, NAMED_SHAPES["triangle"])
        facade = Miner(stripped).match("triangle").exhaustive().run()
        assert facade.signature() == legacy.canonical_signature()

    def test_single_motif_count_warns_but_delegates(self, graph):
        stripped = strip_labels(graph)
        with pytest.warns(DeprecationWarning, match="Miner"):
            count = single_motif_count(stripped, NAMED_SHAPES["wedge"])
        assert count == Miner(stripped).match("wedge").count()

    def test_run_matching_still_rejects_plan_without_guided(self, graph):
        plan = compile_plan(NAMED_SHAPES["triangle"])
        with pytest.raises(ValueError, match="guided=False"):
            run_matching(
                strip_labels(graph), NAMED_SHAPES["triangle"],
                guided=False, plan=plan,
            )


# ---------------------------------------------------------------------------
# Engine-level universe injection guard
# ---------------------------------------------------------------------------
class TestUniverseInjection:
    def test_wrong_universe_rejected(self, graph):
        with pytest.raises(ValueError, match="universe"):
            run_computation(
                graph, CliqueFinding(max_size=3), ArabesqueConfig(),
                universe=(0, 1, 2),  # not every vertex
            )

    def test_injected_universe_matches_default(self, graph):
        default = run_computation(
            graph, CliqueFinding(max_size=3), ArabesqueConfig()
        )
        injected = run_computation(
            graph, CliqueFinding(max_size=3), ArabesqueConfig(),
            universe=tuple(graph.vertices()),
        )
        assert injected.canonical_signature() == default.canonical_signature()


# ---------------------------------------------------------------------------
# Thread safety: one shared Miner under concurrent query load
# ---------------------------------------------------------------------------
class TestThreadSafety:
    def test_concurrent_queries_share_caches_without_duplication(self, graph):
        """Hammer one session from many threads: every thread must see
        identical results, and the per-graph caches must show exactly one
        build per key — no duplicate compilations, no torn counters."""
        import threading

        shared = Miner(graph)
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        failures = []
        signatures = [None] * num_threads

        def worker(slot):
            try:
                barrier.wait(timeout=30)
                triangle = shared.match("triangle").run()
                wedge = shared.match("wedge").run()
                motifs = shared.motifs(3).collect(False).run()
                signatures[slot] = (
                    triangle.raw.canonical_signature(),
                    wedge.raw.canonical_signature(),
                    motifs.raw.canonical_signature(),
                )
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append((slot, exc))

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures

        assert all(sig is not None for sig in signatures)
        assert len(set(signatures)) == 1  # every thread saw the same bytes

        info = shared.cache_info()
        # Compile-under-lock: one plan per distinct (pattern, semantics),
        # one DAG per motif batch, no matter how many threads raced.
        assert info.plan_compilations == 2
        assert info.dag_compilations == 1
        # No torn counters: every run is accounted for, and every lookup
        # beyond the first build was a hit.
        assert info.runs == num_threads * 3
        assert info.plan_hits == num_threads * 2 - 2
        assert info.dag_hits == num_threads - 1

    def test_concurrent_unlabeled_runs_build_one_stripped_variant(self, graph):
        import threading

        shared = Miner(graph)
        barrier = threading.Barrier(6)
        failures = []

        def worker():
            try:
                barrier.wait(timeout=30)
                shared.match("wedge").unlabeled().run()
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        assert shared.cache_info().strip_builds == 1
