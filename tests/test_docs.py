"""Docs stay wired: relative links resolve and the checker itself works.

CI has a dedicated docs job running ``tools/check_links.py``; this
mirror in tier 1 means a broken link also fails the local suite, and the
checker's own parsing rules (code fences skipped, anchors validated)
are pinned down.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_links  # noqa: E402


class TestRepoDocs:
    def test_repo_markdown_links_resolve(self):
        problems = []
        for spec in ("README.md", "ROADMAP.md", "docs"):
            for path in check_links.collect_markdown([str(REPO / spec)]):
                problems.extend(check_links.check_file(path))
        assert problems == []

    def test_docs_exist_and_are_linked_from_readme(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme
        assert "docs/fsm.md" in readme
        assert (REPO / "docs" / "architecture.md").exists()
        assert (REPO / "docs" / "fsm.md").exists()

    def test_cli_entry_point(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_links.py"),
             str(REPO / "README.md")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout


class TestCheckerRules:
    def test_broken_relative_link_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[missing](nope.md)\n", encoding="utf-8")
        problems = check_links.check_file(doc)
        assert len(problems) == 1 and "nope.md" in problems[0]

    def test_existing_relative_link_ok(self, tmp_path):
        (tmp_path / "other.md").write_text("# Title\n", encoding="utf-8")
        doc = tmp_path / "doc.md"
        doc.write_text("[there](other.md)\n", encoding="utf-8")
        assert check_links.check_file(doc) == []

    def test_fragment_checked_against_headings(self, tmp_path):
        (tmp_path / "other.md").write_text(
            "# Big Title\n\n## Sub section\n", encoding="utf-8"
        )
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[good](other.md#sub-section)\n[bad](other.md#nope)\n",
            encoding="utf-8",
        )
        problems = check_links.check_file(doc)
        assert len(problems) == 1 and "#nope" in problems[0]

    def test_in_page_anchor(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# My Heading\n[jump](#my-heading)\n[bad](#absent)\n",
            encoding="utf-8",
        )
        problems = check_links.check_file(doc)
        assert len(problems) == 1 and "#absent" in problems[0]

    def test_code_fences_and_external_links_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```\n[fake](not_a_file.md)\n```\n"
            "[web](https://example.com/x)\n[mail](mailto:a@b.c)\n",
            encoding="utf-8",
        )
        assert check_links.check_file(doc) == []

    def test_directory_collection(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.md").write_text("ok\n", encoding="utf-8")
        (tmp_path / "sub" / "b.md").write_text("ok\n", encoding="utf-8")
        files = check_links.collect_markdown([str(tmp_path)])
        assert [f.name for f in files] == ["a.md", "b.md"]
