"""Tests for the BSP engine substrate: supersteps, messages, aggregators,
halting, and metrics."""

import pytest

from repro.bsp import (
    BspContext,
    BspEngine,
    BspError,
    CostModel,
    Message,
    Worker,
    dict_merge_aggregator,
    estimate_size,
    list_aggregator,
    max_aggregator,
    min_aggregator,
    speedup_curve,
    sum_aggregator,
)


class TestEstimateSize:
    def test_int(self):
        assert estimate_size(7) == 4

    def test_bool_and_none(self):
        assert estimate_size(True) == 1
        assert estimate_size(None) == 1

    def test_float(self):
        assert estimate_size(1.5) == 8

    def test_string(self):
        assert estimate_size("abc") == 4 + 3

    def test_nested_containers(self):
        # header + 2 ints, nested in a list: header + that.
        assert estimate_size([(1, 2)]) == 4 + (4 + 8)

    def test_dict(self):
        assert estimate_size({1: 2}) == 4 + 8

    def test_custom_wire_size(self):
        class Blob:
            def wire_size(self):
                return 123

        assert estimate_size(Blob()) == 123

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            estimate_size(object())

    def test_message_includes_header(self):
        assert Message(0, 1, 7).wire_size() == 8 + 4


class PingPong(Worker):
    """Bounces a counter between workers 0 and 1 for a fixed count."""

    def __init__(self, rounds):
        self.rounds = rounds
        self.received = []

    def compute(self, ctx, messages):
        if ctx.superstep == 0 and ctx.worker_id == 0:
            ctx.send(1, 0)
        for value in messages:
            self.received.append(value)
            if value < self.rounds:
                ctx.send(1 - ctx.worker_id, value + 1)
        ctx.vote_to_halt()


class TestEngineBasics:
    def test_ping_pong_terminates(self):
        workers = [PingPong(4), PingPong(4)]
        engine = BspEngine(workers)
        metrics = engine.run()
        assert workers[0].received == [1, 3]
        assert workers[1].received == [0, 2, 4]
        assert metrics.total_messages == 5

    def test_empty_workers_rejected(self):
        with pytest.raises(BspError):
            BspEngine([])

    def test_bad_destination_rejected(self):
        class Bad(Worker):
            def compute(self, ctx, messages):
                ctx.send(99, 1)

        with pytest.raises(BspError):
            BspEngine([Bad()]).run()

    def test_non_quiescent_run_capped(self):
        class Chatter(Worker):
            def compute(self, ctx, messages):
                ctx.send(ctx.worker_id, 1)  # message to self forever

        with pytest.raises(BspError):
            BspEngine([Chatter()], max_supersteps=5).run()

    def test_halt_without_messages_single_step(self):
        class Quiet(Worker):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        metrics = BspEngine([Quiet(), Quiet()]).run()
        assert metrics.num_supersteps == 1

    def test_setup_called_with_ids(self):
        seen = []

        class Probe(Worker):
            def setup(self, worker_id, num_workers):
                seen.append((worker_id, num_workers))

            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        BspEngine([Probe(), Probe(), Probe()]).run()
        assert seen == [(0, 3), (1, 3), (2, 3)]

    def test_messages_wake_halted_workers(self):
        log = []

        class Sleeper(Worker):
            def compute(self, ctx, messages):
                log.append((ctx.superstep, ctx.worker_id, list(messages)))
                if ctx.superstep == 0 and ctx.worker_id == 0:
                    ctx.send(1, "wake")
                ctx.vote_to_halt()

        BspEngine([Sleeper(), Sleeper()]).run()
        assert (1, 1, ["wake"]) in log
        # Worker 0 must not run again at superstep 1.
        assert not any(step == 1 and wid == 0 for step, wid, _ in log)


class TestBroadcast:
    def test_broadcast_reaches_all(self):
        received = {0: [], 1: [], 2: []}

        class Caster(Worker):
            def compute(self, ctx, messages):
                received[ctx.worker_id].extend(messages)
                if ctx.superstep == 0 and ctx.worker_id == 1:
                    ctx.broadcast("hello")
                ctx.vote_to_halt()

        BspEngine([Caster(), Caster(), Caster()]).run()
        assert all(msgs == ["hello"] for msgs in received.values())

    def test_broadcast_bytes_counted_once(self):
        class Caster(Worker):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.worker_id == 0:
                    ctx.broadcast(7)
                ctx.vote_to_halt()

        engine = BspEngine([Caster(), Caster(), Caster(), Caster()])
        metrics = engine.run()
        assert metrics.supersteps[0].broadcast_messages == 1
        assert metrics.supersteps[0].broadcast_bytes == 4
        # Broadcasts do not inflate the p2p counters.
        assert metrics.supersteps[0].messages_sent == 0


class TestAggregators:
    def _run_with(self, aggregator_factory, contributions, reader):
        values = {}

        class Contributor(Worker):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    for value in contributions[ctx.worker_id]:
                        ctx.aggregate("agg", value)
                else:
                    values[ctx.worker_id] = reader(ctx)
                ctx.vote_to_halt()

        class Wake(Worker):  # keep engine alive to superstep 1
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send(ctx.worker_id, "tick")
                ctx.vote_to_halt()

        workers = [Contributor() for _ in contributions]
        engine = BspEngine(workers, {"agg": aggregator_factory()})

        # Send self-messages so workers run at superstep 1 and read values.
        class Both(Contributor):
            def compute(self, ctx, messages):
                super().compute(ctx, messages)
                if ctx.superstep == 0:
                    ctx.send(ctx.worker_id, "tick")

        engine = BspEngine([Both() for _ in contributions], {"agg": aggregator_factory()})
        engine.run()
        return values

    def test_sum(self):
        values = self._run_with(sum_aggregator, [[1, 2], [3]], lambda c: c.get_aggregate("agg"))
        assert values == {0: 6, 1: 6}

    def test_max_min(self):
        vmax = self._run_with(max_aggregator, [[5], [9]], lambda c: c.get_aggregate("agg"))
        assert vmax[0] == 9
        vmin = self._run_with(min_aggregator, [[5], [9]], lambda c: c.get_aggregate("agg"))
        assert vmin[0] == 5

    def test_list(self):
        values = self._run_with(list_aggregator, [["a"], ["b"]], lambda c: sorted(c.get_aggregate("agg")))
        assert values[0] == ["a", "b"]

    def test_dict_merge(self):
        agg = lambda: dict_merge_aggregator(lambda old, new: old + new)
        values = self._run_with(
            agg, [[("k", 1)], [("k", 2), ("j", 5)]], lambda c: dict(c.get_aggregate("agg"))
        )
        assert values[0] == {"k": 3, "j": 5}

    def test_unknown_aggregator_raises(self):
        class Bad(Worker):
            def compute(self, ctx, messages):
                ctx.aggregate("nope", 1)

        with pytest.raises(BspError):
            BspEngine([Bad()]).run()

    def test_aggregate_visible_only_next_step(self):
        observations = []

        class Observer(Worker):
            def compute(self, ctx, messages):
                observations.append(ctx.get_aggregate("agg"))
                ctx.aggregate("agg", 10)
                if ctx.superstep == 0:
                    ctx.send(ctx.worker_id, "tick")
                ctx.vote_to_halt()

        BspEngine([Observer()], {"agg": sum_aggregator()}).run()
        assert observations == [0, 10]


class TestMetricsAndCostModel:
    def _run_star(self, hot_units):
        class Hot(Worker):
            def compute(self, ctx, messages):
                ctx.add_work(hot_units if ctx.worker_id == 0 else 1)
                ctx.vote_to_halt()

        engine = BspEngine([Hot() for _ in range(4)])
        return engine.run()

    def test_work_units_recorded(self):
        metrics = self._run_star(10)
        step = metrics.supersteps[0]
        assert step.max_work == 10
        assert step.total_work == 13

    def test_imbalance(self):
        metrics = self._run_star(10)
        assert metrics.supersteps[0].imbalance() == pytest.approx(10 / (13 / 4))

    def test_imbalance_of_empty_step(self):
        class Idle(Worker):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        metrics = BspEngine([Idle()]).run()
        assert metrics.supersteps[0].imbalance() == 1.0

    def test_cost_model_compute_dominates_hotspot(self):
        model = CostModel(barrier_seconds=0.0)
        balanced = self._run_star(1)
        skewed = self._run_star(1000)
        assert model.makespan(skewed) > model.makespan(balanced)

    def test_cost_model_broadcast_does_not_scale(self):
        # Same broadcast bytes on more workers should not get cheaper.
        class Caster(Worker):
            def compute(self, ctx, messages):
                if ctx.worker_id == 0 and ctx.superstep == 0:
                    ctx.broadcast(tuple(range(100_000)))
                ctx.vote_to_halt()

        model = CostModel(barrier_seconds=0.0)
        times = {}
        for workers in (2, 8):
            engine = BspEngine([Caster() for _ in range(workers)])
            times[workers] = model.makespan(engine.run())
        assert times[8] >= times[2] * 0.99

    def test_phase_seconds_accumulate(self):
        class Phased(Worker):
            def compute(self, ctx, messages):
                ctx.add_phase_time("G", 0.25)
                ctx.add_phase_time("G", 0.25)
                ctx.vote_to_halt()

        metrics = BspEngine([Phased()]).run()
        assert metrics.phase_totals() == {"G": 0.5}

    def test_speedup_curve_default_baseline(self):
        curve = speedup_curve({5: 10.0, 10: 5.0, 20: 2.5})
        assert curve[5] == pytest.approx(1.0)
        assert curve[20] == pytest.approx(4.0)

    def test_speedup_curve_explicit_baseline(self):
        curve = speedup_curve({1: 8.0, 2: 4.0}, baseline_workers=1)
        assert curve[2] == pytest.approx(2.0)

    def test_speedup_curve_empty(self):
        assert speedup_curve({}) == {}
