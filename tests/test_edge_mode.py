"""Edge-based exploration deep-dive: the mode FSM runs in.

Vertex-based exploration gets heavy coverage through motifs/cliques; these
tests pin the edge-mode specifics — edge-word canonicality through the full
engine, edge-mode ODAG spurious handling, and edge-mode extension
semantics."""

import itertools

import pytest

from repro.core import (
    ArabesqueConfig,
    Computation,
    EDGE_EXPLORATION,
    EdgeInducedEmbedding,
    LIST_STORAGE,
    run_computation,
)
from repro.core.canonical import canonicalize_edge_set
from repro.core.extension import edge_extensions
from repro.graph import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    graph_from_edges,
    path_graph,
    star_graph,
)


class CollectEdgeSubgraphs(Computation):
    """Outputs every explored edge set up to a size cap."""

    exploration_mode = EDGE_EXPLORATION

    def __init__(self, max_edges):
        super().__init__()
        self.max_edges = max_edges

    def filter(self, embedding):
        return embedding.num_edges <= self.max_edges

    def process(self, embedding):
        self.output(frozenset(embedding.words))

    def termination_filter(self, embedding):
        return embedding.num_edges >= self.max_edges


def connected_edge_sets(graph, max_edges):
    """Brute-force oracle: connected edge subsets up to max_edges."""

    def connected(edge_ids):
        span = {}

        def find(x):
            while span.setdefault(x, x) != x:
                span[x] = span[span[x]]
                x = span[x]
            return x

        for eid in edge_ids:
            u, v = graph.edge_endpoints(eid)
            ru, rv = find(u), find(v)
            if ru != rv:
                span[ru] = rv
        return len({find(x) for x in span}) == 1

    found = set()
    for size in range(1, max_edges + 1):
        for combo in itertools.combinations(range(graph.num_edges), size):
            if connected(combo):
                found.add(frozenset(combo))
    return found


class TestEdgeModeCompleteness:
    @pytest.mark.parametrize("seed", [1, 6])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_matches_bruteforce(self, seed, workers):
        g = gnm_random_graph(9, 16, seed=seed)
        config = ArabesqueConfig(num_workers=workers)
        result = run_computation(g, CollectEdgeSubgraphs(3), config)
        assert set(result.outputs) == connected_edge_sets(g, 3)
        assert result.num_outputs == len(result.outputs)  # no duplicates

    def test_star_graph_edge_subgraphs(self):
        # Star: every edge subset is connected (all share the hub).
        g = star_graph(5)
        result = run_computation(g, CollectEdgeSubgraphs(3))
        expected = sum(
            len(list(itertools.combinations(range(5), k))) for k in (1, 2, 3)
        )
        assert result.num_outputs == expected

    def test_cycle_edge_subgraphs(self):
        g = cycle_graph(5)
        result = run_computation(g, CollectEdgeSubgraphs(2))
        # 5 single edges + 5 adjacent pairs.
        assert result.num_outputs == 10

    @pytest.mark.parametrize("storage", ["odag", LIST_STORAGE, "adaptive"])
    def test_storage_modes_agree(self, storage):
        g = gnm_random_graph(10, 18, seed=3)
        config = ArabesqueConfig(storage=storage)
        result = run_computation(g, CollectEdgeSubgraphs(3), config)
        assert set(result.outputs) == connected_edge_sets(g, 3)


class TestEdgeExtensions:
    def test_extensions_are_incident(self):
        g = gnm_random_graph(12, 26, seed=4)
        words = canonicalize_edge_set(g, [0, *[e for e in g.incident_edges(
            g.edge_endpoints(0)[0]) if e != 0][:1]])
        for candidate in edge_extensions(g, words):
            u, v = g.edge_endpoints(candidate)
            span = set()
            for eid in words:
                span.update(g.edge_endpoints(eid))
            assert u in span or v in span

    def test_extensions_exclude_members(self):
        g = complete_graph(4)
        words = (0, 1)
        assert not set(words) & set(edge_extensions(g, words))

    def test_extensions_sorted(self):
        g = complete_graph(5)
        exts = edge_extensions(g, (0,))
        assert exts == sorted(exts)

    def test_path_end_extension(self):
        g = path_graph(4)  # edges 0,1,2 in a line
        assert edge_extensions(g, (0,)) == [1]
        assert edge_extensions(g, (0, 1)) == [2]


class TestEdgeEmbeddingSemantics:
    def test_pattern_excludes_absent_edges(self):
        # Triangle graph, embedding of 2 edges only: pattern has 2 edges.
        g = complete_graph(3)
        e = EdgeInducedEmbedding(g, (0, 1))
        assert e.pattern().num_edges == 2
        assert e.num_vertices == 3

    def test_multi_edge_between_same_vertices_impossible(self):
        # Edge words are unique ids; extending by a member id never happens.
        g = complete_graph(3)
        e = EdgeInducedEmbedding(g, (0,))
        assert 0 not in edge_extensions(g, e.words)

    def test_edge_mode_canonicalization_roundtrip(self):
        g = gnm_random_graph(8, 14, seed=7)
        for combo in itertools.combinations(range(g.num_edges), 3):
            try:
                words = canonicalize_edge_set(g, combo)
            except ValueError:
                continue  # disconnected
            assert frozenset(words) == frozenset(combo)
            assert words[0] == min(combo)
