"""Tests for graph text I/O (edge list and Arabesque adjacency formats)."""

import io

import pytest

from repro.graph import (
    GraphError,
    gnm_random_graph,
    assign_labels,
    graph_from_string,
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)


class TestEdgeList:
    def test_parse_basic(self):
        g = graph_from_string(
            """
            # a comment
            v a 1
            v b 2
            a b 9
            b c
            """
        )
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.vertex_label(0) == 1
        assert g.vertex_label(2) == 0  # implicit vertex
        assert g.edge_label(0) == 9
        assert g.edge_label(1) == 0

    def test_parse_rejects_malformed_vertex(self):
        with pytest.raises(GraphError):
            graph_from_string("v a\n")

    def test_parse_rejects_malformed_edge(self):
        with pytest.raises(GraphError):
            graph_from_string("a b c d\n")

    def test_roundtrip(self):
        g = assign_labels(gnm_random_graph(40, 90, seed=3), 5, seed=1)
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        parsed = read_edge_list(io.StringIO(buffer.getvalue()))
        assert parsed == g

    def test_file_roundtrip(self, tmp_path):
        g = assign_labels(gnm_random_graph(20, 30, seed=4), 3, seed=2)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_duplicate_edges_merged(self):
        g = graph_from_string("a b\nb a\na b\n")
        assert g.num_edges == 1


class TestAdjacency:
    def test_parse_basic(self):
        g = read_adjacency(io.StringIO("0 5 1 2\n1 6 0\n2 7 0\n"))
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.vertex_label(2) == 7
        assert g.adjacent(0, 2)

    def test_parse_rejects_sparse_ids(self):
        with pytest.raises(GraphError):
            read_adjacency(io.StringIO("0 1\n5 2\n"))

    def test_parse_rejects_duplicate_vertex(self):
        with pytest.raises(GraphError):
            read_adjacency(io.StringIO("0 1\n0 2\n"))

    def test_parse_rejects_missing_neighbor(self):
        with pytest.raises(GraphError):
            read_adjacency(io.StringIO("0 1 9\n"))

    def test_parse_rejects_short_line(self):
        with pytest.raises(GraphError):
            read_adjacency(io.StringIO("0\n"))

    def test_roundtrip_drops_edge_labels_only(self):
        g = assign_labels(gnm_random_graph(25, 40, seed=9), 4, seed=5)
        buffer = io.StringIO()
        write_adjacency(g, buffer)
        parsed = read_adjacency(io.StringIO(buffer.getvalue()))
        assert parsed.vertex_labels == g.vertex_labels
        assert parsed.num_edges == g.num_edges
        for v in g.vertices():
            assert parsed.neighbors(v) == g.neighbors(v)

    def test_file_roundtrip(self, tmp_path):
        g = gnm_random_graph(15, 20, seed=6)
        path = tmp_path / "g.adj"
        write_adjacency(g, path)
        parsed = read_adjacency(path)
        assert parsed.num_edges == g.num_edges
