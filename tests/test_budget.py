"""Tests for the engine-level budget hook (repro.core.budget).

Three concerns:

* **determinism** — an embedding budget trips at the same step with the
  same spent counter across serial/thread/process backends and worker
  counts, because it is checked only at BSP barriers on merged counters;
* **transparency** — an armed-but-untripped run is byte-identical
  (`canonical_signature`) to an unbudgeted run: arming a budget must
  never perturb results;
* **loudness** — `BudgetExceeded` carries the structured trip
  (kind/limit/spent), survives pickling (the process backend ships it
  from forked workers), and config/facade validation rejects nonsense
  budgets eagerly.
"""

import pickle

import pytest

from repro.core import (
    ArabesqueConfig,
    BudgetExceeded,
    DEADLINE_BUDGET,
    EMBEDDING_BUDGET,
)
from repro.graph import assign_labels, gnm_random_graph
from repro.session import Miner, SessionError

BACKENDS = ("serial", "thread", "process")


@pytest.fixture
def graph():
    return assign_labels(gnm_random_graph(24, 60, seed=5), 3, seed=5)


@pytest.fixture
def miner(graph):
    return Miner(graph)


class TestEmbeddingBudget:
    def test_trips_loudly_with_the_spent_counter(self, miner):
        with pytest.raises(BudgetExceeded) as excinfo:
            miner.motifs(3).exhaustive().collect(False).max_embeddings(5).run()
        exc = excinfo.value
        assert exc.kind == EMBEDDING_BUDGET
        assert exc.limit == 5
        assert exc.spent > 5
        assert "embedding budget" in str(exc)

    def test_trip_point_is_deterministic_across_backends(self, graph):
        spents = set()
        for backend in BACKENDS:
            for workers in (1, 3):
                with pytest.raises(BudgetExceeded) as excinfo:
                    (
                        Miner(graph)
                        .motifs(3)
                        .exhaustive()
                        .collect(False)
                        .backend(backend)
                        .workers(workers)
                        .max_embeddings(5)
                        .run()
                    )
                assert excinfo.value.kind == EMBEDDING_BUDGET
                spents.add(excinfo.value.spent)
        # Merged-at-the-barrier counters: every backend/worker combination
        # processes identical steps, so all report the same spent total.
        assert len(spents) == 1

    def test_generous_budget_never_trips_and_changes_nothing(self, miner):
        plain = miner.motifs(3).exhaustive().collect(False).run()
        budgeted = (
            miner.motifs(3)
            .exhaustive()
            .collect(False)
            .max_embeddings(10**9)
            .deadline(3600.0)
            .run()
        )
        assert (
            budgeted.raw.canonical_signature()
            == plain.raw.canonical_signature()
        )

    def test_finished_runs_beat_exact_budgets(self, miner):
        # The barrier check runs after the empty-store break: a run whose
        # exploration is complete returns results even at the exact limit.
        total = miner.motifs(3).exhaustive().collect(False).run().raw
        exact = (
            miner.motifs(3)
            .exhaustive()
            .collect(False)
            .max_embeddings(total.total_processed)
            .run()
        )
        assert (
            exact.raw.canonical_signature() == total.canonical_signature()
        )


class TestDeadlineBudget:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_impossible_deadline_trips(self, graph, backend):
        with pytest.raises(BudgetExceeded) as excinfo:
            (
                Miner(graph)
                .motifs(4)
                .exhaustive()
                .collect(False)
                .backend(backend)
                .workers(2)
                .deadline(1e-9)
                .run()
            )
        exc = excinfo.value
        assert exc.kind == DEADLINE_BUDGET
        assert exc.limit == pytest.approx(1e-9)
        assert exc.spent > exc.limit
        assert "deadline" in str(exc)

    def test_generous_deadline_is_invisible(self, miner):
        plain = miner.match("triangle").run()
        relaxed = miner.match("triangle").deadline(3600.0).run()
        assert (
            relaxed.raw.canonical_signature()
            == plain.raw.canonical_signature()
        )


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1.5, "fast", True, float("nan")])
    def test_facade_rejects_bad_deadlines(self, miner, bad):
        with pytest.raises(SessionError, match="deadline"):
            miner.motifs(3).deadline(bad)

    @pytest.mark.parametrize("bad", [0, -2, 1.5, "many", True])
    def test_facade_rejects_bad_embedding_budgets(self, miner, bad):
        with pytest.raises(SessionError, match="max_embeddings"):
            miner.motifs(3).max_embeddings(bad)

    def test_config_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            ArabesqueConfig(deadline_seconds=0)
        with pytest.raises(ValueError, match="max_embeddings"):
            ArabesqueConfig(max_embeddings=0)


class TestBudgetExceeded:
    def test_pickle_round_trip(self):
        exc = BudgetExceeded(EMBEDDING_BUDGET, 10, 25)
        clone = pickle.loads(pickle.dumps(exc))
        assert (clone.kind, clone.limit, clone.spent) == (
            EMBEDDING_BUDGET,
            10,
            25,
        )
        assert str(clone) == str(exc)

    def test_mid_step_probe_message_without_limits(self):
        exc = BudgetExceeded(DEADLINE_BUDGET)
        assert exc.limit is None and exc.spent is None
        assert "deadline" in str(exc)
