"""Differential kernel-test harness for the fused DAG stepper.

The fused multi-query kernel (:meth:`repro.plan.dag.DagStepper.step`)
must be *indistinguishable* from the legacy per-candidate stepper it
replaced — candidate-for-candidate, survivor-for-survivor, emission
order included — on every path through it:

* **differential replay** — the full exploration tree of every bundled
  dataset × motif/FSM-style batch is replayed through the fused stepper
  (adaptive, forced-rows, forced-masks) AND the legacy
  ``candidates()``+``check()`` pair, hard-asserting pool-size and
  survivor-stream equality at every state and accepting-leaf equality
  at every emission point;
* **hybrid fallback regression** — the degree-adaptive decision
  (:func:`repro.plan.guided.prefers_row_iteration`) is pinned: sparse
  low-degree pools (the citeseer triangle case, by name) take the
  row-iteration path, dense pools take the mask path, and both paths
  produce identical streams for the single-plan kernel and the DAG
  kernel alike;
* **property tests** (hypothesis) — random graphs × random pattern
  batches: the fused DAG-guided engine's per-leaf counts equal the
  per-pattern guided counts equal the exhaustive filter-process oracle,
  and a :class:`~repro.plan.dag.DagMaskBundle` rebuilt from scratch
  after :func:`~repro.plan.dag.restrict_dag` is identical to the
  memoized one;
* **restriction composition** — ``restrict_plan``/``restrict_dag``
  applied twice compose by intersection (never a silent overwrite) and
  are idempotent, at the step level and in end-to-end counts.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import GraphMatching, enumerate_motif_patterns
from repro.core import ArabesqueConfig, Pattern, run_computation
from repro.datasets import (
    citeseer_like,
    instagram_like,
    mico_like,
    patents_like,
    sn_like,
    youtube_like,
)
from repro.graph import assign_labels, gnm_random_graph, strip_labels
from repro.graph.bitset import to_bitset
from repro.plan import NAMED_SHAPES, build_plan_dag, compile_plan, restrict_dag
from repro.plan.dag import DagMaskBundle, DagStepper, has_mask_bundle, mask_bundle
from repro.plan.fsm_guide import (
    label_triples,
    one_edge_extensions,
    single_edge_candidates,
)
from repro.plan.guided import (
    SMALL_POOL_DEGREE,
    guided_survivors,
    prefers_row_iteration,
)
from repro.plan.planner import restrict_plan
from repro.session import Miner


def shapes(*names):
    return tuple(NAMED_SHAPES[name].canonical() for name in names)


# ---------------------------------------------------------------------------
# The differential replay core
# ---------------------------------------------------------------------------
def replay_tree(dag, graph, max_states=None):
    """Replay the whole DAG exploration tree through four steppers.

    At every surviving state the fused kernel (adaptive), the fused
    kernel pinned to each hybrid path, and the legacy per-candidate
    stepper (memoized ``candidates()`` + ``check()`` — exactly what the
    runtime ran before the fusion) must agree on the candidate pool
    size, the survivor stream (ascending — the emission order), the
    accepting leaves, and extendability.  Returns
    ``(num_states, num_survivors, emissions)``.
    """
    fused = DagStepper(dag, graph)
    forced_rows = DagStepper(dag, graph)
    forced_masks = DagStepper(dag, graph)
    legacy = DagStepper(dag, graph)
    emissions = []
    stack = [()]
    num_states = 0
    num_survivors = 0
    while stack:
        words = stack.pop()
        num_states += 1
        if max_states is not None and num_states > max_states:
            break
        num_candidates, survivors = fused.step(words)
        rows_candidates, rows_survivors = forced_rows.step(words, strategy="rows")
        masks_candidates, masks_survivors = forced_masks.step(
            words, strategy="masks"
        )
        pool = legacy.candidates(words)
        legacy_survivors = tuple(
            word for word in pool if legacy.check(graph, words, word)
        )
        assert (
            num_candidates
            == rows_candidates
            == masks_candidates
            == len(pool)
        ), f"pool sizes diverge at {words}"
        assert (
            survivors == rows_survivors == masks_survivors == legacy_survivors
        ), f"survivor streams diverge at {words}"
        num_survivors += len(survivors)
        for word in survivors:
            child = words + (word,)
            accepting = fused.accepting(child)
            assert accepting == legacy.accepting(child), (
                f"accepting leaves diverge at {child}"
            )
            emissions.extend((child, member) for member in accepting)
            extendable = fused.extendable(child)
            assert extendable == legacy.extendable(child), (
                f"extendability diverges at {child}"
            )
            if extendable:
                stack.append(child)
    return num_states, num_survivors, emissions


def fsm_style_dag(graph, max_patterns=6, min_degree=2):
    """A monomorphic, whitelist-restricted DAG — the guided-FSM shape.

    Level-1/2 candidates from the graph's own label triples, compiled
    monomorphic and restricted with a degree->=k domain per pattern
    vertex (the parent-domain push-down form).
    """
    triples = label_triples(graph)
    batch = list(single_edge_candidates(graph))
    for pattern in batch[:2]:
        batch.extend(one_edge_extensions(pattern, triples))
    batch = tuple(dict.fromkeys(batch))[:max_patterns]
    dag = build_plan_dag(batch, induced=False)
    domain = frozenset(
        v for v in graph.vertices() if graph.degree(v) >= min_degree
    )
    return restrict_dag(
        dag,
        {
            pattern: {v: domain for v in range(pattern.num_vertices)}
            for pattern in batch
        },
    )


# ---------------------------------------------------------------------------
# Differential replay over every bundled dataset
# ---------------------------------------------------------------------------
def _bounded_labels(graph, max_labels=4):
    """Coarsen wide label alphabets so motif enumeration stays tiny.

    The mico/patents/youtube generators ship dozens of labels; a
    size-3 motif sweep over them is tens of thousands of canonical
    candidates (pure enumeration cost, nothing kernel-related).  Four
    labels keep every labeled code path live — mixed edge-label
    confirms included — with double-digit batches.
    """
    if len(set(graph.vertex_labels)) <= max_labels:
        return graph
    return assign_labels(graph, max_labels, seed=0)


#: Every bundled dataset at a tiny scale (~100-250 vertices: the scale
#: knob is relative to PAPER size, not the default).  Sizes keep the
#: full-tree replay affordable while covering every graph family the
#: package ships: sparse scale-free labeled (citeseer), dense labeled
#: (mico, patents, youtube), near-regular unlabeled (sn), and sparse
#: unlabeled (instagram).
BUNDLED = [
    ("citeseer", lambda: citeseer_like(scale=0.06)),
    ("mico", lambda: _bounded_labels(mico_like(scale=0.0015))),
    ("patents", lambda: _bounded_labels(patents_like(scale=0.00005))),
    ("youtube", lambda: _bounded_labels(youtube_like(scale=0.00003))),
    ("sn", lambda: sn_like(scale=0.00002)),
    ("instagram", lambda: instagram_like(scale=0.0000008)),
]


class TestDifferentialReplay:
    @pytest.mark.parametrize(
        "name,factory", BUNDLED, ids=[name for name, _ in BUNDLED]
    )
    def test_motif_batch_fused_equals_legacy(self, name, factory):
        graph = factory()
        batch = enumerate_motif_patterns(graph, 3, min_size=2)
        assert batch, f"{name}: motif batch must not be empty"
        dag = build_plan_dag(batch, induced=True)
        num_states, num_survivors, emissions = replay_tree(
            dag, graph, max_states=4000
        )
        assert num_states > 1, f"{name}: replay must explore the tree"
        assert num_survivors > 0
        assert emissions, f"{name}: no emissions — batch too restrictive"

    @pytest.mark.parametrize(
        "name,factory", BUNDLED, ids=[name for name, _ in BUNDLED]
    )
    def test_fsm_batch_fused_equals_legacy(self, name, factory):
        graph = factory()
        dag = fsm_style_dag(graph)
        num_states, _, emissions = replay_tree(dag, graph, max_states=4000)
        assert num_states > 1, f"{name}: replay must explore the tree"
        assert emissions, f"{name}: no emissions — whitelists too tight"

    def test_unlabeled_shape_batch_with_symmetry_restrictions(self):
        graph = strip_labels(gnm_random_graph(30, 90, seed=5))
        dag = build_plan_dag(
            shapes("wedge", "triangle", "square", "diamond"), induced=True
        )
        _, num_survivors, emissions = replay_tree(dag, graph)
        assert num_survivors > 0 and emissions

    def test_engine_run_matches_per_pattern_counts(self):
        # End to end: the engine's expansion pass now calls the fused
        # kernel; its leaf counts must still equal solo guided matching.
        graph = strip_labels(gnm_random_graph(25, 60, seed=9))
        batch = shapes("wedge", "triangle", "square")
        miner = Miner(graph)
        counts = _engine_leaf_counts(graph, build_plan_dag(batch, induced=True))
        for member, pattern in enumerate(batch):
            assert counts.get(member, 0) == miner.match(pattern).count()


def _engine_leaf_counts(graph, dag):
    """Leaf counts from a real engine run over the fused DAG path."""
    from repro.core import Computation
    from repro.plan.dag import accepting_patterns, dag_extendable

    class LeafCounter(Computation):
        plan_compatible = True

        def __init__(self, plan):
            super().__init__()
            self.plan = plan

        def process(self, embedding):
            for member in accepting_patterns(
                self.plan, embedding.graph, embedding.words
            ):
                self.map_output(member, 1)

        def reduce_output(self, key, counts):
            return sum(counts)

        def termination_filter(self, embedding):
            return not dag_extendable(
                self.plan, embedding.graph, embedding.words
            )

    run = run_computation(
        graph,
        LeafCounter(dag),
        ArabesqueConfig(plan=dag, collect_outputs=False, storage="list"),
    )
    return {
        member: count
        for member, count in run.output_aggregates.items()
        if isinstance(member, int)
    }


# ---------------------------------------------------------------------------
# Hybrid fallback regression (the citeseer-triangle fix, pinned)
# ---------------------------------------------------------------------------
class TestHybridFallback:
    def test_threshold_boundary(self):
        assert prefers_row_iteration(0)
        assert prefers_row_iteration(SMALL_POOL_DEGREE)
        assert not prefers_row_iteration(SMALL_POOL_DEGREE + 1)
        assert not prefers_row_iteration(10 * SMALL_POOL_DEGREE)

    def _plan_states(self, plan, graph):
        states = []
        stack = [()]
        while stack:
            words = stack.pop()
            states.append(words)
            _, survivors = guided_survivors(plan, graph, words)
            for word in survivors:
                child = words + (word,)
                if len(child) < plan.num_steps:
                    stack.append(child)
        return states

    def test_citeseer_triangle_sparse_pools_take_the_row_path(self):
        # THE regression case: citeseer is sparse (avg degree ~2.8), so
        # triangle anchors are low-degree and universe-width mask algebra
        # used to lose to the legacy kernel (0.75x floor).  The hybrid
        # must route these tiny pools through row iteration.
        graph = strip_labels(citeseer_like(scale=0.1))
        plan = compile_plan(NAMED_SHAPES["triangle"].canonical(), induced=True)
        states = [s for s in self._plan_states(plan, graph) if s]
        assert states
        anchored = [
            min(
                (words[earlier] for earlier, _ in plan.steps[len(words)].back_edges),
                key=lambda v: (graph.degree(v), v),
            )
            for words in states
        ]
        decisions = [
            prefers_row_iteration(graph.degree(anchor)) for anchor in anchored
        ]
        # Scale-free: a few hub anchors legitimately go dense, but the
        # overwhelming majority of pools must take the row path — that is
        # what erased the 0.75x wall-clock floor.
        assert sum(decisions) >= 0.8 * len(decisions), (
            f"only {sum(decisions)}/{len(decisions)} citeseer triangle "
            "pools took the row path; the sparse fallback regressed"
        )
        # Identical streams regardless of path (the hybrid is wall-clock
        # only, spot-checked over the whole tree).
        for words in states:
            adaptive = guided_survivors(plan, graph, words)
            assert adaptive == guided_survivors(plan, graph, words, "rows")
            assert adaptive == guided_survivors(plan, graph, words, "masks")

    def test_dense_pools_take_the_mask_path(self):
        graph = strip_labels(mico_like(scale=0.002))
        plan = compile_plan(NAMED_SHAPES["triangle"].canonical(), induced=True)
        states = [s for s in self._plan_states(plan, graph) if s]
        dense = 0
        for words in states[:400]:
            step = plan.steps[len(words)]
            anchor = min(
                (words[earlier] for earlier, _ in step.back_edges),
                key=lambda v: (graph.degree(v), v),
            )
            if not prefers_row_iteration(graph.degree(anchor)):
                dense += 1
            adaptive = guided_survivors(plan, graph, words)
            assert adaptive == guided_survivors(plan, graph, words, "rows")
            assert adaptive == guided_survivors(plan, graph, words, "masks")
        assert dense, "dense mico pools must exercise the mask path"

    def test_dag_stepper_hybrid_paths_agree_on_both_regimes(self):
        sparse = strip_labels(citeseer_like(scale=0.08))
        dense = strip_labels(mico_like(scale=0.0015))
        dag = build_plan_dag(shapes("wedge", "triangle", "square"), induced=True)
        for graph in (sparse, dense):
            replay_tree(dag, graph, max_states=1500)

    def test_dag_estimate_sums_per_node_anchor_degrees(self):
        # Two live nodes with distinct anchors: the DAG decision reads
        # the SUM of their anchor degrees, so a batch can go dense even
        # when each node alone would not.  Pin by construction: a hub
        # graph where the hub degree is just over half the threshold.
        hub_edges = [(0, i) for i in range(1, SMALL_POOL_DEGREE + 2)]
        graph = strip_labels(
            gnm_random_graph(SMALL_POOL_DEGREE + 2, 1, seed=1)
        )
        # build explicitly instead: star graph
        from repro.graph import LabeledGraph

        graph = strip_labels(
            LabeledGraph(
                [0] * (SMALL_POOL_DEGREE + 2), sorted(hub_edges), name="star"
            )
        )
        dag = build_plan_dag(shapes("wedge", "triangle"), induced=True)
        stepper = DagStepper(dag, graph)
        # From the hub, the wedge/triangle second-step nodes both anchor
        # on vertex 0 (degree SMALL_POOL_DEGREE+1): a single node is
        # already past the threshold; the replay just has to agree.
        replay_tree(dag, graph)


# ---------------------------------------------------------------------------
# Mask-bundle invariants
# ---------------------------------------------------------------------------
def bundles_equal(a: DagMaskBundle, b: DagMaskBundle) -> bool:
    return (
        a.label_masks == b.label_masks
        and a.edge_label_ok == b.edge_label_ok
        and a.root_pools == b.root_pools
    )


class TestMaskBundle:
    def test_memoized_bundle_is_reused_and_observable(self):
        graph = strip_labels(gnm_random_graph(20, 50, seed=3))
        dag = build_plan_dag(shapes("wedge", "triangle"), induced=True)
        first = mask_bundle(dag, graph)
        assert mask_bundle(dag, graph) is first
        assert has_mask_bundle(dag, graph)
        assert DagStepper(dag, graph).bundle is first

    def test_bundle_tracks_graph_identity(self):
        g1 = strip_labels(gnm_random_graph(20, 50, seed=3))
        g2 = strip_labels(gnm_random_graph(20, 50, seed=4))
        dag = build_plan_dag(shapes("wedge", "triangle"), induced=True)
        b1 = mask_bundle(dag, g1)
        b2 = mask_bundle(dag, g2)
        assert b1 is not b2 and b2.graph is g2
        assert not has_mask_bundle(dag, g1)

    def test_restricted_dag_bundle_equals_recomputed_from_scratch(self):
        graph = citeseer_like(scale=0.08)
        base = fsm_style_dag(graph)
        memoized = mask_bundle(base, graph)
        assert bundles_equal(memoized, DagMaskBundle(base, graph))
        # Restricting again produces a NEW DAG whose bundle must also be
        # pure derived data — rebuild == memo, and root pools reflect
        # the tightened whitelists.
        domain = frozenset(
            v for v in graph.vertices() if graph.degree(v) >= 3
        )
        tighter = restrict_dag(
            base,
            {
                plan.pattern: {
                    v: domain for v in range(plan.pattern.num_vertices)
                }
                for plan in base.plans
            },
        )
        assert bundles_equal(
            mask_bundle(tighter, graph), DagMaskBundle(tighter, graph)
        )

    def test_session_reports_warm_bundles(self):
        graph = strip_labels(gnm_random_graph(25, 60, seed=2))
        miner = Miner(graph)
        assert miner.cache_info().warm_mask_bundles == 0
        miner.motifs(3).run()
        info = miner.cache_info()
        assert info.dag_compilations == 1
        assert info.warm_mask_bundles == 1


# ---------------------------------------------------------------------------
# Hypothesis properties: random graphs x random pattern batches
# ---------------------------------------------------------------------------
class TestKernelProperties:
    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_fused_dag_counts_equal_per_pattern_and_exhaustive(self, data):
        seed = data.draw(st.integers(0, 2**20), label="seed")
        n = data.draw(st.integers(8, 16), label="vertices")
        m = data.draw(st.integers(n, 3 * n), label="edges")
        num_labels = data.draw(st.integers(1, 3), label="labels")
        graph = assign_labels(
            gnm_random_graph(n, m, seed=seed), num_labels, seed=seed
        )
        if num_labels == 1:
            graph = strip_labels(graph)
        candidates = enumerate_motif_patterns(graph, 3, min_size=2)
        if not candidates:
            return
        size = data.draw(
            st.integers(1, min(4, len(candidates))), label="batch size"
        )
        batch = tuple(
            sorted(
                data.draw(
                    st.permutations(list(candidates)), label="batch order"
                )[:size],
                key=lambda p: (p.vertex_labels, p.edges),
            )
        )
        dag = build_plan_dag(batch, induced=True)
        replay_tree(dag, graph)
        counts = _engine_leaf_counts(graph, dag)
        miner = Miner(graph)
        for member, pattern in enumerate(batch):
            guided_count = miner.match(pattern, induced=True).count()
            exhaustive = run_computation(
                graph,
                GraphMatching(pattern, induced=True),
                ArabesqueConfig(collect_outputs=False),
            ).num_outputs
            assert counts.get(member, 0) == guided_count == exhaustive

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_mask_bundle_equals_recomputed_after_restrict_dag(self, data):
        seed = data.draw(st.integers(0, 2**20), label="seed")
        n = data.draw(st.integers(8, 14), label="vertices")
        m = data.draw(st.integers(n, 3 * n), label="edges")
        graph = assign_labels(
            gnm_random_graph(n, m, seed=seed),
            data.draw(st.integers(1, 3), label="labels"),
            seed=seed,
        )
        batch = enumerate_motif_patterns(graph, 3, min_size=2)[:3]
        if not batch:
            return
        dag = build_plan_dag(batch, induced=True)
        whitelist = data.draw(
            st.sets(st.integers(0, n - 1), min_size=1), label="whitelist"
        )
        restricted = restrict_dag(
            dag,
            {
                pattern: {
                    v: frozenset(whitelist)
                    for v in range(pattern.num_vertices)
                }
                for pattern in batch
            },
        )
        assert bundles_equal(
            mask_bundle(restricted, graph), DagMaskBundle(restricted, graph)
        )
        replay_tree(restricted, graph, max_states=600)


# ---------------------------------------------------------------------------
# restrict_plan / restrict_dag composition (the overwrite-bug fix)
# ---------------------------------------------------------------------------
class TestRestrictComposition:
    def _triangle_plan(self):
        return compile_plan(NAMED_SHAPES["triangle"].canonical(), induced=True)

    def test_restrict_plan_composes_by_intersection(self):
        plan = self._triangle_plan()
        first = restrict_plan(plan, {v: {0, 1, 2, 3} for v in plan.order})
        second = restrict_plan(first, {v: {2, 3, 4, 5} for v in plan.order})
        combined = to_bitset({2, 3})
        for step in second.steps:
            assert step.allowed == combined
        # ... and equals restricting once with the intersection.
        direct = restrict_plan(plan, {v: {2, 3} for v in plan.order})
        assert second.steps == direct.steps

    def test_restrict_plan_is_idempotent(self):
        plan = self._triangle_plan()
        overlay = {v: {1, 2, 5} for v in plan.order}
        once = restrict_plan(plan, overlay)
        twice = restrict_plan(once, overlay)
        assert once.steps == twice.steps

    def test_restrict_plan_absent_vertices_keep_existing_whitelists(self):
        plan = self._triangle_plan()
        first = restrict_plan(plan, {v: {0, 1, 2} for v in plan.order})
        # Re-restricting only ONE pattern vertex must not wipe the
        # whitelists of the others (the old behavior silently replaced
        # only what the overlay named — but a second overlay on a named
        # vertex overwrote instead of intersecting).
        target = plan.order[0]
        second = restrict_plan(first, {target: {1, 2, 9}})
        for step in second.steps:
            if step.pattern_vertex == target:
                assert step.allowed == to_bitset({1, 2})
            else:
                assert step.allowed == to_bitset({0, 1, 2})

    def test_restrict_plan_accepts_bitset_overlays(self):
        plan = self._triangle_plan()
        once = restrict_plan(plan, {v: to_bitset({1, 4}) for v in plan.order})
        again = restrict_plan(once, {v: to_bitset({4, 7}) for v in plan.order})
        for step in again.steps:
            assert step.allowed == to_bitset({4})

    def test_restrict_dag_composes_and_recomputes_node_unions(self):
        batch = shapes("wedge", "triangle")
        dag = build_plan_dag(batch, induced=True)
        overlay_a = {
            pattern: {v: {0, 1, 2, 3} for v in range(pattern.num_vertices)}
            for pattern in batch
        }
        overlay_b = {
            pattern: {v: {2, 3, 4} for v in range(pattern.num_vertices)}
            for pattern in batch
        }
        composed = restrict_dag(restrict_dag(dag, overlay_a), overlay_b)
        direct = restrict_dag(
            dag,
            {
                pattern: {v: {2, 3} for v in range(pattern.num_vertices)}
                for pattern in batch
            },
        )
        assert composed.plans == direct.plans
        assert composed.nodes == direct.nodes

    def test_restrict_dag_is_idempotent(self):
        batch = shapes("wedge", "triangle")
        dag = build_plan_dag(batch, induced=True)
        overlay = {
            pattern: {v: {0, 2, 4, 6} for v in range(pattern.num_vertices)}
            for pattern in batch
        }
        once = restrict_dag(dag, overlay)
        twice = restrict_dag(once, overlay)
        assert once.plans == twice.plans and once.nodes == twice.nodes

    def test_composed_restriction_end_to_end_counts(self):
        # Behavior, not just structure: running the twice-restricted DAG
        # counts exactly what the once-with-intersection DAG counts.
        graph = strip_labels(gnm_random_graph(20, 55, seed=12))
        batch = shapes("wedge", "triangle")
        dag = build_plan_dag(batch, induced=True)
        big = frozenset(range(0, 16))
        small = frozenset(range(8, 20))
        composed = restrict_dag(
            restrict_dag(
                dag,
                {
                    p: {v: big for v in range(p.num_vertices)}
                    for p in batch
                },
            ),
            {p: {v: small for v in range(p.num_vertices)} for p in batch},
        )
        direct = restrict_dag(
            dag,
            {
                p: {v: big & small for v in range(p.num_vertices)}
                for p in batch
            },
        )
        assert _engine_leaf_counts(graph, composed) == _engine_leaf_counts(
            graph, direct
        )
        replay_tree(composed, graph)
