"""Tests for the aggregation framework and two-level pattern aggregation."""

import pytest

from repro.apps import Domain
from repro.core import Pattern, PatternCanonicalizer
from repro.core.aggregation import (
    AggregationChannel,
    LocalAggregation,
    merge_partials,
    remap_value,
)


def sum_reduce(key, values):
    return sum(values)


def domain_reduce(key, values):
    return Domain.merge_all(values)


BYB = Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0)))
BYB_CENTER_OUT = Pattern((2, 1, 1), ((0, 1, 0), (0, 2, 0)))  # same class


class TestChannel:
    def test_read_before_any_step(self):
        channel = AggregationChannel("agg", sum_reduce)
        assert channel.read("k") is None

    def test_publish_and_read(self):
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"k": 5})
        assert channel.read("k") == 5
        assert channel.published() == {"k": 5}

    def test_non_persistent_overwrites(self):
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"k": 5})
        channel.step_barrier({"j": 1})
        assert channel.read("k") is None
        assert channel.read("j") == 1

    def test_persistent_accumulates(self):
        channel = AggregationChannel("out", sum_reduce, persistent=True)
        channel.step_barrier({"k": 5})
        channel.step_barrier({"k": 3, "j": 1})
        assert channel.finalize() == {"k": 8, "j": 1}

    def test_finalize_empty_for_per_step_channel(self):
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"k": 5})
        assert channel.finalize() == {}


class TestLatestView:
    """Regression tests for RunResult.final_aggregates semantics: per key,
    the value from the LAST step that produced it — replaced per the
    non-persistent channel's per-step semantics, never reduced across
    steps, and never dropped when later steps stop producing the key."""

    def test_reproduced_key_is_replaced_not_reduced(self):
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"k": 5})
        channel.step_barrier({"k": 3})
        # A persistent channel would accumulate to 8; the per-step channel
        # must report only the last step's merged value.
        assert channel.latest() == {"k": 3}

    def test_key_from_earlier_step_is_retained(self):
        """FSM relies on this: a pattern with i edges is aggregated only at
        step i-1, and frequent_patterns() reads every size at end of run."""
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"size-1": 10})
        channel.step_barrier({"size-2": 7})
        channel.step_barrier({})
        assert channel.latest() == {"size-1": 10, "size-2": 7}
        # ... even though the published (readAggregate) view has moved on:
        assert channel.read("size-1") is None

    def test_empty_final_step_clears_nothing(self):
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"k": 1})
        channel.step_barrier({})
        assert channel.latest() == {"k": 1}

    def test_latest_is_a_copy(self):
        channel = AggregationChannel("agg", sum_reduce)
        channel.step_barrier({"k": 1})
        view = channel.latest()
        view["k"] = 99
        assert channel.latest() == {"k": 1}

    def test_engine_final_aggregates_use_latest_semantics(self):
        """End-to-end regression: an app that maps the same key at every
        step must see the last step's value in final_aggregates (not a
        cross-step reduction), while step-local keys from earlier steps
        stay visible."""
        from repro.core import ArabesqueConfig, Computation, run_computation
        from repro.graph import complete_graph

        class PerStepCensus(Computation):
            def filter(self, embedding):
                return embedding.num_vertices <= 3

            def process(self, embedding):
                self.map("embeddings", 1)
                self.map(("size", embedding.num_vertices), 1)

            def reduce(self, key, values):
                return sum(values)

            def termination_filter(self, embedding):
                return embedding.num_vertices >= 3

        for workers, backend in ((1, "serial"), (3, "thread"), (3, "process")):
            result = run_computation(
                complete_graph(4),
                PerStepCensus(),
                ArabesqueConfig(num_workers=workers, backend=backend),
            )
            # K4: 4 vertices, 6 edges, 4 triangles; the last step that maps
            # "embeddings" is the size-3 step -> 4, NOT 4 + 6 + 4 = 14.
            assert result.final_aggregates["embeddings"] == 4
            assert result.final_aggregates[("size", 1)] == 4
            assert result.final_aggregates[("size", 2)] == 6
            assert result.final_aggregates[("size", 3)] == 4


class TestLocalAggregation:
    def test_plain_keys(self):
        channel = AggregationChannel("agg", sum_reduce)
        local = LocalAggregation(channel, PatternCanonicalizer())
        local.map("a", 1)
        local.map("a", 2)
        local.map("b", 5)
        assert local.merged_partials() == {"a": 3, "b": 5}

    def test_empty(self):
        channel = AggregationChannel("agg", sum_reduce)
        local = LocalAggregation(channel, PatternCanonicalizer())
        assert local.is_empty()
        assert local.merged_partials() == {}

    def test_pattern_keys_collapse_to_canonical(self):
        channel = AggregationChannel("agg", sum_reduce)
        canonicalizer = PatternCanonicalizer(two_level=True)
        local = LocalAggregation(channel, canonicalizer)
        local.map(BYB, 1)
        local.map(BYB_CENTER_OUT, 1)
        partials = local.merged_partials()
        assert len(partials) == 1
        ((key, value),) = partials.items()
        assert key == BYB.canonical()
        assert value == 2
        # Two distinct quick patterns, one isomorphism run each.
        assert canonicalizer.isomorphism_runs == 2

    def test_two_level_runs_isomorphism_once_per_quick_pattern(self):
        channel = AggregationChannel("agg", sum_reduce)
        canonicalizer = PatternCanonicalizer(two_level=True)
        local = LocalAggregation(channel, canonicalizer)
        for _ in range(100):
            local.map(BYB, 1)
        local.merged_partials()
        assert canonicalizer.isomorphism_runs == 1

    def test_without_two_level_runs_isomorphism_per_map(self):
        channel = AggregationChannel("agg", sum_reduce)
        canonicalizer = PatternCanonicalizer(two_level=False)
        local = LocalAggregation(channel, canonicalizer)
        for _ in range(10):
            local.map(BYB, 1)
        local.merged_partials()
        assert canonicalizer.isomorphism_runs == 10

    def test_domain_values_are_remapped(self):
        """Domains mapped under different quick patterns of one class must
        land on consistent canonical positions."""
        channel = AggregationChannel("agg", domain_reduce)
        canonicalizer = PatternCanonicalizer(two_level=True)
        local = LocalAggregation(channel, canonicalizer)
        # BYB visit order: ends are positions 0,2; center (label 2) is 1.
        local.map(BYB, Domain([frozenset({10}), frozenset({20}), frozenset({30})]))
        # Center-out visit order: center is position 0, ends are 1,2.
        local.map(
            BYB_CENTER_OUT,
            Domain([frozenset({20}), frozenset({10}), frozenset({30})]),
        )
        ((key, merged),) = local.merged_partials().items()
        canonical = BYB.canonical()
        assert key == canonical
        # The center (label 2) position of the canonical pattern must hold
        # exactly {20} from both contributions.
        center_position = canonical.vertex_labels.index(2)
        assert merged.position_images(center_position) == frozenset({20})

    def test_modes_agree_on_final_values(self):
        for two_level in (True, False):
            channel = AggregationChannel("agg", domain_reduce)
            local = LocalAggregation(channel, PatternCanonicalizer(two_level))
            local.map(BYB, Domain([frozenset({1}), frozenset({2}), frozenset({3})]))
            local.map(
                BYB_CENTER_OUT,
                Domain([frozenset({5}), frozenset({4}), frozenset({6})]),
            )
            ((key, merged),) = local.merged_partials().items()
            if two_level:
                reference = (key, merged)
            else:
                assert key == reference[0]
                assert merged == reference[1]


class TestMergePartials:
    def test_cross_worker_merge(self):
        channel = AggregationChannel("agg", sum_reduce)
        merged = merge_partials(channel, [{"a": 1, "b": 2}, {"a": 5}])
        assert merged == {"a": 6, "b": 2}

    def test_single_contribution_skips_reduce(self):
        def exploding_reduce(key, values):
            raise AssertionError("reduce must not run for single values")

        channel = AggregationChannel("agg", exploding_reduce)
        assert merge_partials(channel, [{"a": 1}]) == {"a": 1}

    def test_empty(self):
        channel = AggregationChannel("agg", sum_reduce)
        assert merge_partials(channel, []) == {}


class TestRemapValue:
    def test_plain_value_passthrough(self):
        assert remap_value(7, (1, 0)) == 7

    def test_domain_remapped(self):
        domain = Domain([frozenset({1}), frozenset({2})])
        remapped = remap_value(domain, (1, 0))
        assert remapped.position_images(0) == frozenset({2})
