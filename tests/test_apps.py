"""Application tests: FSM, motifs, cliques, maximal cliques — each
cross-validated against an independent oracle (brute force or networkx)."""

import itertools

import networkx as nx
import pytest

from repro.apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    MaximalCliqueFinding,
    MotifCounting,
    cliques_by_size,
    frequent_patterns,
    motif_counts,
    motif_counts_by_size,
)
from repro.core import ArabesqueConfig, Pattern, run_computation
from repro.graph import (
    assign_labels,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    graph_from_edges,
    graph_from_string,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.isomorphism import find_isomorphisms


def to_networkx(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    for eid, u, v in graph.edge_iter():
        nxg.add_edge(u, v)
    return nxg


TRIANGLE = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0)))
PATH3 = Pattern((0, 0, 0), ((0, 1, 0), (1, 2, 0)))


class TestMotifs:
    def test_c5_has_only_paths(self):
        counts = motif_counts(run_computation(cycle_graph(5), MotifCounting(3)))
        assert counts == {PATH3.canonical(): 5}

    def test_k4_triangle_and_path_counts(self):
        counts = motif_counts(run_computation(complete_graph(4), MotifCounting(3)))
        # K4: 4 triangles; induced P3s: none (every 3-set is a triangle).
        assert counts == {TRIANGLE.canonical(): 4}

    def test_star_counts(self):
        counts = motif_counts(run_computation(star_graph(5), MotifCounting(3)))
        # Star: C(5,2)=10 induced P3 through the hub; no triangles.
        assert counts == {PATH3.canonical(): 10}

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_size3_against_bruteforce(self, seed):
        g = gnm_random_graph(16, 40, seed=seed)
        counts = motif_counts(run_computation(g, MotifCounting(3)))
        triangles = 0
        paths = 0
        for combo in itertools.combinations(g.vertices(), 3):
            edges = sum(
                1 for u, v in itertools.combinations(combo, 2) if g.adjacent(u, v)
            )
            if edges == 3:
                triangles += 1
            elif edges == 2:
                paths += 1
        expected = {}
        if triangles:
            expected[TRIANGLE.canonical()] = triangles
        if paths:
            expected[PATH3.canonical()] = paths
        assert counts == expected

    def test_size4_motif_census_on_grid(self):
        """Grid graphs have exactly 3 induced size-4 motifs: paths, stars
        (claws), and squares (C4)."""
        counts = motif_counts_by_size(
            run_computation(grid_graph(3, 3), MotifCounting(4))
        )[4]
        shapes = {(p.num_edges): c for p, c in counts.items()}
        # C4 count in a 3x3 grid = 4 unit squares.
        assert shapes[4] == 4
        assert len(counts) == 3

    def test_min_size_filters_reporting(self):
        result = run_computation(complete_graph(4), MotifCounting(3, min_size=3))
        assert all(p.num_vertices == 3 for p in motif_counts(result))

    def test_labeled_motifs(self):
        g = graph_from_edges([(0, 1), (1, 2)], vertex_labels=[1, 2, 1])
        counts = motif_counts(run_computation(g, MotifCounting(3)))
        assert len(counts) == 1
        (pattern, count), = counts.items()
        assert count == 1
        assert sorted(pattern.vertex_labels) == [1, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            MotifCounting(0)
        with pytest.raises(ValueError):
            MotifCounting(3, min_size=5)


class TestCliques:
    @pytest.mark.parametrize("seed", [2, 7])
    def test_counts_against_networkx(self, seed):
        g = gnm_random_graph(18, 60, seed=seed)
        result = run_computation(g, CliqueFinding(max_size=4))
        ours = cliques_by_size(result)
        expected = {}
        for clique in nx.enumerate_all_cliques(to_networkx(g)):
            if len(clique) > 4:
                break
            expected.setdefault(len(clique), set()).add(tuple(sorted(clique)))
        assert {k: set(v) for k, v in ours.items()} == expected

    def test_k5_counts(self):
        result = run_computation(complete_graph(5), CliqueFinding(max_size=5))
        sizes = {k: len(v) for k, v in cliques_by_size(result).items()}
        assert sizes == {1: 5, 2: 10, 3: 10, 4: 5, 5: 1}

    def test_min_size(self):
        result = run_computation(
            complete_graph(4), CliqueFinding(max_size=4, min_size=3)
        )
        assert {len(c) for c in result.outputs} == {3, 4}

    def test_unbounded_enumeration(self):
        result = run_computation(complete_graph(4), CliqueFinding())
        assert result.num_outputs == 4 + 6 + 4 + 1

    def test_triangle_free_graph(self):
        result = run_computation(
            grid_graph(3, 3), CliqueFinding(max_size=3, min_size=3)
        )
        assert result.num_outputs == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CliqueFinding(max_size=0)
        with pytest.raises(ValueError):
            CliqueFinding(min_size=0)


class TestMaximalCliques:
    @pytest.mark.parametrize("seed", [3, 8])
    def test_against_networkx(self, seed):
        g = gnm_random_graph(16, 48, seed=seed)
        result = run_computation(g, MaximalCliqueFinding())
        ours = set(result.outputs)
        expected = {
            tuple(sorted(c)) for c in nx.find_cliques(to_networkx(g))
        }
        assert ours == expected

    def test_k4_single_maximal(self):
        result = run_computation(complete_graph(4), MaximalCliqueFinding())
        assert set(result.outputs) == {(0, 1, 2, 3)}

    def test_size_cap_keeps_globally_maximal_only(self):
        # K4: with cap 3 nothing of size <= 3 is maximal in the full graph.
        result = run_computation(complete_graph(4), MaximalCliqueFinding(max_size=3))
        assert result.num_outputs == 0

    def test_path_maximal_cliques_are_edges(self):
        result = run_computation(path_graph(4), MaximalCliqueFinding())
        assert set(result.outputs) == {(0, 1), (1, 2), (2, 3)}


class TestFsm:
    def brute_force_fsm(self, graph, threshold, max_edges):
        """Oracle: enumerate connected edge subsets, group by canonical
        pattern, compute MNI via VF2 over all isomorphisms."""
        from repro.core import EdgeInducedEmbedding

        patterns = {}
        edge_sets = set()
        for size in range(1, max_edges + 1):
            for combo in itertools.combinations(range(graph.num_edges), size):
                span = set()
                for eid in combo:
                    span.update(graph.edge_endpoints(eid))
                sub_ok = True
                # connectivity over edges
                comp = {next(iter(span))}
                changed = True
                while changed:
                    changed = False
                    for eid in combo:
                        u, v = graph.edge_endpoints(eid)
                        if (u in comp) != (v in comp):
                            comp.update((u, v))
                            changed = True
                if comp != span:
                    continue
                edge_sets.add(frozenset(combo))
        for edge_set in edge_sets:
            embedding = EdgeInducedEmbedding(graph, tuple(sorted(edge_set)))
            canonical = embedding.pattern().canonical()
            patterns.setdefault(canonical, set()).add(edge_set)
        frequent = {}
        for pattern, instances in patterns.items():
            mappings = find_isomorphisms(
                pattern.vertex_labels, pattern.edge_dict(), graph
            )
            domains = [set() for _ in range(pattern.num_vertices)]
            for mapping in mappings:
                for position, vertex in enumerate(mapping):
                    domains[position].add(vertex)
            support = min(len(d) for d in domains) if domains else 0
            if support >= threshold:
                frequent[pattern] = support
        return frequent

    @pytest.mark.parametrize("seed,threshold", [(1, 3), (2, 4), (3, 2)])
    def test_against_vf2_bruteforce(self, seed, threshold):
        g = assign_labels(gnm_random_graph(14, 22, seed=seed), 2, seed=seed)
        result = run_computation(
            g, FrequentSubgraphMining(threshold, max_edges=3)
        )
        ours = frequent_patterns(result, threshold)
        expected = self.brute_force_fsm(g, threshold, 3)
        assert ours == expected

    def test_alpha_prunes_infrequent_subtrees(self):
        g = assign_labels(gnm_random_graph(20, 40, seed=5), 3, seed=5)
        high = run_computation(g, FrequentSubgraphMining(50, max_edges=3))
        low = run_computation(g, FrequentSubgraphMining(2, max_edges=3))
        pruned_high = sum(s.aggregation_pruned for s in high.steps)
        pruned_low = sum(s.aggregation_pruned for s in low.steps)
        assert pruned_high > pruned_low

    def test_outputs_are_frequent_embeddings(self):
        g = graph_from_string(
            """
            v 0 1
            v 1 2
            v 2 1
            v 3 2
            v 4 1
            0 1
            1 2
            2 3
            3 4
            """
        )
        result = run_computation(g, FrequentSubgraphMining(2, max_edges=2))
        assert result.num_outputs > 0
        for item in result.outputs:
            assert item.support >= 2
            assert item.pattern.is_canonical()

    def test_worker_invariance(self):
        g = assign_labels(gnm_random_graph(15, 30, seed=6), 2, seed=6)
        reference = frequent_patterns(
            run_computation(g, FrequentSubgraphMining(3, max_edges=3)), 3
        )
        for workers in (2, 4):
            config = ArabesqueConfig(num_workers=workers)
            result = run_computation(g, FrequentSubgraphMining(3, max_edges=3), config)
            assert frequent_patterns(result, 3) == reference

    def test_unbounded_run_terminates_by_infrequency(self):
        # High threshold: exploration dies out without a max_edges cap.
        g = assign_labels(gnm_random_graph(12, 20, seed=7), 2, seed=7)
        result = run_computation(g, FrequentSubgraphMining(1000))
        assert frequent_patterns(result, 1000) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequentSubgraphMining(0)
        with pytest.raises(ValueError):
            FrequentSubgraphMining(2, max_edges=0)
