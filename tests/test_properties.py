"""Cross-cutting property-based tests (hypothesis) for the core invariants
DESIGN.md section 4 commits to."""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    CliqueFinding,
    FrequentCliqueMining,
    FrequentSubgraphMining,
    GraphCollection,
    GraphMatching,
    InexactMatching,
    MaximalCliqueFinding,
    MotifCounting,
    TransactionalFSM,
    motif_counts,
)
from repro.baselines import count_motifs, exact_mni_support, extend_pattern, graph_label_triples
from repro.core import (
    ArabesqueConfig,
    Odag,
    OdagStore,
    Pattern,
    PatternCanonicalizer,
    run_computation,
)
from repro.core.canonical import canonicalize_vertex_set
from repro.core.embedding import VERTEX_EXPLORATION, make_embedding
from repro.graph import LabeledGraph, assign_labels, gnm_random_graph
from repro.isomorphism import canonical_form


def random_labeled_graph(seed: int, max_n: int = 8, labels: int = 2) -> LabeledGraph:
    rng = random.Random(seed)
    n = rng.randint(2, max_n)
    max_edges = n * (n - 1) // 2
    m = rng.randint(1, max_edges)
    graph = gnm_random_graph(n, m, seed=seed)
    return assign_labels(graph, labels, seed=seed + 1)


def to_networkx(graph: LabeledGraph) -> nx.Graph:
    nxg = nx.Graph()
    for v in graph.vertices():
        nxg.add_node(v, label=graph.vertex_label(v))
    for eid, u, v in graph.edge_iter():
        nxg.add_edge(u, v, label=graph.edge_label(eid))
    return nxg


@given(seed_a=st.integers(0, 3000), seed_b=st.integers(0, 3000))
@settings(max_examples=60, deadline=None)
def test_certificates_agree_with_networkx_isomorphism(seed_a, seed_b):
    """Certificate equality <=> labeled isomorphism (networkx as oracle)."""
    ga = random_labeled_graph(seed_a, max_n=6)
    gb = random_labeled_graph(seed_b, max_n=6)
    cert_a, _ = canonical_form(
        ga.num_vertices,
        ga.vertex_labels,
        {ga.edge_endpoints(e): ga.edge_label(e) for e in ga.edges()},
    )
    cert_b, _ = canonical_form(
        gb.num_vertices,
        gb.vertex_labels,
        {gb.edge_endpoints(e): gb.edge_label(e) for e in gb.edges()},
    )
    oracle = nx.is_isomorphic(
        to_networkx(ga),
        to_networkx(gb),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    assert (cert_a == cert_b) == oracle


@given(seed=st.integers(0, 3000))
@settings(max_examples=25, deadline=None)
def test_engine_motif_census_matches_esu(seed):
    """Completeness (Theorem 4): engine == independent ESU enumeration."""
    graph = random_labeled_graph(seed, max_n=10, labels=2)
    engine_counts = {
        p: c
        for p, c in motif_counts(run_computation(graph, MotifCounting(3))).items()
        if p.num_vertices == 3
    }
    assert engine_counts == count_motifs(graph, 3)


# ----------------------------------------------------------------------
# Cross-backend determinism: every bundled application, every execution
# backend, every worker count — one semantic result (DESIGN.md section 4's
# worker-invariance property, extended to the pluggable runtime).
# ----------------------------------------------------------------------
def _determinism_graph():
    return assign_labels(gnm_random_graph(10, 22, seed=11), 2, seed=12)


def _transactional_workload():
    graphs = [
        assign_labels(gnm_random_graph(5, 7, seed=s), 2, seed=s + 50)
        for s in (1, 2, 3)
    ]
    collection = GraphCollection(graphs)
    return collection.union_graph, TransactionalFSM(
        collection, support_threshold=2, max_edges=2
    )


def _query_pattern():
    # A labeled path of 3 vertices — present in most small random graphs.
    return Pattern((0, 1, 0), ((0, 1, 0), (1, 2, 0)))


APP_WORKLOADS = [
    ("motifs", lambda: (_determinism_graph(), MotifCounting(3))),
    ("cliques", lambda: (_determinism_graph(), CliqueFinding(max_size=3, min_size=2))),
    ("maximal-cliques", lambda: (_determinism_graph(), MaximalCliqueFinding(3))),
    (
        "frequent-cliques",
        lambda: (_determinism_graph(), FrequentCliqueMining(2, max_size=3)),
    ),
    ("fsm", lambda: (_determinism_graph(), FrequentSubgraphMining(2, max_edges=2))),
    ("transactional-fsm", _transactional_workload),
    ("matching", lambda: (_determinism_graph(), GraphMatching(_query_pattern()))),
    (
        "inexact-matching",
        lambda: (_determinism_graph(), InexactMatching(_query_pattern(), budget=1.0)),
    ),
]


@pytest.mark.parametrize(
    "workload", [factory for _, factory in APP_WORKLOADS],
    ids=[name for name, _ in APP_WORKLOADS],
)
def test_every_app_deterministic_across_backends_and_workers(workload):
    """serial/thread/process × num_workers ∈ {1, 2, 4} yield byte-identical
    results for every application shipped in repro.apps.

    Two levels of strictness: at a fixed worker count the full signature
    (including output emission ORDER) must match the serial reference
    byte for byte; across worker counts the partition reorders emissions,
    so the order-normalized signature must match.
    """
    graph, reference_app = workload()
    reference = run_computation(graph, reference_app)
    reference_unordered = reference.canonical_signature(ignore_output_order=True)
    for workers in (1, 2, 4):
        _, serial_app = workload()
        serial = run_computation(
            graph, serial_app, ArabesqueConfig(num_workers=workers)
        )
        serial_ordered = serial.canonical_signature()
        for backend in ("thread", "process"):
            _, app = workload()
            config = ArabesqueConfig(num_workers=workers, backend=backend)
            result = run_computation(graph, app, config)
            assert result.canonical_signature() == serial_ordered, (
                f"{backend} x {workers} workers diverged from serial"
            )
        assert (
            serial.canonical_signature(ignore_output_order=True)
            == reference_unordered
        ), f"worker count {workers} changed the semantic result"


@given(seed=st.integers(0, 3000), workers=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_worker_count_never_changes_results(seed, workers):
    """Determinism: the partitioning is invisible to application output."""
    graph = random_labeled_graph(seed, max_n=10)
    reference = motif_counts(run_computation(graph, MotifCounting(3)))
    config = ArabesqueConfig(num_workers=workers)
    result = motif_counts(run_computation(graph, MotifCounting(3), config))
    assert result == reference


@given(seed=st.integers(0, 3000))
@settings(max_examples=30, deadline=None)
def test_mni_support_is_anti_monotone(seed):
    """sup(extension) <= sup(pattern) for every single-edge extension."""
    graph = random_labeled_graph(seed, max_n=8, labels=2)
    triples = graph_label_triples(graph)
    if not triples:
        return
    lu, le, lv = sorted(triples)[0]
    base = Pattern((lu, lv), ((0, 1, le),)).canonical()
    base_support = exact_mni_support(graph, base)
    for extension in extend_pattern(base, triples)[:6]:
        assert exact_mni_support(graph, extension) <= base_support


@given(seed=st.integers(0, 3000))
@settings(max_examples=30, deadline=None)
def test_odag_store_roundtrip(seed):
    """Store -> extract over any worker count recovers exactly the stored
    canonical embeddings (with the engine's membership checks)."""
    rng = random.Random(seed)
    graph = gnm_random_graph(10, rng.randint(9, 30), seed=seed)
    size = rng.randint(2, 4)
    stored: dict[tuple, Pattern] = {}
    canonicalizer = PatternCanonicalizer()
    store = OdagStore()
    for combo in itertools.combinations(range(10), size):
        if not graph.is_connected_vertex_set(combo):
            continue
        words = canonicalize_vertex_set(graph, combo)
        embedding = make_embedding(graph, VERTEX_EXPLORATION, words)
        pattern, _ = canonicalizer.canonicalize(embedding.pattern())
        store.add(pattern, words)
        stored[words] = pattern

    from repro.core.canonical import is_canonical_vertex_extension

    def prefix_ok(words):
        return is_canonical_vertex_extension(graph, words[:-1], words[-1])

    workers = rng.randint(1, 4)
    extracted = {}
    for worker_id in range(workers):
        for pattern, words in store.extract_partition(worker_id, workers, prefix_ok):
            embedding = make_embedding(graph, VERTEX_EXPLORATION, words)
            actual_pattern, _ = canonicalizer.canonicalize(embedding.pattern())
            if actual_pattern != pattern:
                continue  # spurious cross-pattern path
            assert words not in extracted, "duplicate extraction"
            extracted[words] = actual_pattern
    assert extracted == stored


@given(seed=st.integers(0, 3000))
@settings(max_examples=30, deadline=None)
def test_quick_patterns_collapse_consistently(seed):
    """All canonical word orders of automorphic embeddings produce quick
    patterns with one shared canonical form."""
    graph = random_labeled_graph(seed, max_n=7)
    rng = random.Random(seed)
    combos = [
        combo
        for combo in itertools.combinations(graph.vertices(), 3)
        if graph.is_connected_vertex_set(combo)
    ]
    if not combos:
        return
    combo = combos[rng.randrange(len(combos))]
    canonicals = set()
    for order in itertools.permutations(combo):
        embedding = make_embedding(graph, VERTEX_EXPLORATION, order)
        canonicals.add(embedding.pattern().canonical())
    assert len(canonicals) == 1


@given(seed=st.integers(0, 3000))
@settings(max_examples=40, deadline=None)
def test_odag_wire_size_is_additive_under_merge_bound(seed):
    """Merging never yields a larger ODAG than the sum of its parts."""
    rng = random.Random(seed)
    size = rng.randint(1, 4)
    left = Odag(size)
    right = Odag(size)
    for _ in range(rng.randint(1, 12)):
        left.add(tuple(rng.sample(range(12), size)))
    for _ in range(rng.randint(1, 12)):
        right.add(tuple(rng.sample(range(12), size)))
    combined_bound = left.wire_size() + right.wire_size()
    left.merge(right)
    assert left.wire_size() <= combined_bound
