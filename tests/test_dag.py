"""Multi-query plan DAGs (repro.plan.dag) and the DAG-guided motif path.

The acceptance surface of the multi-query refactor:

* **trie construction** — prefix-affine orders make sibling patterns
  share their common subpattern's nodes (shared-prefix node counts are
  asserted exactly on known batches), member plans stay valid solo plans,
  and malformed batches fail loudly;
* **per-leaf restriction soundness** — each member's symmetry
  restrictions stay sound inside the batch: restricted leaf count ×
  |Aut| == monomorphism count (the same invariant the solo planner is
  property-tested on), and induced leaf counts equal the solo guided and
  exhaustive match counts;
* **motif distribution equivalence** — DAG-guided == exhaustive
  ``MotifCounting`` == per-pattern guided counts, byte-identical across
  serial/thread/process × worker counts × storage modes (and
  byte-identical to the exhaustive oracle itself: both strategies only
  aggregate);
* **session integration** — ``.motifs()`` runs guided by default, the
  DAG cache makes the second run skip compilation, and collect-style
  options are rejected loudly.
"""

import pickle

import pytest

from repro.apps import (
    DagMotifCounting,
    DagPatternDomains,
    GraphMatching,
    MotifCounting,
    enumerate_motif_patterns,
    motif_counts,
    run_guided_motifs,
)
from repro.core import ArabesqueConfig, Computation, Pattern, run_computation
from repro.core.embedding import VERTEX_EXPLORATION
from repro.graph import (
    LabeledGraph,
    assign_labels,
    from_bitset,
    gnm_random_graph,
    strip_labels,
)
from repro.isomorphism import SubgraphMatcher
from repro.plan import (
    NAMED_SHAPES,
    PlanError,
    accepting_patterns,
    build_plan_dag,
    compile_plan,
    dag_step_zero_pool,
    dag_survivors,
    restrict_dag,
)
from repro.plan.dag import dag_extendable
from repro.session import Miner, SessionError

BACKENDS = ("serial", "thread", "process")
STORAGES = ("odag", "list", "adaptive")


def shapes(*names):
    return tuple(NAMED_SHAPES[name].canonical() for name in names)


def unlabeled_graph(seed: int, n: int = 25, m: int = 60):
    return strip_labels(gnm_random_graph(n, m, seed=seed))


def labeled_graph(seed: int, n: int = 24, m: int = 60, labels: int = 3):
    return assign_labels(gnm_random_graph(n, m, seed=seed), labels, seed=seed)


def exhaustive_counts(graph, max_size, min_size=3):
    run = run_computation(
        graph,
        MotifCounting(max_size, min_size=min_size),
        ArabesqueConfig(collect_outputs=False),
    )
    return motif_counts(run)


# ---------------------------------------------------------------------------
# Trie construction (prefix-affine orders + shared-prefix node counts)
# ---------------------------------------------------------------------------
class TestTrieConstruction:
    def test_wedge_and_triangle_share_their_two_step_prefix(self):
        dag = build_plan_dag(shapes("wedge", "triangle"), induced=True)
        # 3 + 3 plan steps collapse into 4 trie nodes: both orders start
        # vertex + neighbor identically, then diverge at the third step
        # (one back-edge vs two).
        assert dag.total_plan_steps == 6
        assert dag.num_nodes == 4
        assert dag.shared_steps == 2
        wedge_path, triangle_path = dag.paths
        assert wedge_path[:2] == triangle_path[:2]
        assert wedge_path[2] != triangle_path[2]

    def test_triangle_aligns_as_square_prefix_sibling(self):
        dag = build_plan_dag(shapes("triangle", "square"), induced=True)
        # The affine order search walks the square along the triangle's
        # existing trie path for the shared 2-path subpattern.
        assert dag.shared_steps >= 2
        assert dag.paths[0][:2] == dag.paths[1][:2]

    def test_whole_motif_batch_shares_one_root(self):
        graph = unlabeled_graph(3)
        batch = enumerate_motif_patterns(graph, 4)
        dag = build_plan_dag(batch, induced=True)
        assert {path[0] for path in dag.paths} == {dag.paths[0][0]}
        # Sharing must be substantial, not incidental: every plan's first
        # two steps are structurally identical on an unlabeled graph.
        assert all(path[:2] == dag.paths[0][:2] for path in dag.paths)
        assert dag.num_nodes < dag.total_plan_steps

    def test_member_plans_are_valid_solo_plans(self):
        batch = shapes("wedge", "triangle", "square", "diamond")
        dag = build_plan_dag(batch, induced=True)
        for pattern, plan in zip(batch, dag.plans):
            assert plan.pattern == pattern
            # Recompiling solo with the DAG's affine order reproduces the
            # member plan exactly — constraints and restrictions included.
            assert compile_plan(pattern, induced=True, order=plan.order) == plan

    def test_empty_and_duplicate_batches_rejected(self):
        with pytest.raises(PlanError, match="must not be empty"):
            build_plan_dag(())
        with pytest.raises(PlanError, match="duplicate"):
            build_plan_dag(shapes("triangle", "triangle"))

    def test_disconnected_member_rejected(self):
        disconnected = Pattern((0, 0, 0, 0), ((0, 1, 0), (2, 3, 0)))
        with pytest.raises(PlanError, match="connected"):
            build_plan_dag((NAMED_SHAPES["triangle"].canonical(), disconnected))

    def test_explicit_order_validation(self):
        triangle = NAMED_SHAPES["triangle"].canonical()
        with pytest.raises(PlanError, match="permutation"):
            compile_plan(triangle, order=(0, 1))
        with pytest.raises(PlanError, match="permutation"):
            compile_plan(triangle, order=(0, 1, 1))
        path3 = NAMED_SHAPES["wedge"].canonical()
        # An order whose second vertex is not adjacent to the first
        # breaks the connected-prefix invariant.
        adjacency = {v: set() for v in range(3)}
        for i, j, _ in path3.edges:
            adjacency[i].add(j)
            adjacency[j].add(i)
        endpoints = [v for v in range(3) if len(adjacency[v]) == 1]
        bad = (endpoints[0], endpoints[1], 3 - endpoints[0] - endpoints[1])
        with pytest.raises(PlanError, match="connected prefix"):
            compile_plan(path3, order=bad)

    def test_dag_is_picklable_and_hashable(self):
        dag = build_plan_dag(shapes("wedge", "triangle", "square"))
        clone = pickle.loads(pickle.dumps(dag))
        assert clone == dag
        assert hash(clone) == hash(dag)

    def test_describe_mentions_sharing(self):
        dag = build_plan_dag(shapes("wedge", "triangle"))
        text = dag.describe()
        assert "patterns=2" in text and "shared" in text
        assert "induced" in text

    def test_plan_describe_reports_whitelists(self):
        plan = compile_plan(NAMED_SHAPES["edge"].canonical(), induced=False)
        assert "whitelists=[none]" in plan.describe()
        from repro.plan.planner import restrict_plan

        restricted = restrict_plan(plan, {0: frozenset({1, 2, 3})})
        assert "whitelists=[0:3]" in restricted.describe()


# ---------------------------------------------------------------------------
# restrict_dag: per-leaf whitelist push-down
# ---------------------------------------------------------------------------
class TestRestrictDag:
    def test_overlays_member_whitelists_and_node_unions(self):
        batch = shapes("wedge", "triangle")
        dag = build_plan_dag(batch, induced=False)
        wedge, triangle = batch
        restricted = restrict_dag(
            dag,
            {
                wedge: {0: frozenset({1, 2})},
                triangle: {0: frozenset({2, 3})},
            },
        )
        # Member plans carry their own exact whitelists (bitset form)...
        for plan, pattern in zip(restricted.plans, batch):
            by_vertex = {s.pattern_vertex: s.allowed for s in plan.steps}
            expected = {wedge: (1, 2), triangle: (2, 3)}[pattern]
            assert from_bitset(by_vertex[0]) == expected
        # ...while a shared node's pool whitelist is the union when every
        # member is restricted there, and None as soon as one is not.
        whitelisted = {
            node.allowed
            for node in restricted.nodes
            if node.allowed is not None
        }
        assert all(
            set(from_bitset(allowed)) <= {1, 2, 3} for allowed in whitelisted
        )
        # The base DAG is untouched (cache safety).
        assert all(node.allowed is None for node in dag.nodes)
        assert all(
            step.allowed is None for plan in dag.plans for step in plan.steps
        )

    def test_unrestricted_member_forces_open_pools(self):
        batch = shapes("wedge", "triangle")
        dag = build_plan_dag(batch, induced=False)
        wedge = batch[0]
        restricted = restrict_dag(dag, {wedge: {0: frozenset({5})}})
        # The shared prefix nodes serve the unrestricted triangle too, so
        # their pools must stay open.
        shared = set(restricted.paths[0]) & set(restricted.paths[1])
        for node_id in shared:
            assert restricted.nodes[node_id].allowed is None

    def test_restriction_prunes_survivors(self):
        graph = unlabeled_graph(5)
        batch = shapes("wedge",)
        dag = build_plan_dag(batch, induced=True)
        full_pool = dag_step_zero_pool(dag, graph)
        assert tuple(full_pool) == tuple(graph.vertices())
        restricted = restrict_dag(
            dag, {batch[0]: {dag.plans[0].order[0]: frozenset({0, 1})}}
        )
        assert tuple(dag_step_zero_pool(restricted, graph)) == (0, 1)
        assert dag_survivors(restricted, graph, (2,)) == []


# ---------------------------------------------------------------------------
# Per-leaf restriction soundness inside a batch
# ---------------------------------------------------------------------------
class _LeafCounter(Computation):
    """Test-only DAG computation: count accepting-leaf hits per member."""

    exploration_mode = VERTEX_EXPLORATION
    plan_compatible = True

    def __init__(self, dag):
        super().__init__()
        self.plan = dag

    def process(self, embedding):
        for member in accepting_patterns(
            self.plan, embedding.graph, embedding.words
        ):
            self.map_output(member, 1)

    def reduce_output(self, key, counts):
        return sum(counts)

    def termination_filter(self, embedding):
        return not dag_extendable(self.plan, embedding.graph, embedding.words)


def _leaf_counts(graph, dag):
    run = run_computation(
        graph,
        _LeafCounter(dag),
        ArabesqueConfig(plan=dag, collect_outputs=False, storage="list"),
    )
    return {
        member: count
        for member, count in run.output_aggregates.items()
        if isinstance(member, int)
    }


class TestLeafSoundness:
    @pytest.mark.parametrize("seed", [2, 11])
    def test_monomorphic_leaf_counts_times_aut_equal_monomorphisms(self, seed):
        graph = labeled_graph(seed)
        batch = tuple(
            p
            for p in enumerate_motif_patterns(graph, 3, min_size=2)
            if p.num_vertices >= 2
        )[:6]
        dag = build_plan_dag(batch, induced=False)
        counts = _leaf_counts(graph, dag)
        for member, plan in enumerate(dag.plans):
            matcher = SubgraphMatcher(
                plan.pattern.vertex_labels, plan.pattern.edge_dict(), graph
            )
            total = sum(1 for _ in matcher.match_iter())
            assert counts.get(member, 0) * plan.num_automorphisms == total

    @pytest.mark.parametrize("seed", [4, 9])
    def test_induced_leaf_counts_equal_solo_guided_and_exhaustive(self, seed):
        graph = unlabeled_graph(seed)
        batch = shapes("wedge", "triangle", "square", "diamond")
        dag = build_plan_dag(batch, induced=True)
        counts = _leaf_counts(graph, dag)
        miner = Miner(graph)
        for member, pattern in enumerate(batch):
            solo_guided = miner.match(pattern, induced=True).count()
            exhaustive = run_computation(
                graph,
                GraphMatching(pattern, induced=True),
                ArabesqueConfig(collect_outputs=False),
            ).num_outputs
            assert counts.get(member, 0) == solo_guided == exhaustive


# ---------------------------------------------------------------------------
# Motif distribution equivalence (the tentpole's hard bar)
# ---------------------------------------------------------------------------
class TestMotifEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 13])
    @pytest.mark.parametrize("max_size", [3, 4])
    def test_guided_equals_exhaustive_unlabeled(self, seed, max_size):
        graph = unlabeled_graph(seed)
        guided = run_guided_motifs(graph, max_size)
        assert motif_counts(guided.run) == exhaustive_counts(graph, max_size)

    @pytest.mark.parametrize("seed", [2, 8])
    def test_guided_equals_exhaustive_labeled(self, seed):
        graph = labeled_graph(seed)
        guided = run_guided_motifs(graph, 3)
        assert motif_counts(guided.run) == exhaustive_counts(graph, 3)

    def test_guided_equals_per_pattern_guided_counts(self):
        graph = unlabeled_graph(6)
        guided = run_guided_motifs(graph, 4)
        distribution = motif_counts(guided.run)
        miner = Miner(graph)
        for pattern in guided.batch:
            solo = miner.match(pattern, induced=True).count()
            assert distribution.get(pattern, 0) == solo

    def test_small_min_sizes(self):
        graph = labeled_graph(3)
        for min_size in (1, 2):
            guided = run_guided_motifs(graph, 3, min_size=min_size)
            assert motif_counts(guided.run) == exhaustive_counts(
                graph, 3, min_size=min_size
            )
        # Order-1 counts are the vertex label histogram.
        ones = {
            p: c
            for p, c in motif_counts(
                run_guided_motifs(graph, 3, min_size=1).run
            ).items()
            if p.num_vertices == 1
        }
        assert {
            p.vertex_labels[0]: c for p, c in ones.items()
        } == graph.vertex_label_histogram()

    def test_edgeless_graph_yields_empty_distribution(self):
        graph = LabeledGraph((0, 0, 0), [], [])
        guided = run_guided_motifs(graph, 3)
        assert guided.dag is None and guided.batch == ()
        assert motif_counts(guided.run) == {}
        assert guided.run.metrics is not None  # summary surface intact

    def test_zero_count_candidates_are_absent(self):
        # A triangle-free graph enumerates the triangle candidate but
        # reports no entry for it, matching the oracle's >=1 reporting.
        graph = strip_labels(
            LabeledGraph((0, 0, 0, 0), [(0, 1), (1, 2), (2, 3), (3, 0)], [0] * 4)
        )
        guided = run_guided_motifs(graph, 3)
        triangle = NAMED_SHAPES["triangle"].canonical()
        assert triangle in guided.batch
        assert triangle not in motif_counts(guided.run)

    def test_byte_identical_to_the_exhaustive_oracle(self):
        # Both strategies only aggregate (no outputs), so the canonical
        # signature — the application-observable surface — must agree
        # between them, not just across backends.
        graph = unlabeled_graph(12)
        guided = Miner(graph).motifs(4).run()
        exhaustive = Miner(graph).motifs(4).exhaustive().collect(False).run()
        assert guided.signature() == exhaustive.signature()

    def test_byte_identical_across_backends_workers_storage(self):
        graph = labeled_graph(10)
        reference = None
        for backend in BACKENDS:
            for workers in (1, 3):
                result = (
                    Miner(graph)
                    .motifs(3)
                    .backend(backend)
                    .workers(workers)
                    .run()
                )
                signature = result.signature()
                if reference is None:
                    reference = (signature, result.counts())
                assert signature == reference[0], (backend, workers)
                assert result.counts() == reference[1], (backend, workers)
        for storage in STORAGES:
            result = Miner(graph).motifs(3).storage(storage).run()
            assert result.signature() == reference[0], storage


# ---------------------------------------------------------------------------
# Engine validation for plan DAGs
# ---------------------------------------------------------------------------
class TestEngineValidation:
    def test_dag_requires_vertex_exploration(self):
        from repro.apps import FrequentSubgraphMining

        graph = labeled_graph(1)
        dag = build_plan_dag(shapes("triangle"), induced=False)
        with pytest.raises(ValueError, match="vertex-based"):
            run_computation(
                graph, FrequentSubgraphMining(2), ArabesqueConfig(plan=dag)
            )

    def test_dag_requires_plan_compatible_computation(self):
        graph = unlabeled_graph(1)
        dag = build_plan_dag(shapes("triangle"), induced=True)
        with pytest.raises(ValueError, match="plan_compatible"):
            run_computation(graph, MotifCounting(3), ArabesqueConfig(plan=dag))

    def test_computation_dag_must_match_config_dag(self):
        graph = unlabeled_graph(1)
        dag = build_plan_dag(shapes("triangle"), induced=True)
        other = build_plan_dag(shapes("wedge", "triangle"), induced=True)
        with pytest.raises(ValueError, match="different plan"):
            run_computation(
                graph, DagMotifCounting(dag), ArabesqueConfig(plan=other)
            )

    def test_config_rejects_non_plan_values(self):
        with pytest.raises(ValueError, match="MatchingPlan or"):
            ArabesqueConfig(plan=123)

    def test_semantics_guards_on_dag_computations(self):
        induced = build_plan_dag(shapes("triangle"), induced=True)
        mono = build_plan_dag(shapes("triangle"), induced=False)
        with pytest.raises(ValueError, match="induced"):
            DagMotifCounting(mono)
        with pytest.raises(ValueError, match="monomorphic"):
            DagPatternDomains(induced)


# ---------------------------------------------------------------------------
# Session integration: guided-by-default motifs + DAG cache
# ---------------------------------------------------------------------------
class TestSessionMotifs:
    def test_guided_is_the_default_and_carries_the_dag(self):
        result = Miner(unlabeled_graph(2)).motifs(3).run()
        assert result.guided
        assert result.dag is not None
        assert result.dag.num_patterns == len(
            [p for p in result.dag.patterns if p.num_vertices >= 3]
        )

    def test_second_motifs_run_skips_dag_compilation(self):
        miner = Miner(unlabeled_graph(4))
        miner.motifs(3).run()
        first = miner.cache_info()
        assert first.dag_compilations == 1
        assert first.dag_hits == 0
        second_result = miner.motifs(3).run()
        second = miner.cache_info()
        assert second.dag_compilations == 1
        assert second.dag_hits == 1
        assert second.runs == first.runs + 1
        assert second_result.counts()

    def test_dag_cache_keys_on_batch_and_semantics(self):
        miner = Miner(unlabeled_graph(4))
        miner.motifs(3).run()
        miner.motifs(4).run()  # different batch -> new DAG
        assert miner.cache_info().dag_compilations == 2
        miner.fsm(2, max_edges=2).run()  # monomorphic level DAGs
        assert miner.cache_info().dag_compilations > 2

    def test_collect_limit_count_require_exhaustive(self):
        miner = Miner(unlabeled_graph(2))
        with pytest.raises(SessionError, match="exhaustive"):
            miner.motifs(3).collect(True)
        with pytest.raises(SessionError, match="exhaustive"):
            miner.motifs(3).limit(10)
        with pytest.raises(SessionError, match="exhaustive"):
            miner.motifs(3).count()
        with pytest.raises(SessionError, match="exhaustive"):
            miner.motifs(3).collect(False).guided().collect(True)
        capped = ArabesqueConfig(output_limit=5)
        with pytest.raises(SessionError, match="exhaustive"):
            miner.motifs(3).config(capped).run()
        # The exhaustive path keeps the engine-level meaning.
        ok = miner.motifs(3).exhaustive().config(capped).run()
        assert not ok.guided and ok.dag is None

    def test_stream_works_guided(self):
        graph = unlabeled_graph(2)
        items = list(Miner(graph).motifs(3).stream())
        assert items == sorted(
            Miner(graph).motifs(3).run().counts().items(),
            key=lambda kv: (kv[0].num_vertices, -kv[1], repr(kv[0])),
        )

    def test_guided_default_storage_is_list(self):
        result = Miner(unlabeled_graph(2)).motifs(3).run()
        assert result.raw.steps[0].shipped_format == "list"
        explicit = (
            Miner(unlabeled_graph(2)).motifs(3).storage("odag").run()
        )
        assert explicit.raw.steps[0].shipped_format == "odag"
