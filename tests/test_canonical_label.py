"""Tests for canonical labeling: invariance, discrimination, automorphisms.

These validate the bliss-substitute at the heart of two-level pattern
aggregation (paper section 5.4): isomorphic labeled graphs must receive the
same certificate, non-isomorphic ones different certificates.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.isomorphism import canonical_form, find_automorphisms, vertex_orbits


def permuted(n, vlabels, edges, perm):
    """Relabel a graph's vertices by ``perm`` (v -> perm[v])."""
    new_labels = [0] * n
    for v in range(n):
        new_labels[perm[v]] = vlabels[v]
    new_edges = {}
    for (u, v), elabel in edges.items():
        a, b = perm[u], perm[v]
        if a > b:
            a, b = b, a
        new_edges[(a, b)] = elabel
    return new_labels, new_edges


class TestCanonicalForm:
    def test_empty_graph(self):
        cert, order = canonical_form(0, [], {})
        assert order == []

    def test_single_vertex(self):
        cert1, _ = canonical_form(1, [5], {})
        cert2, _ = canonical_form(1, [5], {})
        cert3, _ = canonical_form(1, [6], {})
        assert cert1 == cert2
        assert cert1 != cert3

    def test_triangle_invariant_under_all_permutations(self):
        vlabels = [1, 2, 3]
        edges = {(0, 1): 0, (1, 2): 0, (0, 2): 0}
        reference, _ = canonical_form(3, vlabels, edges)
        for perm in itertools.permutations(range(3)):
            pl, pe = permuted(3, vlabels, edges, perm)
            cert, _ = canonical_form(3, pl, pe)
            assert cert == reference

    def test_distinguishes_path_from_triangle(self):
        path, _ = canonical_form(3, [0, 0, 0], {(0, 1): 0, (1, 2): 0})
        tri, _ = canonical_form(3, [0, 0, 0], {(0, 1): 0, (1, 2): 0, (0, 2): 0})
        assert path != tri

    def test_distinguishes_vertex_labels(self):
        a, _ = canonical_form(2, [1, 1], {(0, 1): 0})
        b, _ = canonical_form(2, [1, 2], {(0, 1): 0})
        assert a != b

    def test_distinguishes_edge_labels(self):
        a, _ = canonical_form(2, [1, 1], {(0, 1): 5})
        b, _ = canonical_form(2, [1, 1], {(0, 1): 6})
        assert a != b

    def test_label_position_invariance(self):
        # blue-yellow edge == yellow-blue edge (the paper's Figure 2 example).
        a, _ = canonical_form(2, [10, 20], {(0, 1): 0})
        b, _ = canonical_form(2, [20, 10], {(0, 1): 0})
        assert a == b

    def test_ordering_is_valid_permutation(self):
        _, order = canonical_form(4, [0, 1, 0, 1], {(0, 1): 0, (1, 2): 0, (2, 3): 0})
        assert sorted(order) == [0, 1, 2, 3]

    def test_certificate_reconstructs_isomorphic_graph(self):
        vlabels = [3, 1, 2, 1]
        edges = {(0, 1): 7, (1, 2): 8, (2, 3): 7, (0, 3): 9}
        cert, order = canonical_form(4, vlabels, edges)
        n, label_row, edge_rows = cert
        assert n == 4
        # Rebuilding from the certificate must give back the same cert.
        rebuilt_edges = {(i, j): lab for i, j, lab in edge_rows}
        cert2, _ = canonical_form(n, list(label_row), rebuilt_edges)
        assert cert2 == cert

    def test_non_isomorphic_same_degree_sequence(self):
        # C6 vs two triangles... both 2-regular; our patterns are connected
        # but the labeler must still distinguish these.
        c6 = {(i, (i + 1) % 6): 0 for i in range(6)}
        c6 = {tuple(sorted(k)): v for k, v in c6.items()}
        two_triangles = {
            (0, 1): 0, (1, 2): 0, (0, 2): 0,
            (3, 4): 0, (4, 5): 0, (3, 5): 0,
        }
        a, _ = canonical_form(6, [0] * 6, c6)
        b, _ = canonical_form(6, [0] * 6, two_triangles)
        assert a != b

    def test_complete_graph_k5(self):
        edges = {(u, v): 0 for u in range(5) for v in range(u + 1, 5)}
        cert, _ = canonical_form(5, [0] * 5, edges)
        assert cert[0] == 5
        assert len(cert[2]) == 10


class TestAutomorphisms:
    def test_asymmetric_graph_trivial_group(self):
        # P3 with distinct end labels has only the identity.
        autos = find_automorphisms(3, [1, 0, 2], {(0, 1): 0, (1, 2): 0})
        assert autos == [(0, 1, 2)]

    def test_unlabeled_path_has_reflection(self):
        autos = find_automorphisms(3, [0, 0, 0], {(0, 1): 0, (1, 2): 0})
        assert (2, 1, 0) in autos
        assert len(autos) == 2

    def test_triangle_group_size_six(self):
        edges = {(0, 1): 0, (1, 2): 0, (0, 2): 0}
        autos = find_automorphisms(3, [0, 0, 0], edges)
        assert len(autos) == 6

    def test_k4_group_size(self):
        edges = {(u, v): 0 for u in range(4) for v in range(u + 1, 4)}
        assert len(find_automorphisms(4, [0] * 4, edges)) == 24

    def test_star_group_size(self):
        edges = {(0, i): 0 for i in range(1, 5)}
        assert len(find_automorphisms(5, [0] * 5, edges)) == 24  # 4! leaves

    def test_every_automorphism_preserves_edges(self):
        edges = {(0, 1): 0, (1, 2): 0, (2, 3): 0, (0, 3): 0}
        for sigma in find_automorphisms(4, [0] * 4, edges):
            for (u, v) in edges:
                a, b = sigma[u], sigma[v]
                key = (a, b) if a < b else (b, a)
                assert key in edges

    def test_labels_restrict_group(self):
        edges = {(0, 1): 0, (1, 2): 0, (0, 2): 0}
        autos = find_automorphisms(3, [1, 1, 2], edges)
        assert len(autos) == 2  # only the swap of the two label-1 vertices


class TestOrbits:
    def test_path_orbits(self):
        orbits = vertex_orbits(3, [0, 0, 0], {(0, 1): 0, (1, 2): 0})
        assert orbits[0] == orbits[2]
        assert orbits[1] != orbits[0]

    def test_triangle_single_orbit(self):
        orbits = vertex_orbits(3, [0, 0, 0], {(0, 1): 0, (1, 2): 0, (0, 2): 0})
        assert len(set(orbits)) == 1

    def test_orbit_ids_are_min_members(self):
        orbits = vertex_orbits(3, [0, 0, 0], {(0, 1): 0, (1, 2): 0})
        assert orbits[0] == 0
        assert orbits[1] == 1

    def test_labels_split_orbits(self):
        orbits = vertex_orbits(3, [1, 0, 2], {(0, 1): 0, (1, 2): 0})
        assert len(set(orbits)) == 3


def random_small_graph(rng, max_n=6, num_labels=2):
    n = rng.randint(1, max_n)
    vlabels = [rng.randrange(num_labels) for _ in range(n)]
    edges = {}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                edges[(u, v)] = rng.randrange(2)
    return n, vlabels, edges


@given(seed=st.integers(0, 10_000), perm_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_property_certificate_permutation_invariant(seed, perm_seed):
    """Certificates are invariant under arbitrary vertex renumbering."""
    rng = random.Random(seed)
    n, vlabels, edges = random_small_graph(rng)
    perm = list(range(n))
    random.Random(perm_seed).shuffle(perm)
    pl, pe = permuted(n, vlabels, edges, perm)
    cert_a, _ = canonical_form(n, vlabels, edges)
    cert_b, _ = canonical_form(n, pl, pe)
    assert cert_a == cert_b


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_property_automorphisms_form_group(seed):
    """The returned set is closed under composition and contains identity."""
    rng = random.Random(seed)
    n, vlabels, edges = random_small_graph(rng, max_n=5)
    autos = set(find_automorphisms(n, vlabels, edges))
    identity = tuple(range(n))
    assert identity in autos
    for a in autos:
        for b in autos:
            composed = tuple(a[b[v]] for v in range(n))
            assert composed in autos
