"""Tests for the VF2-style subgraph isomorphism matcher."""

from repro.graph import complete_graph, cycle_graph, graph_from_edges, path_graph
from repro.isomorphism import SubgraphMatcher, distinct_embeddings, find_isomorphisms

TRIANGLE = ([0, 0, 0], {(0, 1): 0, (1, 2): 0, (0, 2): 0})
EDGE = ([0, 0], {(0, 1): 0})
PATH3 = ([0, 0, 0], {(0, 1): 0, (1, 2): 0})


class TestBasicMatching:
    def test_edge_in_triangle(self):
        g = complete_graph(3)
        # Each of the 3 edges in 2 orientations.
        assert len(find_isomorphisms(*EDGE, g)) == 6

    def test_triangle_count_in_k4(self):
        g = complete_graph(4)
        matches = find_isomorphisms(*TRIANGLE, g)
        assert len(matches) == 4 * 6  # 4 triangles x 6 automorphisms

    def test_distinct_embeddings_dedupes(self):
        g = complete_graph(4)
        assert len(distinct_embeddings(*TRIANGLE, g)) == 4

    def test_no_triangle_in_path(self):
        g = path_graph(5)
        assert find_isomorphisms(*TRIANGLE, g) == []

    def test_empty_pattern_matches_once(self):
        g = path_graph(3)
        assert find_isomorphisms([], {}, g) == [()]

    def test_mapping_positions_follow_pattern_ids(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        for mapping in find_isomorphisms(*PATH3, g):
            # pattern vertex 1 is the middle: must map to graph vertex 1.
            assert mapping[1] == 1


class TestLabels:
    def test_vertex_labels_restrict(self):
        g = graph_from_edges([(0, 1), (1, 2)], vertex_labels=[1, 2, 1])
        pattern = ([1, 2], {(0, 1): 0})
        matches = find_isomorphisms(*pattern, g)
        assert sorted(matches) == [(0, 1), (2, 1)]

    def test_edge_labels_restrict(self):
        g = graph_from_edges([(0, 1), (1, 2)], edge_labels=[7, 8])
        pattern = ([0, 0], {(0, 1): 7})
        matches = find_isomorphisms(*pattern, g)
        assert sorted(matches) == [(0, 1), (1, 0)]

    def test_label_mismatch_no_matches(self):
        g = graph_from_edges([(0, 1)], vertex_labels=[1, 1])
        pattern = ([2, 2], {(0, 1): 0})
        assert find_isomorphisms(*pattern, g) == []


class TestInducedSemantics:
    def test_induced_path_not_in_triangle(self):
        # P3 occurs in K3 as a monomorphism, but not as induced subgraph.
        g = complete_graph(3)
        assert len(find_isomorphisms(*PATH3, g, induced=False)) == 6
        assert find_isomorphisms(*PATH3, g, induced=True) == []

    def test_induced_path_in_c4(self):
        g = cycle_graph(4)
        assert len(distinct_embeddings(*PATH3, g, induced=True)) == 4

    def test_induced_counts_on_c5(self):
        g = cycle_graph(5)
        # Every vertex is the middle of exactly one induced P3.
        assert len(distinct_embeddings(*PATH3, g, induced=True)) == 5


class TestMatcherApi:
    def test_count_with_limit(self):
        matcher = SubgraphMatcher(*EDGE, complete_graph(5))
        assert matcher.count(limit=3) == 3

    def test_count_unlimited(self):
        matcher = SubgraphMatcher(*EDGE, complete_graph(5))
        assert matcher.count() == 20

    def test_exists_true(self):
        assert SubgraphMatcher(*TRIANGLE, complete_graph(3)).exists()

    def test_exists_false(self):
        assert not SubgraphMatcher(*TRIANGLE, path_graph(4)).exists()

    def test_limit_in_find(self):
        assert len(find_isomorphisms(*EDGE, complete_graph(5), limit=7)) == 7


class TestDisconnectedPattern:
    def test_two_isolated_vertices(self):
        pattern = ([0, 0], {})
        g = path_graph(3)
        matches = find_isomorphisms(*pattern, g)
        assert len(matches) == 6  # ordered pairs of distinct vertices

    def test_two_disjoint_edges_induced(self):
        pattern = ([0, 0, 0, 0], {(0, 1): 0, (2, 3): 0})
        # P4's only 4-vertex choice includes the middle edge -> not induced.
        assert distinct_embeddings(*pattern, path_graph(4), induced=True) == set()
        # P5 has exactly one independent edge pair at distance >= 2.
        sets = distinct_embeddings(*pattern, path_graph(5), induced=True)
        assert sets == {frozenset({0, 1, 3, 4})}
