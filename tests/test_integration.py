"""End-to-end integration tests: the full pipeline on realistic datasets,
configuration matrices, and cross-application consistency."""

import pytest

from repro.apps import (
    CliqueFinding,
    FrequentCliqueMining,
    FrequentSubgraphMining,
    GraphMatching,
    MaximalCliqueFinding,
    MotifCounting,
    cliques_by_size,
    frequent_clique_patterns,
    frequent_patterns,
    motif_counts,
)
from repro.baselines import (
    count_cliques_by_size,
    count_motifs_up_to,
    enumerate_maximal_cliques,
    run_grami,
    run_tlp_fsm,
)
from repro.core import ArabesqueConfig, LIST_STORAGE, Pattern, run_computation
from repro.datasets import citeseer_like, mico_like
from repro.graph import strip_labels

TRIANGLE = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0)))


@pytest.fixture(scope="module")
def citeseer():
    return citeseer_like(scale=0.3)


@pytest.fixture(scope="module")
def mico():
    return strip_labels(mico_like(scale=0.004))


class TestConfigurationMatrix:
    """Every (storage, workers, two-level) combination agrees on results."""

    @pytest.mark.parametrize("storage", ["odag", LIST_STORAGE])
    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("two_level", [True, False])
    def test_motifs_agree(self, mico, storage, workers, two_level):
        config = ArabesqueConfig(
            storage=storage,
            num_workers=workers,
            two_level_aggregation=two_level,
            collect_outputs=False,
        )
        result = run_computation(mico, MotifCounting(3), config)
        reference = count_motifs_up_to(mico, 3)
        assert motif_counts(result) == reference

    @pytest.mark.parametrize("storage", ["odag", LIST_STORAGE])
    def test_fsm_agrees(self, citeseer, storage):
        threshold = 40
        config = ArabesqueConfig(storage=storage, collect_outputs=False)
        result = run_computation(
            citeseer, FrequentSubgraphMining(threshold, max_edges=2), config
        )
        grami = run_grami(citeseer, threshold, max_edges=2)
        assert set(frequent_patterns(result, threshold)) == set(grami.frequent)


class TestCrossApplicationConsistency:
    def test_cliques_are_motifs(self, mico):
        """The K3 count must agree between the motif census and the clique
        enumerator — two different applications, same engine."""
        motifs = motif_counts(run_computation(mico, MotifCounting(3)))
        triangle_count = motifs.get(TRIANGLE.canonical(), 0)
        cliques = cliques_by_size(
            run_computation(mico, CliqueFinding(max_size=3, min_size=3))
        )
        assert triangle_count == len(cliques.get(3, []))

    def test_matching_agrees_with_motifs(self, mico):
        """Matching the triangle query finds exactly the triangle motifs."""
        matches = run_computation(mico, GraphMatching(TRIANGLE, induced=True))
        motifs = motif_counts(run_computation(mico, MotifCounting(3)))
        assert matches.num_outputs == motifs.get(TRIANGLE.canonical(), 0)

    def test_maximal_cliques_subset_of_cliques(self, mico):
        maximal = set(run_computation(mico, MaximalCliqueFinding(max_size=4)).outputs)
        all_cliques = set()
        for size, cliques in cliques_by_size(
            run_computation(mico, CliqueFinding(max_size=4))
        ).items():
            all_cliques.update(cliques)
        assert maximal <= all_cliques
        # And they agree with Bron-Kerbosch where sizes permit.
        bk = {
            tuple(sorted(c))
            for c in enumerate_maximal_cliques(mico)
            if len(c) <= 4
        }
        bk_capped = {c for c in bk if len(c) <= 4}
        assert maximal <= bk_capped | {
            c for c in maximal
        }  # maximal-with-cap semantics checked in unit tests

    def test_frequent_cliques_subset_of_fsm_like_threshold(self, mico):
        """Every frequent clique pattern must be a clique and meet the
        threshold under the same MNI machinery FSM uses."""
        threshold = 25
        result = run_computation(mico, FrequentCliqueMining(threshold, max_size=3))
        for pattern, support in frequent_clique_patterns(result, threshold).items():
            assert support >= threshold
            expected_edges = pattern.num_vertices * (pattern.num_vertices - 1) // 2
            assert pattern.num_edges == expected_edges

    def test_tlp_and_engine_find_same_frequent_patterns(self, citeseer):
        threshold = 40
        tlp = run_tlp_fsm(citeseer, threshold, max_edges=2, num_workers=3)
        engine = run_computation(
            citeseer,
            FrequentSubgraphMining(threshold, max_edges=2),
            ArabesqueConfig(collect_outputs=False),
        )
        assert set(tlp.frequent) == set(frequent_patterns(engine, threshold))


class TestDatasetPipelines:
    def test_full_citeseer_fsm_smoke(self):
        """The paper's FSM-CiteSeer S=300 workload end to end."""
        graph = citeseer_like()
        result = run_computation(
            graph,
            FrequentSubgraphMining(300, max_edges=3),
            ArabesqueConfig(num_workers=4, collect_outputs=False),
        )
        frequent = frequent_patterns(result, 300)
        assert frequent  # CiteSeer-like has frequent single edges at S=300
        assert all(support >= 300 for support in frequent.values())
        assert result.metrics.total_messages > 0

    def test_mico_cliques_smoke(self, mico):
        result = run_computation(
            mico,
            CliqueFinding(max_size=4),
            ArabesqueConfig(num_workers=4, output_limit=1000),
        )
        by_size = cliques_by_size(result)
        assert by_size[1] and by_size[2]
        assert count_cliques_by_size(mico, max_size=2)[2] == mico.num_edges

    def test_stats_are_monotone_through_steps(self, mico):
        result = run_computation(
            mico, MotifCounting(3), ArabesqueConfig(collect_outputs=False)
        )
        for stats in result.steps:
            assert 0 <= stats.canonical_candidates <= stats.candidates_generated
            assert stats.stored_embeddings <= stats.processed_embeddings

    def test_spurious_discards_counted_on_labeled_graph(self):
        """Labeled graphs with many per-pattern ODAGs are exactly where
        cross-pattern spurious paths appear; the stat must record them."""
        graph = mico_like(scale=0.004)  # labeled
        result = run_computation(
            graph, MotifCounting(3), ArabesqueConfig(collect_outputs=False)
        )
        total_spurious = sum(s.spurious_discarded for s in result.steps)
        assert total_spurious >= 0  # counted (may be zero on tiny graphs)
        # The census still matches the oracle regardless of discards.
        assert motif_counts(result) == count_motifs_up_to(graph, 3)
