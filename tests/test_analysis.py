"""Tests for the analysis module: profiles, reports, scalability sweeps."""

import pytest

from repro.analysis import (
    GraphProfile,
    ScalabilitySweep,
    count_triangles,
    count_wedges,
    profile_graph,
    run_report,
    scalability_sweep,
)
from repro.apps import MotifCounting
from repro.core import run_computation
from repro.graph import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)


class TestTriangleCounting:
    def test_k4(self):
        assert count_triangles(complete_graph(4)) == 4

    def test_k6(self):
        assert count_triangles(complete_graph(6)) == 20

    def test_triangle_free(self):
        assert count_triangles(grid_graph(4, 4)) == 0
        assert count_triangles(star_graph(10)) == 0

    def test_cycle(self):
        assert count_triangles(cycle_graph(3)) == 1
        assert count_triangles(cycle_graph(5)) == 0

    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_bruteforce(self, seed):
        import itertools

        g = gnm_random_graph(20, 60, seed=seed)
        brute = sum(
            1
            for a, b, c in itertools.combinations(range(20), 3)
            if g.adjacent(a, b) and g.adjacent(b, c) and g.adjacent(a, c)
        )
        assert count_triangles(g) == brute


class TestWedges:
    def test_star(self):
        # Hub of degree n: C(n,2) wedges.
        assert count_wedges(star_graph(5)) == 10

    def test_path(self):
        assert count_wedges(path_graph(4)) == 2


class TestProfile:
    def test_complete_graph_profile(self):
        profile = profile_graph(complete_graph(5))
        assert profile.num_vertices == 5
        assert profile.triangles == 10
        assert profile.global_clustering == pytest.approx(1.0)
        assert profile.connected_components == 1
        assert profile.max_degree == 4

    def test_empty_graph_profile(self):
        from repro.graph import LabeledGraph

        profile = profile_graph(LabeledGraph([], []))
        assert profile.num_vertices == 0
        assert profile.global_clustering == 0.0

    def test_lines_render(self):
        lines = profile_graph(complete_graph(4)).lines()
        assert any("triangles" in line for line in lines)

    def test_grid_zero_clustering(self):
        assert profile_graph(grid_graph(3, 3)).global_clustering == 0.0


class TestRunReport:
    def test_report_contains_key_figures(self):
        result = run_computation(complete_graph(5), MotifCounting(3))
        report = run_report(result)
        assert "exploration steps" in report
        assert "simulated makespan" in report
        assert "per-step" in report

    def test_report_without_metrics(self):
        from repro.core import RunResult

        report = run_report(RunResult())
        assert "workers" not in report


class TestScalabilitySweep:
    def test_sweep_runs_all_counts(self):
        g = gnm_random_graph(30, 90, seed=3)
        sweep = scalability_sweep(g, lambda: MotifCounting(3), (1, 2, 4))
        assert set(sweep.makespans) == {1, 2, 4}
        assert all(t > 0 for t in sweep.makespans.values())

    def test_speedups_relative_to_smallest(self):
        sweep = ScalabilitySweep(makespans={1: 8.0, 2: 4.0, 4: 2.0})
        curve = sweep.speedups()
        assert curve[4] == pytest.approx(4.0)

    def test_parallel_efficiency(self):
        sweep = ScalabilitySweep(makespans={1: 8.0, 4: 4.0})
        assert sweep.parallel_efficiency()[4] == pytest.approx(0.5)

    def test_parallel_efficiency_requires_single_worker_run(self):
        sweep = ScalabilitySweep(makespans={2: 4.0})
        with pytest.raises(ValueError):
            sweep.parallel_efficiency()

    def test_sweep_results_consistent(self):
        g = gnm_random_graph(25, 70, seed=5)
        sweep = scalability_sweep(g, lambda: MotifCounting(3), (1, 3))
        assert (
            sweep.results[1].total_processed == sweep.results[3].total_processed
        )
