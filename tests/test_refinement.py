"""Tests for color refinement (1-WL)."""

from repro.isomorphism import (
    color_classes,
    individualize,
    initial_coloring,
    is_discrete,
    refine_coloring,
)
from repro.isomorphism.canonical_label import build_adjacency


def adjacency_of(n, edges):
    return build_adjacency(n, {tuple(sorted(e)): 0 for e in edges})


class TestInitialColoring:
    def test_groups_by_label(self):
        assert initial_coloring([5, 3, 5, 3]) == [1, 0, 1, 0]

    def test_single_label(self):
        assert initial_coloring([7, 7, 7]) == [0, 0, 0]

    def test_empty(self):
        assert initial_coloring([]) == []


class TestRefine:
    def test_path_distinguishes_ends(self):
        # P3: ends (degree 1) split from the middle (degree 2).
        adj = adjacency_of(3, [(0, 1), (1, 2)])
        refined = refine_coloring(adj, [0, 0, 0])
        assert refined[0] == refined[2]
        assert refined[1] != refined[0]

    def test_regular_graph_stays_uniform(self):
        # C4 is vertex-transitive: refinement cannot split it.
        adj = adjacency_of(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        refined = refine_coloring(adj, [0, 0, 0, 0])
        assert len(set(refined)) == 1

    def test_respects_initial_colors(self):
        adj = adjacency_of(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        refined = refine_coloring(adj, [0, 1, 0, 1])
        assert refined[0] == refined[2]
        assert refined[1] == refined[3]
        assert refined[0] != refined[1]

    def test_edge_labels_split(self):
        # Same topology (P3) but distinct edge labels break the symmetry.
        adj = build_adjacency(3, {(0, 1): 7, (1, 2): 8})
        refined = refine_coloring(adj, [0, 0, 0])
        assert refined[0] != refined[2]

    def test_star_two_levels(self):
        adj = adjacency_of(4, [(0, 1), (0, 2), (0, 3)])
        refined = refine_coloring(adj, [0, 0, 0, 0])
        assert refined[1] == refined[2] == refined[3]
        assert refined[0] != refined[1]

    def test_propagation_needs_iterations(self):
        # P5: iterative refinement separates distance-to-end classes.
        adj = adjacency_of(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        refined = refine_coloring(adj, [0] * 5)
        assert refined[0] == refined[4]
        assert refined[1] == refined[3]
        assert len({refined[0], refined[1], refined[2]}) == 3


class TestHelpers:
    def test_color_classes_sorted(self):
        assert color_classes([1, 0, 1]) == [[1], [0, 2]]

    def test_is_discrete(self):
        assert is_discrete([2, 0, 1])
        assert not is_discrete([0, 0, 1])

    def test_individualize_splits_before_class(self):
        result = individualize([0, 0, 0], 1)
        assert result[1] == 0
        assert result[0] == result[2] == 1

    def test_individualize_shifts_higher_colors(self):
        result = individualize([0, 1, 1, 2], 2)
        # vertex 2 keeps color 1; old color-1 peer and color-2 shift up.
        assert result == [0, 2, 1, 3]
