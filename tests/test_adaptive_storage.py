"""Tests for the adaptive storage mode (section 6.3's sparse-graph fallback)."""

import pytest

from repro.apps import MotifCounting, motif_counts
from repro.core import (
    ADAPTIVE_STORAGE,
    ArabesqueConfig,
    LIST_STORAGE,
    ODAG_STORAGE,
    run_computation,
)
from repro.graph import complete_graph, gnm_random_graph


class TestAdaptiveStorage:
    def test_config_accepts_adaptive(self):
        assert ArabesqueConfig(storage=ADAPTIVE_STORAGE).storage == ADAPTIVE_STORAGE

    def test_results_identical_across_modes(self):
        g = gnm_random_graph(14, 35, seed=2)
        reference = motif_counts(
            run_computation(g, MotifCounting(3), ArabesqueConfig(storage=ODAG_STORAGE))
        )
        for storage in (LIST_STORAGE, ADAPTIVE_STORAGE):
            result = motif_counts(
                run_computation(g, MotifCounting(3), ArabesqueConfig(storage=storage))
            )
            assert result == reference, storage

    def test_sparse_shallow_steps_ship_lists(self):
        """On a near-tree sparse graph the shallow levels have almost no
        prefix sharing, so the ODAG's per-entry overhead loses to plain
        lists — adaptive mode must fall back, exactly as the paper's
        Instagram runs did."""
        g = gnm_random_graph(2000, 2100, seed=9)
        config = ArabesqueConfig(storage=ADAPTIVE_STORAGE, collect_outputs=False)
        result = run_computation(g, MotifCounting(3), config)
        formats = [s.shipped_format for s in result.steps if s.stored_embeddings]
        assert formats and all(f == LIST_STORAGE for f in formats)

    def test_dense_deep_steps_ship_odags(self):
        """On a dense graph deeper levels share prefixes heavily — adaptive
        mode must switch to ODAGs there (and may still use lists at the
        shallow levels, like the real system)."""
        g = complete_graph(14)
        config = ArabesqueConfig(storage=ADAPTIVE_STORAGE, collect_outputs=False)
        result = run_computation(g, MotifCounting(4), config)
        formats = [s.shipped_format for s in result.steps if s.stored_embeddings]
        assert formats[-1] == ODAG_STORAGE

    def test_adaptive_never_ships_more_bytes_than_either_pure_mode(self):
        g = gnm_random_graph(20, 60, seed=4)
        totals = {}
        for storage in (ODAG_STORAGE, LIST_STORAGE, ADAPTIVE_STORAGE):
            config = ArabesqueConfig(storage=storage, collect_outputs=False)
            result = run_computation(g, MotifCounting(3), config)
            totals[storage] = (
                result.metrics.total_bytes + result.metrics.total_broadcast_bytes
            )
        # Adaptive picks the cheaper *store payload* per step; the fixed
        # per-entry overheads differ slightly between representations, so
        # allow a small tolerance rather than strict dominance.
        assert totals[ADAPTIVE_STORAGE] <= 1.1 * min(
            totals[ODAG_STORAGE], totals[LIST_STORAGE]
        )

    def test_shipped_format_recorded_for_pure_modes(self):
        g = gnm_random_graph(10, 20, seed=1)
        for storage in (ODAG_STORAGE, LIST_STORAGE):
            result = run_computation(
                g, MotifCounting(2, min_size=2), ArabesqueConfig(storage=storage)
            )
            non_empty = [s for s in result.steps if s.stored_embeddings]
            assert all(s.shipped_format == storage for s in non_empty)
