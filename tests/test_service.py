"""Tests for the query service (repro.service).

Four concerns:

* **registry** — the miner pool loads/evicts by name with
  ``memory_nbytes()``-based LRU accounting, errors loudly on unknown
  names, and its whole-result cache counts hits/misses/evictions;
* **query specs** — JSON parsing validates loudly, and the canonical
  signatures unify equivalent spellings (named shape vs explicit edge
  list) while ignoring execution-only knobs;
* **end-to-end** — an in-process HTTP server answers motifs/match/fsm
  byte-identically to direct ``Miner`` runs, serves repeats from the
  result cache without recompiling anything, and maps every failure
  mode to the right status code;
* **admission + budgets** — a budget-busting query gets a 422 while
  concurrent well-behaved queries complete, and an overfull pool
  answers 429.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets import UnknownDatasetError, load
from repro.graph import assign_labels, gnm_random_graph
from repro.service import (
    MinerRegistry,
    QueryService,
    ServiceError,
    UnknownGraphError,
    parse_pattern,
    parse_request,
    run_query,
    start_in_background,
)
from repro.service.registry import payload_nbytes
from repro.session import Miner


def small_graph(seed=5):
    return assign_labels(gnm_random_graph(24, 60, seed=seed), 3, seed=seed)


# ---------------------------------------------------------------------------
# MinerRegistry
# ---------------------------------------------------------------------------
class TestRegistryPool:
    def test_load_and_get_return_the_same_warm_session(self):
        registry = MinerRegistry()
        miner = registry.load("g", small_graph())
        assert registry.get("g") is miner
        assert registry.names() == ("g",)

    def test_unknown_graph_error_lists_loaded_names(self):
        registry = MinerRegistry()
        registry.load("alpha", small_graph())
        with pytest.raises(UnknownGraphError, match=r"'beta'.*alpha"):
            registry.get("beta")
        with pytest.raises(UnknownGraphError, match="cannot evict"):
            registry.evict("beta")

    def test_reload_of_a_loaded_name_is_rejected(self):
        registry = MinerRegistry()
        registry.load("g", small_graph())
        with pytest.raises(ServiceError, match="already loaded"):
            registry.load("g", small_graph(seed=7))
        registry.evict("g")
        registry.load("g", small_graph(seed=7))  # evict-then-replace works

    def test_load_dataset_goes_through_the_named_lookup(self):
        registry = MinerRegistry()
        registry.load_dataset("cs", dataset="citeseer", scale=0.02)
        assert registry.get("cs").graph.num_vertices > 0
        with pytest.raises(UnknownDatasetError, match="available datasets"):
            registry.load_dataset("nope")

    def test_memory_accounting_and_lru_eviction(self):
        g1, g2, g3 = small_graph(1), small_graph(2), small_graph(3)
        # Room for exactly two of the three (whichever pair is larger).
        limit = g1.memory_nbytes() + max(g2.memory_nbytes(), g3.memory_nbytes())
        registry = MinerRegistry(memory_limit_nbytes=limit)
        registry.load("a", g1)
        registry.load("b", g2)
        assert registry.memory_nbytes() == g1.memory_nbytes() + g2.memory_nbytes()
        registry.get("a")  # touch: 'b' becomes least recently used
        registry.load("c", g3)
        assert registry.names() == ("a", "c")
        info = registry.cache_info()
        assert info.graphs_loaded == 3 and info.graphs_evicted == 1

    def test_graph_too_big_for_the_limit_is_rejected_loudly(self):
        graph = small_graph()
        registry = MinerRegistry(memory_limit_nbytes=graph.memory_nbytes() - 1)
        with pytest.raises(ServiceError, match="memory limit"):
            registry.load("g", graph)
        assert registry.names() == ()


class TestResultCache:
    def test_miss_computes_then_hit_skips(self):
        registry = MinerRegistry()
        registry.load("g", small_graph())
        calls = []

        def compute(miner):
            calls.append(miner)
            return {"answer": 42}

        payload, hit = registry.cached("g", "q", "c", compute)
        assert (payload, hit) == ({"answer": 42}, False)
        payload, hit = registry.cached("g", "q", "c", compute)
        assert (payload, hit) == ({"answer": 42}, True)
        assert len(calls) == 1
        info = registry.cache_info()
        assert info.result_hits == 1 and info.result_misses == 1

    def test_different_signatures_are_different_entries(self):
        registry = MinerRegistry()
        registry.load("g", small_graph())
        registry.cached("g", "q1", "c", lambda m: 1)
        registry.cached("g", "q2", "c", lambda m: 2)
        registry.cached("g", "q1", "c2", lambda m: 3)
        assert registry.cache_info().result_misses == 3

    def test_evicting_a_graph_drops_its_results(self):
        registry = MinerRegistry()
        registry.load("g", small_graph())
        registry.cached("g", "q", "c", lambda m: 1)
        registry.evict("g")
        assert registry.cache_info().result_evictions == 1
        registry.load("g", small_graph())
        _, hit = registry.cached("g", "q", "c", lambda m: 2)
        assert not hit  # the stale entry is gone

    def test_lru_byte_cap_evicts_oldest_results(self):
        probe = {"rows": "x" * 1000}
        # Room for exactly two payloads of this shape.
        limit = 2 * payload_nbytes(probe) + 16
        registry = MinerRegistry(result_cache_limit_nbytes=limit)
        registry.load("g", small_graph())
        registry.cached("g", "q1", "c", lambda m: {"rows": "x" * 1000})
        registry.cached("g", "q2", "c", lambda m: {"rows": "y" * 1000})
        registry.cached("g", "q1", "c", lambda m: None)  # touch q1
        registry.cached("g", "q3", "c", lambda m: {"rows": "z" * 1000})
        _, hit = registry.cached("g", "q1", "c", lambda m: None)
        assert hit  # recently touched, survived
        _, hit = registry.cached("g", "q2", "c", lambda m: {"rows": "y" * 1000})
        assert not hit  # LRU entry was pushed out by bytes
        assert registry.cache_info().result_evictions >= 1
        assert 0 < registry.result_cache_nbytes() <= limit

    def test_oversize_payload_is_never_cached(self):
        registry = MinerRegistry(result_cache_limit_nbytes=256)
        registry.load("g", small_graph())
        _, hit = registry.cached("g", "big", "c", lambda m: {"rows": "x" * 4096})
        assert not hit
        _, hit = registry.cached("g", "big", "c", lambda m: {"rows": "x" * 4096})
        assert not hit  # still a miss: the payload exceeds the whole budget
        info = registry.cache_info()
        assert info.result_oversize == 2
        assert registry.result_cache_nbytes() == 0

    def test_zero_limit_disables_result_caching(self):
        registry = MinerRegistry(result_cache_limit_nbytes=0)
        registry.load("g", small_graph())
        registry.cached("g", "q", "c", lambda m: 1)
        _, hit = registry.cached("g", "q", "c", lambda m: 1)
        assert not hit

    def test_describe_reports_result_cache_bytes(self):
        registry = MinerRegistry()
        registry.load("g", small_graph())
        registry.cached("g", "q", "c", lambda m: {"rows": list(range(100))})
        block = registry.describe()["result_cache"]
        assert block["entries"] == 1
        assert block["nbytes"] == registry.result_cache_nbytes() > 0
        assert block["limit_nbytes"] == registry.result_cache_limit_nbytes


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------
class TestParsing:
    def test_unknown_workload_and_keys_are_loud(self):
        with pytest.raises(ServiceError, match="unknown workload"):
            parse_request("pagerank", {})
        with pytest.raises(ServiceError, match="unknown request keys"):
            parse_request("motifs", {"graph": "g", "bogus": 1})
        with pytest.raises(ServiceError, match="support"):
            parse_request("fsm", {"graph": "g"})
        with pytest.raises(ServiceError, match="query"):
            parse_request("match", {"graph": "g"})

    @pytest.mark.parametrize(
        "body",
        [
            {"max_size": 0},
            {"max_size": True},
            {"deadline_ms": -5},
            {"max_embeddings": 0},
            {"stream": "yes"},
            {"workers": 1.5},
        ],
    )
    def test_bad_values_are_loud(self, body):
        with pytest.raises(ServiceError):
            parse_request("motifs", {"graph": "g", **body})

    def test_named_shape_and_explicit_edges_share_a_signature(self):
        named = parse_request("match", {"graph": "g", "query": "triangle"})
        explicit = parse_request(
            "match",
            {"graph": "g", "query": {"edges": [[2, 1], [0, 2], [1, 0]]}},
        )
        assert named.query_signature() == explicit.query_signature()

    def test_execution_knobs_stay_out_of_the_signatures(self):
        plain = parse_request("motifs", {"graph": "g", "max_size": 3})
        tuned = parse_request(
            "motifs",
            {
                "graph": "g",
                "max_size": 3,
                "workers": 4,
                "backend": "thread",
                "storage": "list",
                "deadline_ms": 100,
                "max_embeddings": 10,
                "stream": True,
            },
        )
        assert plain.query_signature() == tuned.query_signature()
        assert plain.config_signature() == tuned.config_signature()

    def test_limit_is_in_the_config_signature(self):
        a = parse_request("match", {"graph": "g", "query": "wedge", "limit": 5})
        b = parse_request("match", {"graph": "g", "query": "wedge", "limit": 6})
        assert a.query_signature() == b.query_signature()
        assert a.config_signature() != b.config_signature()

    def test_pattern_objects_validate_loudly(self):
        with pytest.raises(ServiceError, match="unknown query shape"):
            parse_pattern("dodecahedron")
        with pytest.raises(ServiceError, match="unknown query shape"):
            parse_pattern("/etc/passwd")  # paths are not accepted over HTTP
        with pytest.raises(ServiceError, match="non-empty list"):
            parse_pattern({"edges": []})
        with pytest.raises(ServiceError, match="distinct vertex ids"):
            parse_pattern({"edges": [[0, 0]]})
        with pytest.raises(ServiceError, match="vertex_labels"):
            parse_pattern({"edges": [[0, 1]], "vertex_labels": [1]})


# ---------------------------------------------------------------------------
# End-to-end over HTTP
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    registry = MinerRegistry()
    registry.load("tiny", small_graph())
    registry.load_dataset("citeseer", scale=0.05)
    service = QueryService(registry, max_concurrent=4, max_pending=8)
    handle = start_in_background(service)
    yield handle
    handle.stop()


def call(handle, method, path, body=None, timeout=60):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        handle.url + path, data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestEndpoints:
    def test_health_and_stats(self, server):
        status, raw = call(server, "GET", "/health")
        assert status == 200 and json.loads(raw) == {"status": "ok"}
        status, raw = call(server, "GET", "/stats")
        stats = json.loads(raw)
        assert status == 200
        assert set(stats) >= {"server", "admission", "registry", "graphs"}

    def test_graphs_listing_reports_the_pool(self, server):
        status, raw = call(server, "GET", "/graphs")
        listing = json.loads(raw)
        assert status == 200
        assert set(listing["graphs"]) >= {"tiny", "citeseer"}
        assert listing["graphs"]["tiny"]["memory_nbytes"] > 0

    def test_load_query_evict_cycle(self, server):
        status, raw = call(
            server, "POST", "/graphs",
            {"name": "cs-tmp", "dataset": "citeseer", "scale": 0.02},
        )
        assert status == 200 and json.loads(raw)["loaded"] == "cs-tmp"
        status, _ = call(
            server, "POST", "/motifs", {"graph": "cs-tmp", "max_size": 3}
        )
        assert status == 200
        status, _ = call(server, "DELETE", "/graphs/cs-tmp")
        assert status == 200
        status, _ = call(
            server, "POST", "/motifs", {"graph": "cs-tmp", "max_size": 3}
        )
        assert status == 404

    def test_error_statuses(self, server):
        assert call(server, "POST", "/motifs", {"graph": "nope"})[0] == 404
        assert call(server, "POST", "/motifs", {"graph": "tiny", "x": 1})[0] == 400
        assert call(server, "POST", "/query", {"graph": "tiny"})[0] == 400
        assert call(server, "GET", "/bogus")[0] == 404
        assert call(server, "PUT", "/health")[0] == 405

    def test_loading_a_duplicate_name_is_a_400(self, server):
        status, raw = call(
            server, "POST", "/graphs", {"name": "tiny", "dataset": "citeseer"}
        )
        assert status == 400
        assert "already loaded" in json.loads(raw)["error"]["message"]


class TestQueriesEndToEnd:
    """The acceptance triangle: byte-identical to direct runs, cached
    repeats, budget rejections alongside healthy traffic."""

    @pytest.mark.parametrize(
        "workload,body",
        [
            ("motifs", {"max_size": 3}),
            ("match", {"query": "triangle"}),
            ("fsm", {"support": 3, "max_edges": 2}),
            ("cliques", {"max_size": 3}),
        ],
    )
    def test_server_payloads_match_direct_miner_runs(
        self, server, workload, body
    ):
        status, raw = call(
            server, "POST", f"/{workload}", {"graph": "tiny", **body}
        )
        assert status == 200
        served = json.loads(raw)["result"]
        direct = run_query(
            Miner(small_graph()), parse_request(workload, body)
        )
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_repeat_is_a_cache_hit_with_no_recompilation(self, server):
        body = {"graph": "tiny", "query": "square"}
        status, raw = call(server, "POST", "/match", body)
        assert status == 200
        first = json.loads(raw)
        assert first["cache"]["hit"] is False

        registry = server.service.registry
        hits_before = registry.cache_info().result_hits
        session_before = registry.get("tiny").cache_info()

        status, raw = call(server, "POST", "/match", body)
        assert status == 200
        second = json.loads(raw)
        assert second["cache"]["hit"] is True
        assert second["result"] == first["result"]
        assert registry.cache_info().result_hits == hits_before + 1
        session_after = registry.get("tiny").cache_info()
        assert session_after.plan_compilations == session_before.plan_compilations
        assert session_after.runs == session_before.runs

    def test_equivalent_spellings_share_one_cache_entry(self, server):
        call(server, "POST", "/match", {"graph": "tiny", "query": "wedge"})
        status, raw = call(
            server, "POST", "/match",
            {"graph": "tiny", "query": {"edges": [[1, 0], [1, 2]]}},
        )
        assert status == 200
        assert json.loads(raw)["cache"]["hit"] is True

    def test_budget_busting_query_422_while_healthy_queries_complete(
        self, server
    ):
        results = {}

        def post(key, body):
            results[key] = call(server, "POST", "/motifs", body, timeout=120)

        threads = [
            threading.Thread(
                target=post,
                args=(
                    "burst",
                    {"graph": "citeseer", "max_size": 4, "max_embeddings": 5},
                ),
            )
        ] + [
            threading.Thread(
                target=post,
                args=(f"ok{i}", {"graph": "tiny", "max_size": 3, "min_size": i}),
            )
            for i in (1, 2, 3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        status, raw = results["burst"]
        assert status == 422
        error = json.loads(raw)["error"]
        assert error["type"] == "budget_exceeded"
        assert error["kind"] == "embeddings" and error["limit"] == 5
        for key in ("ok1", "ok2", "ok3"):
            assert results[key][0] == 200

    def test_deadline_ms_maps_to_422(self, server):
        status, raw = call(
            server, "POST", "/motifs",
            {"graph": "citeseer", "max_size": 4, "deadline_ms": 0.001},
        )
        assert status == 422
        assert json.loads(raw)["error"]["kind"] == "deadline"

    def test_streaming_ndjson_rows(self, server):
        status, raw = call(
            server, "POST", "/match",
            {"graph": "tiny", "query": "wedge", "stream": True},
        )
        assert status == 200
        rows = [json.loads(line) for line in raw.decode().strip().split("\n")]
        meta = rows[0]["meta"]
        assert meta["workload"] == "match" and "cache" in meta
        matches = [row["match"] for row in rows[1:]]
        assert len(matches) == meta["num_matches"] > 0
        # Streamed rows agree with the unary payload for the same query.
        _, unary_raw = call(
            server, "POST", "/match", {"graph": "tiny", "query": "wedge"}
        )
        assert matches == json.loads(unary_raw)["result"]["matches"]


class TestDisconnectCancel:
    def test_preset_cancel_flag_aborts_the_run(self):
        import asyncio

        from repro.core import CancelFlag, RunCancelled

        registry = MinerRegistry()
        registry.load("tiny", small_graph())
        service = QueryService(registry)
        try:
            flag = CancelFlag()
            flag.set()
            with pytest.raises(RunCancelled):
                asyncio.run(
                    service.execute(
                        "motifs", {"graph": "tiny", "max_size": 3}, cancel=flag
                    )
                )
        finally:
            service.close()

    def test_client_disconnect_cancels_the_run(self):
        import socket
        import time

        registry = MinerRegistry()
        registry.load_dataset("citeseer", scale=0.1)
        service = QueryService(registry, max_concurrent=1, max_pending=0)
        handle = start_in_background(service)
        try:
            body = json.dumps(
                {"graph": "citeseer", "max_size": 4, "labeled": False}
            ).encode()
            sock = socket.create_connection(handle.address)
            sock.sendall(
                (
                    "POST /motifs HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            time.sleep(0.3)  # let the run get going
            sock.close()  # the client walks away mid-query
            deadline = time.time() + 120
            while time.time() < deadline:
                if service.stats.cancelled_disconnects >= 1:
                    break
                time.sleep(0.05)
            assert service.stats.cancelled_disconnects >= 1
            # The freed slot serves new clients immediately.
            status, _ = call(
                handle, "POST", "/motifs",
                {"graph": "citeseer", "max_size": 3}, timeout=120,
            )
            assert status == 200
        finally:
            handle.stop()


class TestAdmission:
    def test_overfull_pool_answers_429(self):
        registry = MinerRegistry()
        registry.load_dataset("citeseer", scale=0.1)
        service = QueryService(registry, max_concurrent=1, max_pending=0)
        handle = start_in_background(service)
        try:
            statuses = []
            lock = threading.Lock()

            def post(min_size):
                status, _ = call(
                    handle, "POST", "/motifs",
                    {"graph": "citeseer", "max_size": 4, "min_size": min_size,
                     "labeled": False},
                    timeout=120,
                )
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=post, args=(i,)) for i in (1, 2, 3, 4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert 429 in statuses  # the pool is width 1 with no queue
            assert 200 in statuses  # but admitted queries complete
            assert service.stats.rejected_busy >= 1
        finally:
            handle.stop()

    def test_server_default_budgets_apply_when_request_sets_none(self):
        registry = MinerRegistry()
        registry.load("tiny", small_graph())
        service = QueryService(registry, default_max_embeddings=5)
        handle = start_in_background(service)
        try:
            status, raw = call(
                handle, "POST", "/motifs", {"graph": "tiny", "max_size": 4}
            )
            assert status == 422
            assert json.loads(raw)["error"]["limit"] == 5
            # A request's own (generous) budget overrides the default.
            status, _ = call(
                handle, "POST", "/motifs",
                {"graph": "tiny", "max_size": 4, "max_embeddings": 10**9},
            )
            assert status == 200
        finally:
            handle.stop()
