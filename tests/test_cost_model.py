"""Unit tests for the simulated-cluster cost model (DESIGN.md sub. 1)."""

import pytest

from repro.bsp import CostModel, RunMetrics, SuperstepMetrics


def step_with(**kwargs) -> SuperstepMetrics:
    step = SuperstepMetrics(superstep=0)
    for key, value in kwargs.items():
        setattr(step, key, value)
    return step


ZERO = CostModel(
    seconds_per_work_unit=0.0,
    seconds_per_message=0.0,
    bytes_per_second=1.0,
    seconds_per_broadcast_byte=0.0,
    barrier_seconds=0.0,
)


class TestSuperstepSeconds:
    def test_empty_step_is_barrier_only(self):
        model = CostModel(barrier_seconds=0.5)
        assert model.superstep_seconds(step_with(), 4) == pytest.approx(0.5)

    def test_compute_is_critical_path(self):
        model = CostModel(
            seconds_per_work_unit=1.0, seconds_per_message=0.0,
            bytes_per_second=1e12, seconds_per_broadcast_byte=0.0,
            barrier_seconds=0.0,
        )
        step = step_with(work_units={0: 10.0, 1: 3.0})
        assert model.superstep_seconds(step, 2) == pytest.approx(10.0)

    def test_p2p_scales_with_workers(self):
        model = CostModel(
            seconds_per_work_unit=0.0, seconds_per_message=1.0,
            bytes_per_second=1e12, seconds_per_broadcast_byte=0.0,
            barrier_seconds=0.0,
        )
        step = step_with(messages_sent=100)
        assert model.superstep_seconds(step, 1) == pytest.approx(100.0)
        assert model.superstep_seconds(step, 10) == pytest.approx(10.0)

    def test_p2p_bytes_over_aggregate_bandwidth(self):
        model = CostModel(
            seconds_per_work_unit=0.0, seconds_per_message=0.0,
            bytes_per_second=100.0, seconds_per_broadcast_byte=0.0,
            barrier_seconds=0.0,
        )
        step = step_with(bytes_sent=1000)
        assert model.superstep_seconds(step, 2) == pytest.approx(5.0)

    def test_broadcast_free_on_single_worker(self):
        model = CostModel(
            seconds_per_work_unit=0.0, seconds_per_message=0.0,
            bytes_per_second=1.0, seconds_per_broadcast_byte=1.0,
            barrier_seconds=0.0,
        )
        step = step_with(broadcast_bytes=999)
        assert model.superstep_seconds(step, 1) == pytest.approx(0.0)

    def test_broadcast_deserialize_does_not_shrink_with_workers(self):
        """The section 6.3 effect: per-server deserialization of broadcast
        state is constant, capping pattern-rich scalability."""
        model = CostModel(
            seconds_per_work_unit=0.0, seconds_per_message=0.0,
            bytes_per_second=1e12, seconds_per_broadcast_byte=1e-3,
            barrier_seconds=0.0,
        )
        step = step_with(broadcast_bytes=1000)
        at_2 = model.superstep_seconds(step, 2)
        at_20 = model.superstep_seconds(step, 20)
        assert at_20 > at_2  # fan-out factor grows toward 1
        assert at_20 == pytest.approx(1000 * (19 / 20) * 1e-3)


class TestMakespan:
    def test_sums_supersteps(self):
        model = CostModel(
            seconds_per_work_unit=1.0, seconds_per_message=0.0,
            bytes_per_second=1e12, seconds_per_broadcast_byte=0.0,
            barrier_seconds=1.0,
        )
        run = RunMetrics(num_workers=2)
        first = run.new_superstep()
        first.add_work(0, 5.0)
        second = run.new_superstep()
        second.add_work(1, 3.0)
        assert model.makespan(run) == pytest.approx(5.0 + 3.0 + 2.0)

    def test_empty_run(self):
        assert CostModel().makespan(RunMetrics(num_workers=1)) == 0.0


class TestDefaults:
    def test_defaults_are_commodity_cluster_scale(self):
        model = CostModel()
        assert model.bytes_per_second == pytest.approx(1.25e9)  # 10 GbE
        assert 0 < model.seconds_per_work_unit < 1e-4
        assert 0 < model.barrier_seconds < 1.0

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().barrier_seconds = 7.0
