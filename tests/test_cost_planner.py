"""Statistics-driven cost-based planning (repro.plan.stats + repro.plan.cost).

The acceptance surface of the cost-based planner:

* **catalog determinism** — building a :class:`GraphCatalog` twice from
  the same graph yields equal catalogs that pickle byte-identically, the
  accounting invariants hold (frequencies sum to V, pair counts to 2E),
  and sessions cache one catalog per graph variant
  (``cache_info().catalog_builds/catalog_hits``);
* **order choice** — on the adversarial ``skewed`` dataset the cost
  model anchors the 1-0-1 wedge at the rare label while the pattern-only
  degree heuristic anchors at the frequent crowd label; without a
  catalog ``compile_plan`` keeps the heuristic order exactly;
* **results invariance** — the cost-chosen order changes only candidate
  counts, never results: cost-based guided matching is byte-identical
  (``canonical_signature``) to the exhaustive filter-process oracle
  across serial/thread/process × worker counts × storage modes, and to
  the heuristic-order guided run (property-tested on random labeled
  graphs too);
* **harmonized DAG prefixes** — catalog-aware multi-query DAGs compile
  deterministically and labeled guided motifs over them stay
  byte-identical to the exhaustive motif oracle;
* **explain** — ``Miner.explain`` reports the catalog, the chosen
  order's per-step estimates, and who won (and why).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import GraphMatching
from repro.core import ArabesqueConfig, Pattern, run_computation
from repro.datasets import citeseer_like, skewed_label_graph
from repro.graph import assign_labels, gnm_random_graph
from repro.plan import (
    build_catalog,
    build_plan_dag,
    choose_order,
    compile_plan,
    estimate_order,
)
from repro.plan.cost import connected_orders
from repro.plan.planner import _matching_order
from repro.session import Miner

#: The adversarial query for the skewed dataset: a wedge whose center
#: carries the frequent crowd label (0) and whose leaves carry the rare
#: label (1) — the degree heuristic anchors at the center.
WEDGE_101 = Pattern((1, 0, 1), ((0, 1, 0), (1, 2, 0))).canonical()

BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def skewed():
    return skewed_label_graph()


@pytest.fixture(scope="module")
def citeseer_small():
    return citeseer_like(scale=0.1)


# ---------------------------------------------------------------------------
# Catalog determinism + accounting
# ---------------------------------------------------------------------------
class TestCatalog:
    def test_build_is_deterministic_and_serializes_byte_identically(
        self, skewed
    ):
        first = build_catalog(skewed)
        second = build_catalog(skewed)
        assert first == second
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_pickle_round_trip(self, skewed):
        catalog = build_catalog(skewed)
        clone = pickle.loads(pickle.dumps(catalog))
        assert clone == catalog
        for label in catalog.label_frequency:
            assert clone.frequency(label) == catalog.frequency(label)
            assert clone.anchor_degree(label) == catalog.anchor_degree(label)
        for pair in catalog.pair_counts:
            assert clone.fan_out(*pair) == catalog.fan_out(*pair)
            assert clone.closure_probability(*pair) == (
                catalog.closure_probability(*pair)
            )

    def test_accounting_invariants(self, skewed):
        catalog = build_catalog(skewed)
        assert sum(catalog.label_frequency.values()) == skewed.num_vertices
        # Each undirected edge contributes both orientations.
        assert sum(catalog.pair_counts.values()) == 2 * skewed.num_edges
        assert sum(catalog.degree_histogram.values()) == skewed.num_vertices
        weighted = sum(
            catalog.anchor_degree(label) * count
            for label, count in catalog.label_frequency.items()
        )
        assert weighted == pytest.approx(2 * skewed.num_edges)
        # Quantiles are a nondecreasing min..max slice of the histogram.
        assert list(catalog.degree_quantiles) == sorted(
            catalog.degree_quantiles
        )
        assert catalog.degree_quantiles[0] == min(catalog.degree_histogram)
        assert catalog.degree_quantiles[-1] == max(catalog.degree_histogram)

    def test_absent_labels_cost_nothing(self, skewed):
        catalog = build_catalog(skewed)
        assert catalog.frequency(99) == 0
        assert catalog.fan_out(99, 0) == 0.0
        assert catalog.closure_probability(0, 99) == 0.0
        assert catalog.anchor_degree(99) == 0.0

    def test_session_caches_one_catalog_per_variant(self, skewed):
        miner = Miner(skewed)
        miner.explain(WEDGE_101)
        info = miner.cache_info()
        assert info.catalog_builds == 1
        miner.explain("triangle")
        miner.match(WEDGE_101).run()
        info = miner.cache_info()
        assert info.catalog_builds == 1
        assert info.catalog_hits >= 2
        # The stripped variant gets its own catalog.
        miner.match("wedge").unlabeled().run()
        assert miner.cache_info().catalog_builds == 2


# ---------------------------------------------------------------------------
# Order choice: the skewed regression + heuristic fallback
# ---------------------------------------------------------------------------
class TestOrderChoice:
    def test_skewed_wedge_anchors_at_rare_label(self, skewed):
        catalog = build_catalog(skewed)
        choice = choose_order(WEDGE_101, catalog)
        assert choice.cost_based
        assert choice.order != _matching_order(WEDGE_101)
        # Step 0 lands on a rare-label leaf, not the frequent center.
        anchor_label = WEDGE_101.vertex_labels[choice.order[0]]
        rare = min(
            catalog.label_frequency, key=catalog.label_frequency.__getitem__
        )
        assert anchor_label == rare
        assert (
            choice.chosen.total_candidates
            < choice.heuristic.total_candidates
        )
        assert "cost model predicts" in choice.reason

    def test_skewed_wedge_cost_order_generates_fewer_candidates(
        self, skewed
    ):
        catalog = build_catalog(skewed)
        choice = choose_order(WEDGE_101, catalog)
        miner = Miner(skewed)
        cost_plan = compile_plan(WEDGE_101, catalog=catalog)
        heuristic_plan = compile_plan(WEDGE_101)
        assert cost_plan.order == choice.order
        assert heuristic_plan.order == _matching_order(WEDGE_101)
        cost = miner.match(WEDGE_101).plan(cost_plan).run()
        heuristic = miner.match(WEDGE_101).plan(heuristic_plan).run()
        assert cost.num_matches == heuristic.num_matches
        # Orders change only the emission sequence, never the match set.
        assert (
            cost.raw.canonical_signature(ignore_output_order=True)
            == heuristic.raw.canonical_signature(ignore_output_order=True)
        )
        assert (
            cost.raw.total_candidates < heuristic.raw.total_candidates
        )

    def test_no_catalog_keeps_heuristic_order_exactly(self):
        for name in ("wedge", "triangle", "square", "star3"):
            from repro.plan import NAMED_SHAPES

            pattern = NAMED_SHAPES[name].canonical()
            assert compile_plan(pattern).order == _matching_order(pattern)

    def test_estimates_cover_every_step_of_every_connected_order(self):
        catalog = build_catalog(skewed_label_graph())
        orders = connected_orders(WEDGE_101)
        assert all(len(order) == WEDGE_101.num_vertices for order in orders)
        assert len(set(orders)) == len(orders)
        for order in orders:
            estimate = estimate_order(WEDGE_101, order, catalog)
            assert len(estimate.steps) == WEDGE_101.num_vertices
            assert estimate.total_candidates > 0
            assert tuple(step.pattern_vertex for step in estimate.steps) == (
                tuple(order)
            )

    def test_choice_always_considers_the_heuristic(self, citeseer_small):
        catalog = build_catalog(citeseer_small)
        for name in ("wedge", "triangle", "square"):
            from repro.plan import NAMED_SHAPES

            pattern = NAMED_SHAPES[name].canonical()
            choice = choose_order(pattern, catalog)
            assert choice.considered >= 1
            assert choice.heuristic.order == _matching_order(pattern)
            assert "order=" in choice.describe()
            assert "reason:" in choice.describe()


# ---------------------------------------------------------------------------
# Results invariance: cost-based guided == exhaustive oracle, everywhere
# ---------------------------------------------------------------------------
class TestOracleEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_skewed_guided_matches_exhaustive_signature(
        self, skewed, backend, workers
    ):
        miner = Miner(skewed)
        guided = (
            miner.match(WEDGE_101)
            .backend(backend)
            .workers(workers)
            .run()
        )
        oracle = run_computation(
            skewed,
            GraphMatching(WEDGE_101, induced=True),
            ArabesqueConfig(backend=backend, num_workers=workers),
        )
        assert (
            guided.raw.canonical_signature(ignore_output_order=True)
            == oracle.canonical_signature(ignore_output_order=True)
        )

    @pytest.mark.parametrize("storage", ["list", "odag", "adaptive"])
    def test_skewed_guided_storage_invariant(self, skewed, storage):
        miner = Miner(skewed)
        baseline = miner.match(WEDGE_101).run()
        stored = miner.match(WEDGE_101).storage(storage).run()
        assert (
            stored.raw.canonical_signature()
            == baseline.raw.canonical_signature()
        )

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shape=st.sampled_from(["wedge", "triangle", "square", "star3"]),
    )
    def test_random_labeled_graphs_guided_equals_exhaustive(
        self, seed, shape
    ):
        from repro.plan import NAMED_SHAPES

        graph = assign_labels(
            gnm_random_graph(14, 28, seed=seed), 3, seed=seed + 1, skew=0.7
        )
        pattern = NAMED_SHAPES[shape].canonical()
        miner = Miner(graph)
        guided = miner.match(pattern).run()
        exhaustive = miner.match(pattern).exhaustive().run()
        assert guided.signature(True) == exhaustive.signature(True)


# ---------------------------------------------------------------------------
# Harmonized catalog-aware DAGs
# ---------------------------------------------------------------------------
class TestHarmonizedDag:
    def test_harmonized_build_is_deterministic(self, citeseer_small):
        from repro.apps import enumerate_motif_patterns

        catalog = build_catalog(citeseer_small)
        batch = tuple(enumerate_motif_patterns(citeseer_small, 3))
        first = build_plan_dag(batch, catalog=catalog)
        second = build_plan_dag(batch, catalog=catalog)
        assert [p.order for p in first.plans] == [
            p.order for p in second.plans
        ]
        assert len(first.nodes) == len(second.nodes)

    def test_labeled_guided_motifs_match_exhaustive(self, citeseer_small):
        miner = Miner(citeseer_small)
        guided = miner.motifs(4).run()
        exhaustive = miner.motifs(4).exhaustive().run()
        assert guided.counts() == exhaustive.counts()
        assert guided.signature(True) == exhaustive.signature(True)

    def test_unlabeled_batches_ignore_the_catalog(self, citeseer_small):
        """Single-label catalogs must not perturb the DAG: stripped-graph
        batches compile to the same orders with and without a catalog."""
        from repro.apps import enumerate_motif_patterns
        from repro.graph.generators import strip_labels

        stripped = strip_labels(citeseer_small)
        catalog = build_catalog(stripped)
        batch = tuple(enumerate_motif_patterns(stripped, 4))
        with_catalog = build_plan_dag(batch, catalog=catalog)
        without = build_plan_dag(batch)
        assert [p.order for p in with_catalog.plans] == [
            p.order for p in without.plans
        ]
        assert len(with_catalog.nodes) == len(without.nodes)


# ---------------------------------------------------------------------------
# Explain
# ---------------------------------------------------------------------------
class TestExplain:
    def test_explain_reports_catalog_order_and_reason(self, skewed):
        miner = Miner(skewed)
        report = miner.explain(WEDGE_101)
        assert "graph: V=" in report
        assert "order=" in report
        assert "winner=cost-based" in report
        assert "reason:" in report
        assert "step 0" in report

    def test_explain_heuristic_win_is_reported_too(self, citeseer_small):
        miner = Miner(citeseer_small)
        report = miner.explain("wedge")
        assert "winner=" in report
        assert "considered=" in report

    def test_explain_resolves_named_shapes_and_patterns(self, skewed):
        miner = Miner(skewed)
        assert miner.explain("triangle")
        assert miner.explain(WEDGE_101)
