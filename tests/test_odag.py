"""Tests for the ODAG data structure: faithfulness, overapproximation,
compression, merging, and rank-range extraction."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Odag
from repro.core.odag import Odag as OdagDirect


def build_odag(size, embeddings):
    odag = Odag(size)
    for words in embeddings:
        odag.add(words)
    return odag


PAPER_EMBEDDINGS = [
    (1, 4, 2),
    (1, 4, 3),
    (1, 4, 5),
    (2, 3, 4),
    (2, 4, 5),
    (3, 4, 5),
]
"""The canonical embeddings of the paper's Figure 5."""


class TestConstruction:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Odag(0)

    def test_add_validates_length(self):
        odag = Odag(3)
        with pytest.raises(ValueError):
            odag.add((1, 2))

    def test_counts(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        assert odag.num_added == 6
        assert odag.level_sizes() == (3, 2, 4)  # {1,2,3}, {3,4}, {2,3,4,5}

    def test_empty(self):
        assert Odag(2).is_empty()
        assert not build_odag(1, [(5,)]).is_empty()


class TestExtraction:
    def test_roundtrip_includes_all_added(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        extracted = set(odag.extract())
        assert set(PAPER_EMBEDDINGS) <= extracted

    def test_paper_spurious_path(self):
        """Figure 6: the ODAG also encodes <3, 4, 2>, which was never added."""
        odag = build_odag(3, PAPER_EMBEDDINGS)
        extracted = set(odag.extract())
        assert (3, 4, 2) in extracted
        assert extracted > set(PAPER_EMBEDDINGS)

    def test_prefix_filter_recovers_exact_set(self):
        original = set(PAPER_EMBEDDINGS)
        odag = build_odag(3, PAPER_EMBEDDINGS)

        def prefix_ok(words):
            # Membership oracle standing in for canonicality + φ.
            return any(candidate[: len(words)] == words for candidate in original)

        assert set(odag.extract(prefix_ok)) == original

    def test_prefix_filter_sees_every_prefix(self):
        odag = build_odag(3, [(0, 1, 2)])
        seen = []

        def record(words):
            seen.append(words)
            return True

        list(odag.extract(record))
        assert seen == [(0,), (0, 1), (0, 1, 2)]

    def test_extraction_rank_order_is_sorted(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        extracted = list(odag.extract())
        assert extracted == sorted(extracted)

    def test_single_level_odag(self):
        odag = build_odag(1, [(3,), (1,), (2,)])
        assert list(odag.extract()) == [(1,), (2,), (3,)]
        assert odag.total_paths() == 3


class TestPathCounting:
    def test_total_paths_overapproximates(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        assert odag.total_paths() >= len(PAPER_EMBEDDINGS)
        # total_paths counts every path (even word-repeating ones, which
        # extraction drops), so it upper-bounds the extractable set.
        assert odag.total_paths() >= len(list(odag.extract()))

    def test_word_repeating_paths_are_skipped(self):
        # Figure 5's ODAG encodes the path <3, 4, 3>: same word twice.
        odag = build_odag(3, PAPER_EMBEDDINGS)
        for words in odag.extract():
            assert len(set(words)) == len(words)

    def test_path_count_per_element(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        # From vertex 4 at level 1 every level-2 successor is reachable.
        assert odag.path_count(1, 4) == len({2, 3, 5})
        assert odag.path_count(2, 5) == 1


class TestRangeExtraction:
    def test_ranges_partition_everything(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        total = odag.total_paths()
        for workers in (1, 2, 3, 4, 7):
            pieces = []
            for w in range(workers):
                start = total * w // workers
                end = total * (w + 1) // workers
                pieces.extend(odag.extract_range(start, end))
            assert pieces == list(odag.extract())

    def test_empty_range(self):
        odag = build_odag(3, PAPER_EMBEDDINGS)
        assert list(odag.extract_range(2, 2)) == []

    def test_range_respects_filter(self):
        original = set(PAPER_EMBEDDINGS)
        odag = build_odag(3, PAPER_EMBEDDINGS)

        def prefix_ok(words):
            return any(c[: len(words)] == words for c in original)

        total = odag.total_paths()
        collected = set()
        for w in range(3):
            collected.update(
                odag.extract_range(total * w // 3, total * (w + 1) // 3, prefix_ok)
            )
        assert collected == original


class TestMerge:
    def test_merge_unions_embeddings(self):
        left = build_odag(3, PAPER_EMBEDDINGS[:3])
        right = build_odag(3, PAPER_EMBEDDINGS[3:])
        left.merge(right)
        assert set(PAPER_EMBEDDINGS) <= set(left.extract())
        assert left.num_added == 6

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            Odag(2).merge(Odag(3))

    def test_entries_roundtrip(self):
        source = build_odag(3, PAPER_EMBEDDINGS)
        rebuilt = Odag(3)
        for level, word, successors in source.entries():
            rebuilt.merge_entry(level, word, successors)
        assert list(rebuilt.extract()) == list(source.extract())

    def test_paper_merge_example(self):
        """Section 5.2: one worker explored <2,3>, another <2,4> — merging
        must union the entries for element 2 of the first array."""
        a = build_odag(2, [(2, 3)])
        b = build_odag(2, [(2, 4)])
        a.merge(b)
        assert set(a.extract()) == {(2, 3), (2, 4)}


class TestCompression:
    def test_wire_size_beats_lists_on_dense_sets(self):
        """Store all k-subsets of a clique: N^k embeddings vs O(k N^2) ODAG."""
        n, k = 12, 3
        embeddings = [
            words for words in itertools.combinations(range(n), k)
        ]
        odag = build_odag(k, embeddings)
        list_bytes = sum(4 + 4 * k for _ in embeddings)
        assert odag.wire_size() < list_bytes

    def test_wire_size_grows_with_content(self):
        small = build_odag(2, [(0, 1)])
        large = build_odag(2, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert large.wire_size() > small.wire_size()


@given(seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_property_roundtrip_with_membership_filter(seed):
    """extract(membership filter) == stored set, for random word sets."""
    rng = random.Random(seed)
    size = rng.randint(1, 4)
    population = range(10)
    embeddings = set()
    for _ in range(rng.randint(1, 20)):
        words = tuple(rng.sample(population, size))
        embeddings.add(words)
    odag = build_odag(size, sorted(embeddings))

    def member_prefix(words):
        return any(c[: len(words)] == words for c in embeddings)

    assert set(odag.extract(member_prefix)) == embeddings


@given(seed=st.integers(0, 10_000), workers=st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_property_range_partition_is_exact(seed, workers):
    """Worker rank ranges partition the path space with no dup or loss."""
    rng = random.Random(seed)
    size = rng.randint(1, 4)
    embeddings = {
        tuple(rng.sample(range(8), size)) for _ in range(rng.randint(1, 15))
    }
    odag = build_odag(size, sorted(embeddings))
    total = odag.total_paths()
    pieces = []
    for w in range(workers):
        pieces.extend(
            odag.extract_range(total * w // workers, total * (w + 1) // workers)
        )
    everything = list(odag.extract())
    assert pieces == everything
    assert len(set(pieces)) == len(pieces)
