"""Tests for the random graph generators (determinism, shape, labels)."""

import pytest

from repro.graph import (
    GraphError,
    assign_labels,
    gnm_random_graph,
    powerlaw_graph,
    random_regularish_graph,
)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_graph(50, 120, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 120

    def test_deterministic(self):
        g1 = gnm_random_graph(40, 80, seed=7)
        g2 = gnm_random_graph(40, 80, seed=7)
        assert g1 == g2

    def test_seed_changes_graph(self):
        g1 = gnm_random_graph(40, 80, seed=7)
        g2 = gnm_random_graph(40, 80, seed=8)
        assert g1 != g2

    def test_dense_request_uses_sampling(self):
        # > half of max edges triggers the sample path.
        g = gnm_random_graph(10, 40, seed=3)
        assert g.num_edges == 40

    def test_rejects_impossible(self):
        with pytest.raises(GraphError):
            gnm_random_graph(4, 7, seed=0)

    def test_simple_graph(self):
        g = gnm_random_graph(30, 60, seed=5)
        seen = set()
        for eid in g.edges():
            u, v = g.edge_endpoints(eid)
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))


class TestPowerlaw:
    def test_size(self):
        g = powerlaw_graph(200, 3, seed=2)
        assert g.num_vertices == 200
        # seed clique of 4 vertices contributes 6 edges; rest add 3 each.
        assert g.num_edges == 6 + (200 - 4) * 3

    def test_deterministic(self):
        assert powerlaw_graph(100, 2, seed=9) == powerlaw_graph(100, 2, seed=9)

    def test_heavy_tail(self):
        g = powerlaw_graph(500, 2, seed=4)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # Scale-free: the hub should dominate the median degree.
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_rejects_bad_m(self):
        with pytest.raises(GraphError):
            powerlaw_graph(10, 0, seed=0)
        with pytest.raises(GraphError):
            powerlaw_graph(2, 3, seed=0)


class TestRegularish:
    def test_degrees_close_to_target(self):
        g = random_regularish_graph(100, 10, seed=6)
        avg = g.average_degree()
        assert 8.0 <= avg <= 10.0

    def test_rejects_degree_too_high(self):
        with pytest.raises(GraphError):
            random_regularish_graph(5, 5, seed=0)

    def test_deterministic(self):
        g1 = random_regularish_graph(60, 6, seed=3)
        g2 = random_regularish_graph(60, 6, seed=3)
        assert g1 == g2


class TestAssignLabels:
    def test_label_range(self):
        g = assign_labels(gnm_random_graph(100, 200, seed=1), 7, seed=2)
        assert set(g.vertex_labels) <= set(range(7))

    def test_deterministic(self):
        base = gnm_random_graph(100, 200, seed=1)
        assert assign_labels(base, 5, seed=3) == assign_labels(base, 5, seed=3)

    def test_skew_concentrates_mass(self):
        base = gnm_random_graph(2000, 4000, seed=1)
        uniform = assign_labels(base, 10, seed=5, skew=0.0)
        skewed = assign_labels(base, 10, seed=5, skew=1.0)
        top_uniform = max(uniform.vertex_label_histogram().values())
        top_skewed = max(skewed.vertex_label_histogram().values())
        assert top_skewed > 1.5 * top_uniform

    def test_rejects_zero_labels(self):
        with pytest.raises(GraphError):
            assign_labels(gnm_random_graph(10, 5, seed=0), 0)

    def test_topology_preserved(self):
        base = gnm_random_graph(50, 100, seed=1)
        labeled = assign_labels(base, 4, seed=2)
        assert labeled.num_edges == base.num_edges
        for v in base.vertices():
            assert labeled.neighbors(v) == base.neighbors(v)
