"""Plan-guided FSM: equivalence, determinism, caching, and the helpers.

The acceptance surface of the guided strategy:

* **equivalence** — guided FSM returns identical frequent patterns and
  supports to the exhaustive edge-exploration oracle and (pattern-set)
  to the GraMi baseline, on labeled random graphs and bundled datasets;
* **byte-identity** — the combined guided record's canonical signature
  is identical across serial/thread/process backends and worker counts;
* **session integration** — `.fsm()` runs guided by default, reuses the
  plan cache across candidate generations *and* across repeated runs
  (recompilation count stays flat), and validates options loudly;
* **domain plumbing** — `StepStats.domain_hits` meters one hit per
  (match, position); parent-domain push-down and Apriori pruning never
  change results;
* **helpers** — `plan/fsm_guide.py`'s candidate generation agrees with
  the GraMi baseline's independent implementation, and the domain math
  matches brute-force MNI.
"""

import pytest

from repro.apps import (
    Domain,
    FrequentSubgraphMining,
    GuidedPatternDomains,
    frequent_patterns,
    run_guided_fsm,
)
from repro.baselines.grami import (
    exact_mni_support,
    extend_pattern,
    run_grami,
    single_edge_patterns,
)
from repro.core import ArabesqueConfig, Pattern, run_computation
from repro.datasets import citeseer_like
from repro.graph import assign_labels, from_bitset, gnm_random_graph
from repro.plan import (
    compile_candidate_plan,
    compile_plan,
    domain_sets_from_matches,
    label_triples,
    mni_support_from_domains,
    one_edge_extensions,
    single_edge_candidates,
)
from repro.plan.fsm_guide import (
    connected_subpatterns_one_edge_removed,
    has_infrequent_subpattern,
    one_edge_extensions_with_maps,
    single_edge_domains,
)
from repro.plan.planner import PlanError, restrict_plan
from repro.session import Miner, SessionError

BACKENDS = ("serial", "thread", "process")


def labeled_graph(seed: int, n: int = 24, m: int = 60, labels: int = 3):
    return assign_labels(gnm_random_graph(n, m, seed=seed), labels, seed=seed)


def exhaustive_table(graph, threshold, max_edges):
    run = run_computation(
        graph,
        FrequentSubgraphMining(threshold, max_edges=max_edges),
        ArabesqueConfig(collect_outputs=False),
    )
    return frequent_patterns(run, threshold)


# ---------------------------------------------------------------------------
# Equivalence: guided == exhaustive == GraMi
# ---------------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    @pytest.mark.parametrize("threshold", [2, 4])
    def test_guided_equals_exhaustive(self, seed, threshold):
        g = labeled_graph(seed)
        guided = run_guided_fsm(g, threshold, max_edges=3)
        assert guided.frequent == exhaustive_table(g, threshold, 3)

    @pytest.mark.parametrize("seed", [2, 7])
    def test_guided_equals_grami_patterns(self, seed):
        # GraMi's lazy search caps reported supports at the threshold,
        # so the comparison surface is the frequent-pattern set.
        g = labeled_graph(seed)
        guided = run_guided_fsm(g, 3, max_edges=3)
        grami = run_grami(g, 3, max_edges=3)
        assert set(guided.frequent) == set(grami.frequent)

    def test_guided_supports_are_exact_mni(self):
        g = labeled_graph(3)
        guided = run_guided_fsm(g, 3, max_edges=2)
        for pattern, support in guided.frequent.items():
            assert support == exact_mni_support(g, pattern)

    def test_citeseer_like_dataset(self):
        g = citeseer_like(scale=0.05)
        guided = run_guided_fsm(g, 6, max_edges=3)
        assert guided.frequent == exhaustive_table(g, 6, 3)
        assert guided.frequent  # non-degenerate workload

    def test_unbounded_depth_terminates_and_agrees(self):
        g = labeled_graph(4, n=16, m=30)
        threshold = 5
        guided = run_guided_fsm(g, threshold)  # no max_edges cap
        run = run_computation(
            g,
            FrequentSubgraphMining(threshold),
            ArabesqueConfig(collect_outputs=False),
        )
        assert guided.frequent == frequent_patterns(run, threshold)

    def test_edge_labels_respected(self):
        # Two triangles that differ only in one edge label must mine as
        # distinct patterns with separate supports.
        g_labels = (0, 0, 0, 0, 0, 0)
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        edge_labels = [1, 1, 1, 1, 1, 2]
        from repro.graph import LabeledGraph

        g = LabeledGraph(g_labels, edges, edge_labels)
        guided = run_guided_fsm(g, 1, max_edges=3)
        assert guided.frequent == exhaustive_table(g, 1, 3)

    def test_threshold_validation(self):
        g = labeled_graph(1)
        with pytest.raises(ValueError, match="support_threshold"):
            run_guided_fsm(g, 0)
        with pytest.raises(ValueError, match="max_edges"):
            run_guided_fsm(g, 2, max_edges=0)


# ---------------------------------------------------------------------------
# Determinism across backends and worker counts
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_byte_identical_across_backends(self):
        g = labeled_graph(6)
        reference = None
        for backend in BACKENDS:
            result = (
                Miner(g).fsm(3, max_edges=3).backend(backend).workers(3).run()
            )
            signature = result.signature()
            if reference is None:
                reference = (signature, result.patterns())
            assert signature == reference[0], backend
            assert result.patterns() == reference[1], backend

    def test_byte_identical_across_worker_counts(self):
        g = labeled_graph(8)
        signatures = {
            workers: Miner(g).fsm(3, max_edges=2).workers(workers).run().signature()
            for workers in (1, 2, 5)
        }
        assert len(set(signatures.values())) == 1

    def test_byte_identical_across_storage_modes(self):
        g = labeled_graph(10)
        signatures = {
            mode: Miner(g).fsm(3, max_edges=2).storage(mode).run().signature()
            for mode in ("odag", "list", "adaptive")
        }
        assert len(set(signatures.values())) == 1


# ---------------------------------------------------------------------------
# Session integration
# ---------------------------------------------------------------------------
class TestSessionIntegration:
    def test_guided_is_the_default(self):
        g = labeled_graph(5)
        result = Miner(g).fsm(3, max_edges=2).run()
        assert result.guided
        assert result.guided_details is not None
        assert result.guided_details.levels[0].level == 1

    def test_dag_cache_flat_on_repeated_run(self):
        g = labeled_graph(5)
        miner = Miner(g)
        miner.fsm(3, max_edges=3).run()
        first = miner.cache_info()
        assert first.dag_compilations > 0
        # Candidates never compile solo plans — each level is one DAG.
        assert first.plan_compilations == 0
        miner.fsm(3, max_edges=3).run()
        second = miner.cache_info()
        # Every level batch of the repeat run is served from the
        # session's DAG cache: zero recompilations, only hits (the
        # per-run domain whitelists are overlaid on the cached DAGs).
        assert second.dag_compilations == first.dag_compilations
        assert second.dag_hits > first.dag_hits
        assert second.runs > first.runs

    def test_one_engine_run_per_level(self):
        g = labeled_graph(5)
        result = Miner(g).fsm(3, max_edges=3).run()
        details = result.guided_details
        # Level 1 is a closed-form edge scan; every deeper level with at
        # least one non-pruned candidate costs exactly one batched run,
        # no matter how many candidates it evaluates.
        levels_with_runs = sum(
            1
            for level in details.levels[1:]
            if level.candidates > level.pruned
        )
        assert details.engine_runs == levels_with_runs
        assert any(level.candidates - level.pruned > 1 for level in details.levels)

    def test_collect_limit_count_require_exhaustive(self):
        miner = Miner(labeled_graph(5))
        with pytest.raises(SessionError, match="exhaustive"):
            miner.fsm(3).collect(True)
        with pytest.raises(SessionError, match="exhaustive"):
            miner.fsm(3).limit(10)
        with pytest.raises(SessionError, match="exhaustive"):
            miner.fsm(3, max_edges=2).count()
        with pytest.raises(SessionError, match="exhaustive"):
            miner.fsm(3).collect(False).guided().collect(True)
        # The config() spelling of an output cap is rejected just as
        # loudly as .limit(); exhaustive still honors it.
        capped = ArabesqueConfig(output_limit=5)
        with pytest.raises(SessionError, match="exhaustive"):
            miner.fsm(3, max_edges=2).config(capped).run()
        ok = miner.fsm(3, max_edges=2).exhaustive().config(capped).run()
        assert len(ok.raw.outputs) <= 5

    def test_exhaustive_path_still_collects_and_counts(self):
        g = labeled_graph(5)
        query = Miner(g).fsm(3, max_edges=2).exhaustive()
        count = query.count()
        run = run_computation(
            g,
            FrequentSubgraphMining(3, max_edges=2),
            ArabesqueConfig(collect_outputs=False),
        )
        assert count == run.num_outputs

    def test_stream_works_guided(self):
        g = labeled_graph(5)
        items = list(Miner(g).fsm(3, max_edges=2).stream())
        assert items == sorted(
            Miner(g).fsm(3, max_edges=2).run().patterns().items(),
            key=lambda kv: (kv[0].num_edges, -kv[1], repr(kv[0])),
        )

    def test_post_filtering_works_guided(self):
        g = labeled_graph(5)
        result = Miner(g).fsm(2, max_edges=2).run()
        stricter = result.patterns(support_threshold=6)
        assert set(stricter) <= set(result.patterns())
        assert all(s >= 6 for s in stricter.values())
        with pytest.raises(ValueError, match="re-mine"):
            result.patterns(support_threshold=1)


# ---------------------------------------------------------------------------
# Domain plumbing (runtime metering + push-down soundness)
# ---------------------------------------------------------------------------
class TestDomainPlumbing:
    def test_domain_hits_meter_matches_times_arity(self):
        g = labeled_graph(7)
        pattern = single_edge_candidates(g)[0]
        plan = compile_candidate_plan(pattern)
        run = run_computation(
            g,
            GuidedPatternDomains(plan),
            ArabesqueConfig(plan=plan, collect_outputs=False, storage="list"),
        )
        matches = sum(step.processed_embeddings for step in run.steps[1:])
        assert run.total_domain_hits == matches * pattern.num_vertices
        assert run.total_domain_hits > 0

    def test_domain_hits_zero_for_other_workloads(self):
        g = labeled_graph(7)
        result = Miner(g).motifs(3).unlabeled().collect(False).run()
        assert result.raw.total_domain_hits == 0

    def test_restricted_plan_loses_no_matches(self):
        g = labeled_graph(9)
        guided = run_guided_fsm(g, 2, max_edges=3)
        # Every evaluated pattern's accumulated domain equals brute-force
        # MNI domains even though deeper levels ran with parent-domain
        # whitelists pushed into their plans.
        for pattern, support in guided.frequent.items():
            assert support == exact_mni_support(g, pattern)

    def test_restrict_plan_overlays_whitelists(self):
        pattern = Pattern((0, 1), ((0, 1, 0),)).canonical()
        plan = compile_candidate_plan(pattern)
        restricted = restrict_plan(plan, {0: frozenset({1, 2})})
        assert restricted.pattern == plan.pattern
        assert restricted.order == plan.order
        by_vertex = {
            step.pattern_vertex: step.allowed for step in restricted.steps
        }
        assert from_bitset(by_vertex[0]) == (1, 2)
        assert by_vertex[1] is None
        # The base plan is untouched (cache safety).
        assert all(step.allowed is None for step in plan.steps)

    def test_candidate_plan_requires_canonical_pattern(self):
        non_canonical = Pattern((1, 0), ((0, 1, 0),))
        if non_canonical.is_canonical():  # pragma: no cover - layout guard
            pytest.skip("canonical form happens to match")
        with pytest.raises(PlanError, match="canonical"):
            compile_candidate_plan(non_canonical)

    def test_guided_pattern_domains_rejects_induced_plans(self):
        pattern = Pattern((0, 1), ((0, 1, 0),)).canonical()
        with pytest.raises(ValueError, match="monomorphic"):
            GuidedPatternDomains(compile_plan(pattern, induced=True))


# ---------------------------------------------------------------------------
# fsm_guide helpers vs the independent GraMi implementation
# ---------------------------------------------------------------------------
class TestFsmGuideHelpers:
    def test_single_edge_candidates_agree_with_grami(self):
        g = labeled_graph(11)
        assert single_edge_candidates(g) == single_edge_patterns(g)

    def test_one_edge_extensions_agree_with_grami(self):
        g = labeled_graph(11)
        triples = label_triples(g)
        for pattern in single_edge_candidates(g):
            assert one_edge_extensions(pattern, triples) == extend_pattern(
                pattern, triples
            )

    def test_extension_maps_embed_parent(self):
        g = labeled_graph(12)
        triples = label_triples(g)
        parent = single_edge_candidates(g)[0]
        for child, parent_map in one_edge_extensions_with_maps(parent, triples):
            child_edges = {(i, j): le for i, j, le in child.edges}
            for i, j, le in parent.edges:
                a, b = sorted((parent_map[i], parent_map[j]))
                assert child_edges[(a, b)] == le
            for vertex, position in enumerate(parent_map):
                assert (
                    parent.vertex_labels[vertex] == child.vertex_labels[position]
                )

    def test_single_edge_domains_match_brute_force(self):
        g = labeled_graph(13)
        for pattern, sets in single_edge_domains(g):
            support = Domain(sets).support(pattern.orbits())
            assert support == exact_mni_support(g, pattern)

    def test_connected_subpatterns_one_edge_removed(self):
        triangle = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0))).canonical()
        subs = connected_subpatterns_one_edge_removed(triangle)
        wedge = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0))).canonical()
        assert subs == [wedge]
        # A wedge minus either edge leaves a single edge (isolated vertex
        # dropped) — still connected, so Apriori sees it.
        assert connected_subpatterns_one_edge_removed(wedge) == [
            Pattern((0, 0), ((0, 1, 0),)).canonical()
        ]

    def test_has_infrequent_subpattern(self):
        triangle = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0))).canonical()
        wedge = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0))).canonical()
        assert not has_infrequent_subpattern(triangle, {wedge})
        assert has_infrequent_subpattern(triangle, set())

    def test_domain_math_against_vf2(self):
        g = labeled_graph(14)
        from repro.isomorphism import SubgraphMatcher

        for pattern in single_edge_candidates(g)[:3]:
            plan = compile_candidate_plan(pattern)
            run = run_computation(
                g,
                _MatchCollector(plan),
                ArabesqueConfig(plan=plan, storage="list"),
            )
            sets = domain_sets_from_matches(plan, run.outputs)
            support = mni_support_from_domains(sets, pattern.orbits())
            assert support == exact_mni_support(g, pattern)
            matcher = SubgraphMatcher(
                pattern.vertex_labels, pattern.edge_dict(), g
            )
            total = sum(1 for _ in matcher.match_iter())
            assert len(run.outputs) * plan.num_automorphisms == total


class _MatchCollector(GuidedPatternDomains):
    """Test-only: also emit each full guided word sequence."""

    def process(self, embedding):
        super().process(embedding)
        if embedding.size == self.plan.num_steps:
            self.output(embedding.words)
