"""Engine tests: completeness, worker invariance, storage-mode invariance,
termination, metering, and configuration knobs.

Completeness (the paper's Theorem 4) is checked against brute-force
enumeration of connected subgraphs — independent of all engine machinery.
"""

import itertools

import pytest

from repro.apps import CliqueFinding, MotifCounting, motif_counts
from repro.core import (
    ArabesqueConfig,
    ArabesqueEngine,
    Computation,
    EDGE_EXPLORATION,
    ExplorationError,
    LIST_STORAGE,
    VERTEX_EXPLORATION,
    run_computation,
)
from repro.graph import (
    assign_labels,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    graph_from_edges,
    path_graph,
    star_graph,
)


def brute_force_connected_vertex_sets(graph, max_size):
    """All connected vertex sets of size 1..max_size, as frozensets."""
    found = set()
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(graph.vertices(), size):
            if graph.is_connected_vertex_set(combo):
                found.add(frozenset(combo))
    return found


class CollectEverything(Computation):
    """Outputs every explored embedding's vertex set up to a max size."""

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, max_size):
        super().__init__()
        self.max_size = max_size

    def filter(self, embedding):
        return embedding.num_vertices <= self.max_size

    def process(self, embedding):
        self.output(embedding.vertex_set())

    def termination_filter(self, embedding):
        return embedding.num_vertices >= self.max_size


class CollectEdgeSets(Computation):
    """Edge-based twin of CollectEverything."""

    exploration_mode = EDGE_EXPLORATION

    def __init__(self, max_edges):
        super().__init__()
        self.max_edges = max_edges

    def filter(self, embedding):
        return embedding.num_edges <= self.max_edges

    def process(self, embedding):
        self.output(frozenset(embedding.words))

    def termination_filter(self, embedding):
        return embedding.num_edges >= self.max_edges


class TestCompleteness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_vertex_exploration_matches_bruteforce(self, seed):
        g = gnm_random_graph(14, 28, seed=seed)
        result = run_computation(g, CollectEverything(max_size=3))
        explored = set(result.outputs)
        expected = brute_force_connected_vertex_sets(g, 3)
        assert explored == expected

    def test_each_subgraph_explored_exactly_once(self):
        g = gnm_random_graph(12, 30, seed=9)
        result = run_computation(g, CollectEverything(max_size=3))
        assert len(result.outputs) == len(set(result.outputs))

    def test_no_embedding_repeats_words(self):
        """Regression test: spurious ODAG paths that revisit a word (e.g.
        <3,4,3>) must never surface as embeddings — the grid graph makes
        such paths plentiful."""

        class CollectWords(Computation):
            exploration_mode = VERTEX_EXPLORATION

            def filter(self, embedding):
                return embedding.num_vertices <= 4

            def process(self, embedding):
                self.output(embedding.words)

        from repro.graph import grid_graph

        result = run_computation(grid_graph(3, 3), CollectWords())
        for words in result.outputs:
            assert len(set(words)) == len(words)
        size4 = [w for w in result.outputs if len(w) == 4]
        assert len(size4) == 36  # 8 claws + 24 paths + 4 squares

    def test_edge_exploration_matches_bruteforce(self):
        g = gnm_random_graph(10, 18, seed=4)
        result = run_computation(g, CollectEdgeSets(max_edges=3))
        explored = set(result.outputs)

        def connected(edge_ids):
            roots = {}

            def find(x):
                while roots.setdefault(x, x) != x:
                    roots[x] = roots[roots[x]]
                    x = roots[x]
                return x

            for eid in edge_ids:
                u, v = g.edge_endpoints(eid)
                ru, rv = find(u), find(v)
                if ru != rv:
                    roots[ru] = rv
            involved = {find(x) for x in roots}
            return len(involved) == 1

        expected = set()
        for size in range(1, 4):
            for combo in itertools.combinations(range(g.num_edges), size):
                if connected(combo):
                    expected.add(frozenset(combo))
        assert explored == expected

    def test_complete_graph_counts(self):
        # K5: connected vertex sets of size k = C(5,k).
        result = run_computation(complete_graph(5), CollectEverything(max_size=4))
        by_size = {}
        for s in result.outputs:
            by_size[len(s)] = by_size.get(len(s), 0) + 1
        assert by_size == {1: 5, 2: 10, 3: 10, 4: 5}


class TestWorkerInvariance:
    """Changing num_workers must never change what is explored."""

    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_outputs_invariant(self, workers):
        g = gnm_random_graph(13, 26, seed=6)
        reference = run_computation(g, CollectEverything(max_size=3))
        config = ArabesqueConfig(num_workers=workers)
        result = run_computation(g, CollectEverything(max_size=3), config)
        assert set(result.outputs) == set(reference.outputs)
        assert result.num_outputs == reference.num_outputs

    @pytest.mark.parametrize("workers", [1, 4])
    def test_motif_counts_invariant(self, workers):
        g = gnm_random_graph(15, 40, seed=2)
        reference = motif_counts(run_computation(g, MotifCounting(max_size=3)))
        config = ArabesqueConfig(num_workers=workers)
        result = motif_counts(run_computation(g, MotifCounting(max_size=3), config))
        assert result == reference

    def test_work_spreads_across_workers(self):
        g = gnm_random_graph(40, 120, seed=8)
        config = ArabesqueConfig(num_workers=4)
        result = run_computation(g, CollectEverything(max_size=3), config)
        deepest = result.metrics.supersteps[-2]
        assert len(deepest.work_units) == 4
        assert deepest.imbalance() < 2.0


class TestStorageModes:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_list_storage_same_outputs(self, workers):
        g = gnm_random_graph(12, 24, seed=5)
        odag_result = run_computation(
            g, CollectEverything(3), ArabesqueConfig(num_workers=workers)
        )
        list_result = run_computation(
            g,
            CollectEverything(3),
            ArabesqueConfig(num_workers=workers, storage=LIST_STORAGE),
        )
        assert set(odag_result.outputs) == set(list_result.outputs)

    def test_odag_compresses_vs_list_bytes(self):
        # A dense graph where many embeddings share prefixes.
        g = complete_graph(10)
        result = run_computation(g, CollectEverything(3))
        deepest = max(result.steps, key=lambda s: s.stored_embeddings)
        assert deepest.storage_bytes < deepest.list_bytes

    def test_list_storage_reports_its_own_bytes(self):
        g = gnm_random_graph(10, 20, seed=1)
        result = run_computation(
            g, CollectEverything(2), ArabesqueConfig(storage=LIST_STORAGE)
        )
        step = result.steps[0]
        assert step.storage_bytes >= step.list_bytes  # pattern overhead


class TestTermination:
    def test_empty_graph_terminates_immediately(self):
        g = graph_from_edges([], vertex_labels=[])
        result = run_computation(g, CollectEverything(3))
        assert result.num_outputs == 0
        assert result.num_steps == 1

    def test_filter_false_everywhere(self):
        class RejectAll(Computation):
            def filter(self, embedding):
                return False

        result = run_computation(path_graph(5), RejectAll())
        assert result.num_outputs == 0
        assert result.num_steps == 1

    def test_max_steps_guard(self):
        class NeverStops(Computation):
            def filter(self, embedding):
                return True

        config = ArabesqueConfig(max_exploration_steps=2)
        with pytest.raises(ExplorationError):
            run_computation(complete_graph(6), NeverStops(), config)

    def test_termination_filter_skips_last_step(self):
        g = cycle_graph(6)
        with_tf = run_computation(g, CollectEverything(3))

        class NoTerminationFilter(CollectEverything):
            def termination_filter(self, embedding):
                return False

        without_tf = run_computation(g, NoTerminationFilter(3))
        assert set(with_tf.outputs) == set(without_tf.outputs)
        # Without the filter the engine runs one extra (all-filtered) step.
        assert without_tf.num_steps == with_tf.num_steps + 1


class TestStatistics:
    def test_step_counters_consistent(self):
        g = gnm_random_graph(12, 30, seed=3)
        result = run_computation(g, CollectEverything(3))
        for stats in result.steps:
            assert stats.canonical_candidates <= stats.candidates_generated
            assert stats.processed_embeddings <= stats.canonical_candidates
            assert stats.stored_embeddings <= stats.processed_embeddings

    def test_num_outputs_exact_with_limit(self):
        g = complete_graph(7)
        config = ArabesqueConfig(output_limit=5)
        result = run_computation(g, CollectEverything(3), config)
        assert len(result.outputs) == 5
        assert result.num_outputs == 7 + 21 + 35

    def test_collect_outputs_disabled(self):
        config = ArabesqueConfig(collect_outputs=False)
        result = run_computation(complete_graph(5), CollectEverything(2), config)
        assert result.outputs == []
        assert result.num_outputs == 15

    def test_messages_metered(self):
        g = gnm_random_graph(12, 24, seed=2)
        config = ArabesqueConfig(num_workers=3)
        result = run_computation(g, CollectEverything(3), config)
        assert result.metrics.total_messages > 0
        assert result.metrics.total_broadcast_bytes > 0

    def test_makespan_positive(self):
        result = run_computation(cycle_graph(8), CollectEverything(3))
        assert result.makespan() > 0.0

    def test_phase_profiling(self):
        config = ArabesqueConfig(profile_phases=True)
        result = run_computation(
            gnm_random_graph(12, 30, seed=1), CollectEverything(3), config
        )
        phases = result.phase_totals()
        # All five paper phases appear (R only from step 1 onward).
        assert {"R", "G", "C", "P", "W"} <= set(phases)
        assert all(seconds >= 0.0 for seconds in phases.values())

    def test_peak_storage_bytes(self):
        result = run_computation(complete_graph(7), CollectEverything(3))
        assert result.peak_storage_bytes == max(
            s.storage_bytes for s in result.steps
        )


class TestCanonicalityAblation:
    def test_from_scratch_checks_same_results(self):
        g = gnm_random_graph(12, 26, seed=7)
        fast = run_computation(g, CollectEverything(3))
        slow = run_computation(
            g,
            CollectEverything(3),
            ArabesqueConfig(incremental_canonicality=False),
        )
        assert set(fast.outputs) == set(slow.outputs)


class TestConfigValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            ArabesqueConfig(num_workers=0)

    def test_bad_storage(self):
        with pytest.raises(ValueError):
            ArabesqueConfig(storage="mystery")

    def test_bad_max_steps(self):
        with pytest.raises(ValueError):
            ArabesqueConfig(max_exploration_steps=0)


class TestHotspotGraphs:
    def test_star_graph(self):
        # Star: hub + leaves; size-3 connected sets = C(leaves, 2) (hub + 2).
        g = star_graph(8)
        result = run_computation(g, CollectEverything(3))
        size3 = [s for s in result.outputs if len(s) == 3]
        assert len(size3) == 28

    def test_framework_functions_unavailable_outside_run(self):
        app = CollectEverything(2)
        with pytest.raises(RuntimeError):
            app.output("nope")
