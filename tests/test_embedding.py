"""Tests for embeddings (vertex- and edge-induced) and quick patterns."""

import pytest

from repro.core import (
    EDGE_EXPLORATION,
    VERTEX_EXPLORATION,
    EdgeInducedEmbedding,
    VertexInducedEmbedding,
    make_embedding,
)
from repro.graph import graph_from_edges


@pytest.fixture
def labeled_square():
    # 0-1-2-3-0 cycle plus chord 0-2; labels 1,2,1,2; edge labels 10..14.
    return graph_from_edges(
        [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)],
        vertex_labels=[1, 2, 1, 2],
        edge_labels=[10, 11, 12, 13, 14],
    )


class TestVertexInduced:
    def test_vertices_are_words(self, labeled_square):
        e = VertexInducedEmbedding(labeled_square, (0, 1, 2))
        assert e.vertices == (0, 1, 2)
        assert e.num_vertices == 3

    def test_edges_are_induced(self, labeled_square):
        e = VertexInducedEmbedding(labeled_square, (0, 1, 2))
        # Edges among {0,1,2}: (0,1)=0, (1,2)=1, (0,2)=4.
        assert e.edges == (0, 1, 4)
        assert e.num_edges == 3

    def test_extend(self, labeled_square):
        e = VertexInducedEmbedding(labeled_square, (0, 1))
        child = e.extend(2)
        assert isinstance(child, VertexInducedEmbedding)
        assert child.words == (0, 1, 2)
        assert e.words == (0, 1)  # parent unchanged

    def test_vertex_set(self, labeled_square):
        e = VertexInducedEmbedding(labeled_square, (2, 0))
        assert e.vertex_set() == frozenset({0, 2})

    def test_quick_pattern_structure(self, labeled_square):
        e = VertexInducedEmbedding(labeled_square, (0, 1, 2))
        p = e.pattern()
        assert p.vertex_labels == (1, 2, 1)
        assert p.edges == ((0, 1, 10), (0, 2, 14), (1, 2, 11))

    def test_quick_pattern_depends_on_visit_order(self, labeled_square):
        # Automorphic embeddings in different orders -> different quick
        # patterns (this is what two-level aggregation reconciles).
        path_a = VertexInducedEmbedding(labeled_square, (1, 2, 3))
        path_b = VertexInducedEmbedding(labeled_square, (3, 2, 1))
        assert path_a.pattern().canonical() == path_b.pattern().canonical()

    def test_is_clique_incremental(self, labeled_square):
        assert VertexInducedEmbedding(labeled_square, (0, 1, 2)).is_clique()
        assert not VertexInducedEmbedding(labeled_square, (0, 1, 3)).is_clique()
        assert VertexInducedEmbedding(labeled_square, (0,)).is_clique()
        assert VertexInducedEmbedding(labeled_square, (0, 1)).is_clique()

    def test_equality_and_hash(self, labeled_square):
        a = VertexInducedEmbedding(labeled_square, (0, 1))
        b = VertexInducedEmbedding(labeled_square, (0, 1))
        c = VertexInducedEmbedding(labeled_square, (1, 0))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_vertex_and_edge_embeddings_never_equal(self, labeled_square):
        v = VertexInducedEmbedding(labeled_square, (0, 1))
        e = EdgeInducedEmbedding(labeled_square, (0, 1))
        assert v != e


class TestEdgeInduced:
    def test_edges_are_words(self, labeled_square):
        e = EdgeInducedEmbedding(labeled_square, (0, 1))
        assert e.edges == (0, 1)
        assert e.num_edges == 2

    def test_vertices_first_seen_order(self, labeled_square):
        # edge 1 = (1,2), edge 0 = (0,1): vertices 1,2 then 0.
        e = EdgeInducedEmbedding(labeled_square, (1, 0))
        assert e.vertices == (1, 2, 0)
        assert e.num_vertices == 3

    def test_non_induced_semantics(self, labeled_square):
        # Edges (0,1) and (1,2) only: chord (0,2) is NOT part of the
        # embedding even though it exists in the graph.
        e = EdgeInducedEmbedding(labeled_square, (0, 1))
        p = e.pattern()
        assert p.num_edges == 2

    def test_quick_pattern_labels(self, labeled_square):
        e = EdgeInducedEmbedding(labeled_square, (0, 1))
        p = e.pattern()
        assert p.vertex_labels == (1, 2, 1)
        assert ((0, 1, 10) in p.edges) and ((1, 2, 11) in p.edges)

    def test_size_is_word_count(self, labeled_square):
        e = EdgeInducedEmbedding(labeled_square, (0, 1, 2))
        assert e.size == 3
        assert len(e) == 3


class TestFactory:
    def test_vertex_mode(self, labeled_square):
        e = make_embedding(labeled_square, VERTEX_EXPLORATION, (0,))
        assert isinstance(e, VertexInducedEmbedding)

    def test_edge_mode(self, labeled_square):
        e = make_embedding(labeled_square, EDGE_EXPLORATION, (0,))
        assert isinstance(e, EdgeInducedEmbedding)

    def test_unknown_mode(self, labeled_square):
        with pytest.raises(ValueError):
            make_embedding(labeled_square, "bogus", (0,))
