"""Tests for the inter-step stores (OdagStore / ListStore / SpillListStore).

The deeper SpillListStore behaviours (budget enforcement, segment merge
streaming, engine equality, snapshot portability) live in
``tests/test_checkpoint.py``; here we pin the shared ``EmbeddingStore``
surface and the factory.
"""

import pytest

from repro.core import ListStore, OdagStore, Pattern, SpillListStore
from repro.core.storage import make_store

P_EDGE = Pattern((1, 2), ((0, 1, 0),))
P_PATH = Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0)))


class TestOdagStore:
    def test_add_and_count(self):
        store = OdagStore()
        store.add(P_EDGE, (0, 1))
        store.add(P_EDGE, (2, 3))
        store.add(P_PATH, (0, 1, 2))
        assert store.num_embeddings == 3
        assert store.num_odags == 2
        assert not store.is_empty()

    def test_patterns_sorted_deterministically(self):
        store = OdagStore()
        store.add(P_PATH, (0, 1, 2))
        store.add(P_EDGE, (0, 1))
        assert store.patterns() == sorted(
            [P_EDGE, P_PATH], key=lambda p: (p.vertex_labels, p.edges)
        )

    def test_merge(self):
        a = OdagStore()
        a.add(P_EDGE, (0, 1))
        b = OdagStore()
        b.add(P_EDGE, (2, 3))
        b.add(P_PATH, (0, 1, 2))
        a.merge(b)
        assert a.num_embeddings == 3
        assert a.num_odags == 2
        # b unchanged
        assert b.num_embeddings == 2

    def test_merge_does_not_alias(self):
        a = OdagStore()
        b = OdagStore()
        b.add(P_EDGE, (0, 1))
        a.merge(b)
        a.add(P_EDGE, (4, 5))
        assert b.num_embeddings == 1

    def test_extract_partition_covers_everything(self):
        store = OdagStore()
        for words in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            store.add(P_EDGE, words)
        for workers in (1, 2, 3):
            collected = []
            for w in range(workers):
                collected.extend(
                    words for _, words in store.extract_partition(w, workers)
                )
            assert sorted(collected) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_extract_partition_tags_patterns(self):
        store = OdagStore()
        store.add(P_EDGE, (0, 1))
        store.add(P_PATH, (0, 1, 2))
        tagged = dict(store.extract_partition(0, 1))
        assert tagged[P_EDGE] == (0, 1)
        assert tagged[P_PATH] == (0, 1, 2)

    def test_wire_size_includes_patterns(self):
        store = OdagStore()
        store.add(P_EDGE, (0, 1))
        assert store.wire_size() > P_EDGE.wire_size()

    def test_total_paths(self):
        store = OdagStore()
        store.add(P_EDGE, (0, 1))
        store.add(P_EDGE, (0, 2))
        assert store.total_paths() == 2


class TestListStore:
    def test_add_and_count(self):
        store = ListStore()
        store.add(P_EDGE, (0, 1))
        store.add(P_EDGE, (0, 1))  # duplicates allowed at store level
        assert store.num_embeddings == 2

    def test_partition_covers_everything(self):
        store = ListStore()
        for words in [(3, 4), (0, 1), (2, 3), (1, 2)]:
            store.add(P_EDGE, words)
        store.sort()
        for workers in (1, 2, 4):
            collected = []
            for w in range(workers):
                collected.extend(
                    words for _, words in store.extract_partition(w, workers)
                )
            assert collected == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_merge_and_sort(self):
        a = ListStore()
        a.add(P_EDGE, (2, 3))
        b = ListStore()
        b.add(P_EDGE, (0, 1))
        a.merge(b)
        a.sort()
        assert [w for _, w in a.extract_partition(0, 1)] == [(0, 1), (2, 3)]

    def test_wire_size_linear_in_embeddings(self):
        store = ListStore()
        store.add(P_EDGE, (0, 1))
        base = store.wire_size()
        store.add(P_EDGE, (1, 2))
        assert store.wire_size() == base + 4 + 8

    def test_empty(self):
        assert ListStore().is_empty()
        assert ListStore().num_embeddings == 0


class TestSpillStoreSurface:
    def test_matches_list_store_on_the_shared_interface(self, tmp_path):
        spill = SpillListStore(directory=str(tmp_path), budget_nbytes=64)
        reference = ListStore()
        rows = [(P_PATH, (3, 1, 2)), (P_EDGE, (0, 1)), (P_EDGE, (2, 3))]
        for pattern, words in rows:
            spill.add(pattern, words)
            reference.add(pattern, words)
        reference.sort()
        assert spill.num_embeddings == reference.num_embeddings
        assert spill.wire_size() == reference.wire_size()
        assert spill.patterns() == reference.patterns()
        assert list(spill.extract_partition(0, 1)) == list(
            reference.extract_partition(0, 1)
        )

    def test_empty(self, tmp_path):
        store = SpillListStore(directory=str(tmp_path), budget_nbytes=64)
        assert store.is_empty()
        assert store.num_embeddings == 0


class TestFactory:
    def test_make_store(self):
        assert isinstance(make_store("odag"), OdagStore)
        assert isinstance(make_store("list"), ListStore)
        with pytest.raises(ValueError):
            make_store("bogus")

    def test_make_spill_store(self, tmp_path):
        store = make_store(
            "spill", spill_dir=str(tmp_path), spill_budget_nbytes=128
        )
        assert isinstance(store, SpillListStore)
        for i in range(40):
            store.add(P_PATH, (i, i + 1, i + 2))
        assert store.spill_count > 0
        assert store.peak_memory_nbytes <= 128 + 4 + 4 * 3
        store.dispose()
