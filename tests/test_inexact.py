"""Tests for inexact (label-cost) matching."""

import pytest

from repro.apps import InexactMatching, min_completion_cost, unit_label_cost
from repro.core import Pattern, run_computation
from repro.graph import complete_graph, graph_from_edges, path_graph

TRIANGLE_ABC = Pattern((1, 2, 3), ((0, 1, 0), (0, 2, 0), (1, 2, 0)))
PATH_AB = Pattern((1, 2), ((0, 1, 0),))


class TestUnitCost:
    def test_match(self):
        assert unit_label_cost(3, 3) == 0.0

    def test_substitution(self):
        assert unit_label_cost(3, 4) == 1.0


class TestMinCompletionCost:
    def test_exact_triangle_zero_cost(self):
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2)], vertex_labels=[1, 2, 3]
        )
        cost = min_completion_cost(
            TRIANGLE_ABC, g, frozenset({0, 1, 2}), 10.0, unit_label_cost
        )
        assert cost == 0.0

    def test_label_substitutions_counted(self):
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2)], vertex_labels=[1, 2, 9]
        )
        cost = min_completion_cost(
            TRIANGLE_ABC, g, frozenset({0, 1, 2}), 10.0, unit_label_cost
        )
        assert cost == 1.0

    def test_structure_mismatch_is_none(self):
        g = path_graph(3)  # no triangle structure
        cost = min_completion_cost(
            TRIANGLE_ABC, g, frozenset({0, 1, 2}), 10.0, unit_label_cost
        )
        assert cost is None

    def test_partial_members_lower_bound(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)], vertex_labels=[9, 9, 9])
        partial = min_completion_cost(
            TRIANGLE_ABC, g, frozenset({0, 1}), 10.0, unit_label_cost
        )
        full = min_completion_cost(
            TRIANGLE_ABC, g, frozenset({0, 1, 2}), 10.0, unit_label_cost
        )
        assert partial is not None and full is not None
        assert partial <= full  # anti-monotone lower bound

    def test_budget_prunes(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)], vertex_labels=[9, 9, 9])
        cost = min_completion_cost(
            TRIANGLE_ABC, g, frozenset({0, 1, 2}), 1.0, unit_label_cost
        )
        assert cost is None  # needs 3 substitutions, budget 1

    def test_oversized_member_set(self):
        g = complete_graph(4)
        assert (
            min_completion_cost(PATH_AB, g, frozenset({0, 1, 2}), 5.0, unit_label_cost)
            is None
        )


class TestInexactMatching:
    def _labeled_triangles(self):
        # Two triangles: one exact (1,2,3), one off by one label (1,2,9).
        return graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            vertex_labels=[1, 2, 3, 1, 2, 9],
        )

    def test_budget_zero_finds_exact_only(self):
        g = self._labeled_triangles()
        result = run_computation(g, InexactMatching(TRIANGLE_ABC, budget=0.0))
        assert [(m, c) for m, c in result.outputs] == [((0, 1, 2), 0.0)]

    def test_budget_one_finds_both(self):
        g = self._labeled_triangles()
        result = run_computation(g, InexactMatching(TRIANGLE_ABC, budget=1.0))
        found = {m: c for m, c in result.outputs}
        assert found == {(0, 1, 2): 0.0, (3, 4, 5): 1.0}

    def test_structure_still_required(self):
        # A labeled path (1,2,3) is not a triangle at any budget.
        g = graph_from_edges([(0, 1), (1, 2)], vertex_labels=[1, 2, 3])
        result = run_computation(g, InexactMatching(TRIANGLE_ABC, budget=99.0))
        assert result.outputs == []

    def test_custom_cost_function(self):
        def cheap_swap(expected, actual):
            return 0.25 if expected != actual else 0.0

        g = self._labeled_triangles()
        result = run_computation(
            g, InexactMatching(TRIANGLE_ABC, budget=0.25, cost_fn=cheap_swap)
        )
        assert {m for m, _ in result.outputs} == {(0, 1, 2), (3, 4, 5)}

    def test_each_match_once(self):
        g = complete_graph(4).relabel([1, 2, 3, 1])
        result = run_computation(g, InexactMatching(TRIANGLE_ABC, budget=2.0))
        members = [m for m, _ in result.outputs]
        assert len(members) == len(set(members)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            InexactMatching(Pattern((), ()), 1.0)
        with pytest.raises(ValueError):
            InexactMatching(TRIANGLE_ABC, -1.0)
