"""Failure injection: misbehaving applications and hostile configurations.

The engine is a framework running user code; these tests pin down what
happens when that code misbehaves — errors must propagate cleanly (never
pass silently), contexts must be detached afterwards, and API misuse must
produce actionable messages.
"""

import pytest

from repro.core import (
    ArabesqueConfig,
    Computation,
    ExplorationError,
    VERTEX_EXPLORATION,
    run_computation,
)
from repro.core.engine import ArabesqueEngine
from repro.graph import complete_graph, path_graph


class Boom(RuntimeError):
    pass


class TestUserFunctionErrors:
    def _run(self, computation):
        return run_computation(complete_graph(4), computation)

    def test_filter_error_propagates(self):
        class BadFilter(Computation):
            def filter(self, e):
                raise Boom("filter")

        with pytest.raises(Boom):
            self._run(BadFilter())

    def test_process_error_propagates(self):
        class BadProcess(Computation):
            def process(self, e):
                raise Boom("process")

        with pytest.raises(Boom):
            self._run(BadProcess())

    def test_aggregation_filter_error_propagates(self):
        class BadAlpha(Computation):
            def filter(self, e):
                return e.num_vertices <= 2

            def aggregation_filter(self, e):
                raise Boom("alpha")

        with pytest.raises(Boom):
            self._run(BadAlpha())

    def test_termination_filter_error_propagates(self):
        class BadTermination(Computation):
            def termination_filter(self, e):
                raise Boom("termination")

        with pytest.raises(Boom):
            self._run(BadTermination())

    def test_context_detached_after_error(self):
        class BadProcess(Computation):
            def process(self, e):
                raise Boom("process")

        app = BadProcess()
        with pytest.raises(Boom):
            self._run(app)
        # The engine's finally-block must have unbound the context.
        with pytest.raises(RuntimeError):
            app.output("stale")

    def test_reduce_error_propagates(self):
        class BadReduce(Computation):
            def filter(self, e):
                return e.num_vertices <= 2

            def process(self, e):
                self.map("k", 1)
                self.map("k", 2)

            def reduce(self, key, values):
                raise Boom("reduce")

        with pytest.raises(Boom):
            self._run(BadReduce())


class TestApiMisuse:
    def test_map_without_reduce(self):
        class MapNoReduce(Computation):
            def filter(self, e):
                return e.num_vertices <= 1

            def process(self, e):
                self.map("k", 1)
                self.map("k", 2)

        with pytest.raises(NotImplementedError, match="reduce"):
            run_computation(path_graph(3), MapNoReduce())

    def test_map_output_without_reduce_output(self):
        class MapOutNoReduce(Computation):
            def filter(self, e):
                return e.num_vertices <= 1

            def process(self, e):
                self.map_output("k", 1)
                self.map_output("k", 2)

        with pytest.raises(NotImplementedError, match="reduce_output"):
            run_computation(path_graph(3), MapOutNoReduce())

    def test_framework_functions_outside_run(self):
        class Plain(Computation):
            pass

        app = Plain()
        for call in (
            lambda: app.output(1),
            lambda: app.map("k", 1),
            lambda: app.map_output("k", 1),
            lambda: app.read_aggregate("k"),
        ):
            with pytest.raises(RuntimeError, match="engine"):
                call()

    def test_read_aggregate_of_unknown_key_is_none(self):
        observed = []

        class Reader(Computation):
            def filter(self, e):
                return e.num_vertices <= 2

            def process(self, e):
                observed.append(self.read_aggregate("never-mapped"))

        run_computation(path_graph(3), Reader())
        assert observed
        assert all(value is None for value in observed)

    def test_unknown_exploration_mode(self):
        class WrongMode(Computation):
            exploration_mode = "sideways"

        with pytest.raises(ValueError, match="exploration mode"):
            ArabesqueEngine(path_graph(3), WrongMode())


class TestHostileFilters:
    def test_non_terminating_filter_hits_step_bound(self):
        class Everything(Computation):
            def filter(self, e):
                return True

        config = ArabesqueConfig(max_exploration_steps=3)
        with pytest.raises(ExplorationError, match="anti-monotonicity"):
            run_computation(complete_graph(8), Everything(), config)

    def test_flip_flopping_filter_is_contained(self):
        """A non-anti-monotone filter (accepts odd sizes only) violates the
        contract; the engine cannot detect it, but exploration still halts
        because nothing of even size survives to be extended."""

        class FlipFlop(Computation):
            exploration_mode = VERTEX_EXPLORATION

            def filter(self, e):
                return e.num_vertices % 2 == 1

        result = run_computation(complete_graph(5), FlipFlop())
        assert result.num_steps == 2  # size-1 accepted, size-2 all rejected

    def test_output_limit_zero_collects_nothing(self):
        class Emit(Computation):
            def filter(self, e):
                return e.num_vertices <= 1

            def process(self, e):
                self.output(e.words)

        config = ArabesqueConfig(output_limit=0)
        result = run_computation(path_graph(4), Emit(), config)
        assert result.outputs == []
        assert result.num_outputs == 4


class TestCheckpointFailureModes:
    """Damaged or mismatched snapshots must refuse to resume, loudly.

    The snapshot trailer is a sha256 over everything before it, so
    arbitrary damage (bit flips, truncation) surfaces as a checksum
    failure; magic/version diagnostics require re-signing the blob, which
    is exactly what a hand-crafted hostile file would do.
    """

    def _crashed_run_dir(self, tmp_path):
        from repro.apps import CliqueFinding
        from repro.checkpoint import run_to_crash

        run_to_crash(
            complete_graph(6),
            CliqueFinding(max_size=4, min_size=2),
            ArabesqueConfig(),
            str(tmp_path),
            1,
        )
        from repro.checkpoint import latest_snapshot_path

        return latest_snapshot_path(str(tmp_path))

    def _resign(self, path, blob):
        import hashlib

        with open(path, "wb") as handle:
            handle.write(blob + hashlib.sha256(blob).digest())

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        from repro.checkpoint import CheckpointError, read_snapshot

        path = self._crashed_run_dir(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointError, match="failed its checksum"):
            read_snapshot(path)

    def test_truncated_mid_write_is_detected(self, tmp_path):
        from repro.checkpoint import CheckpointError, read_snapshot

        path = self._crashed_run_dir(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="checksum|truncated"):
            read_snapshot(path)

    def test_nearly_empty_file_is_reported_as_truncated(self, tmp_path):
        from repro.checkpoint import CheckpointError, read_snapshot

        path = self._crashed_run_dir(tmp_path)
        open(path, "wb").write(b"ARBK")
        with pytest.raises(CheckpointError, match="is truncated"):
            read_snapshot(path)

    def test_foreign_file_with_valid_checksum_fails_magic(self, tmp_path):
        from repro.checkpoint import CheckpointError, read_snapshot

        path = self._crashed_run_dir(tmp_path)
        self._resign(path, b"NOTARBSQ" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="bad magic"):
            read_snapshot(path)

    def test_future_format_version_is_rejected(self, tmp_path):
        import struct

        from repro.checkpoint import CheckpointError, read_snapshot
        from repro.checkpoint.snapshot import MAGIC, _CHECKSUM_NBYTES

        path = self._crashed_run_dir(tmp_path)
        data = open(path, "rb").read()
        blob = data[:-_CHECKSUM_NBYTES]
        payload = blob[len(MAGIC) + 4 :]
        self._resign(path, MAGIC + struct.pack(">I", 99) + payload)
        with pytest.raises(CheckpointError, match="format version 99"):
            read_snapshot(path)

    def test_empty_run_dir_has_nothing_to_resume(self, tmp_path):
        from repro.checkpoint import CheckpointError, resume_run

        with pytest.raises(
            CheckpointError, match="no checkpoint snapshots found"
        ):
            resume_run(str(tmp_path), complete_graph(6))

    def test_resuming_against_the_wrong_graph_is_refused(self, tmp_path):
        from repro.checkpoint import CheckpointGraphMismatch, resume_run

        self._crashed_run_dir(tmp_path)
        with pytest.raises(CheckpointGraphMismatch, match="graph"):
            resume_run(str(tmp_path), complete_graph(7))

    def test_resuming_with_semantic_config_changes_is_refused(self, tmp_path):
        from repro.checkpoint import CheckpointConfigMismatch, resume_run

        self._crashed_run_dir(tmp_path)
        with pytest.raises(CheckpointConfigMismatch, match="storage"):
            resume_run(
                str(tmp_path),
                complete_graph(6),
                config=ArabesqueConfig(storage="list"),
            )
