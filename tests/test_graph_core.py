"""Property tests for the CSR + bitset graph core.

The refactored :class:`~repro.graph.LabeledGraph` stores adjacency in CSR
``array('l')`` buffers and big-int bitsets.  These tests pit every accessor
against a naive dict-of-sets reference built independently from the same
edge list, on hypothesis-generated random graphs — plus round-trip
invariants for the bitset helpers themselves.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graph import (
    GraphError,
    LabeledGraph,
    bitset_count,
    from_bitset,
    iter_bitset,
    to_bitset,
)


def random_graph_data(seed: int, max_n: int = 12):
    """Random labels + simple edge list (the constructor's raw inputs)."""
    rng = random.Random(seed)
    n = rng.randint(1, max_n)
    labels = [rng.randint(0, 3) for _ in range(n)]
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    rng.shuffle(pairs)
    edges = pairs[: rng.randint(0, len(pairs))]
    edge_labels = [rng.randint(0, 2) for _ in edges]
    return labels, edges, edge_labels


class DictOfSetsReference:
    """The naive graph representation the CSR core must agree with."""

    def __init__(self, labels, edges, edge_labels):
        n = len(labels)
        self.labels = list(labels)
        self.adjacency = {v: set() for v in range(n)}
        self.incident = {v: set() for v in range(n)}
        self.edge_index = {}
        self.edge_labels = list(edge_labels)
        for eid, (u, v) in enumerate(edges):
            self.adjacency[u].add(v)
            self.adjacency[v].add(u)
            self.incident[u].add(eid)
            self.incident[v].add(eid)
            self.edge_index[(u, v) if u < v else (v, u)] = eid
        self.label_index = {}
        for vertex, label in enumerate(labels):
            self.label_index.setdefault(label, []).append(vertex)


@given(seed=st.integers(0, 5000))
@settings(max_examples=80, deadline=None)
def test_csr_core_agrees_with_dict_of_sets_reference(seed):
    labels, edges, edge_labels = random_graph_data(seed)
    graph = LabeledGraph(labels, edges, edge_labels)
    ref = DictOfSetsReference(labels, edges, edge_labels)
    n = len(labels)

    for v in range(n):
        expected = sorted(ref.adjacency[v])
        assert list(graph.neighbors(v)) == expected
        assert from_bitset(graph.neighbor_bits(v)) == tuple(expected)
        assert graph.degree(v) == len(expected)
        assert list(graph.incident_edges(v)) == sorted(ref.incident[v])
        assert from_bitset(graph.incident_bits(v)) == tuple(
            sorted(ref.incident[v])
        )
        assert graph.vertex_label(v) == ref.labels[v]

    for u in range(n):
        for v in range(n):
            key = (u, v) if u < v else (v, u)
            assert graph.adjacent(u, v) == (v in ref.adjacency[u])
            if key in ref.edge_index:
                assert graph.edge_id(u, v) == ref.edge_index[key]
                assert graph.edge_between(u, v) == ref.edge_index[key]
            elif u != v:
                assert graph.edge_between(u, v) is None

    for label, vertices in ref.label_index.items():
        assert graph.vertices_with_label(label) == tuple(vertices)
        assert from_bitset(graph.label_bits(label)) == tuple(vertices)
    assert graph.vertices_with_label(99) == ()

    for eid, label in enumerate(ref.edge_labels):
        assert graph.edge_label(eid) == label


@given(seed=st.integers(0, 5000))
@settings(max_examples=60, deadline=None)
def test_induced_and_connectivity_agree_with_reference(seed):
    labels, edges, edge_labels = random_graph_data(seed)
    graph = LabeledGraph(labels, edges, edge_labels)
    ref = DictOfSetsReference(labels, edges, edge_labels)
    n = len(labels)

    rng = random.Random(seed + 1)
    subset = [v for v in range(n) if rng.random() < 0.5]
    members = set(subset)
    expected_edges = sorted(
        eid
        for (u, v), eid in ref.edge_index.items()
        if u in members and v in members
    )
    assert graph.induced_edge_ids(subset) == expected_edges

    def naive_connected(vertex_ids):
        if not vertex_ids:
            return False
        todo = [vertex_ids[0]]
        seen = {vertex_ids[0]}
        while todo:
            v = todo.pop()
            for u in ref.adjacency[v] & set(vertex_ids):
                if u not in seen:
                    seen.add(u)
                    todo.append(u)
        return len(seen) == len(set(vertex_ids))

    assert graph.is_connected_vertex_set(subset) == naive_connected(subset)


@given(ids=st.sets(st.integers(0, 300), max_size=40))
@settings(max_examples=100, deadline=None)
def test_bitset_round_trip(ids):
    bits = to_bitset(ids)
    decoded = from_bitset(bits)
    assert decoded == tuple(sorted(ids))
    assert list(iter_bitset(bits)) == list(decoded)
    assert bitset_count(bits) == len(ids)
    # Idempotence: re-encoding the decoded tuple is the same bitset.
    assert to_bitset(decoded) == bits


@given(
    a=st.sets(st.integers(0, 200), max_size=30),
    b=st.sets(st.integers(0, 200), max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_bitset_algebra_matches_set_algebra(a, b):
    bits_a, bits_b = to_bitset(a), to_bitset(b)
    assert from_bitset(bits_a & bits_b) == tuple(sorted(a & b))
    assert from_bitset(bits_a | bits_b) == tuple(sorted(a | b))
    assert from_bitset(bits_a & ~bits_b) == tuple(sorted(a - b))


def test_step_zero_pool_is_always_a_tuple():
    """Satellite: the old all-one-label fallback returned a ``range``;
    pools are now one sequence type (tuple) regardless of label layout."""
    from repro.core import Pattern
    from repro.plan import build_plan_dag, compile_plan
    from repro.plan.dag import dag_step_zero_pool
    from repro.plan.guided import step_zero_pool
    from repro.plan.planner import restrict_plan

    # Single-label graph: the label index IS the whole vertex range —
    # exactly the case that used to fall back to range().
    graph = LabeledGraph([0] * 5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    triangle = Pattern((0, 0, 0), ((0, 1, 0), (1, 2, 0), (0, 2, 0)))
    plan = compile_plan(triangle, induced=False)
    pool = step_zero_pool(plan, graph)
    assert isinstance(pool, tuple)
    assert pool == (0, 1, 2, 3, 4)

    dag = build_plan_dag([triangle], induced=False)
    dag_pool = dag_step_zero_pool(dag, graph)
    assert isinstance(dag_pool, tuple)
    assert dag_pool == (0, 1, 2, 3, 4)

    whitelisted = restrict_plan(plan, {plan.order[0]: frozenset({3, 1})})
    wpool = step_zero_pool(whitelisted, graph)
    assert isinstance(wpool, tuple)
    assert wpool == (1, 3)


def test_constructor_rejections_unchanged():
    """CSR construction keeps the legacy validation surface."""
    import pytest

    with pytest.raises(GraphError):
        LabeledGraph([0, 0], [(0, 0)])
    with pytest.raises(GraphError):
        LabeledGraph([0, 0], [(0, 1), (1, 0)])
    with pytest.raises(GraphError):
        LabeledGraph([0, 0], [(0, 7)])
