"""Execution-runtime tests: backend selection, pure step tasks, delta
merging, and the invariant that backends are invisible to results.

The cross-backend × cross-app determinism sweep lives in
tests/test_properties.py; this module covers the runtime layer itself.
"""

import pytest

from repro.core import (
    ArabesqueConfig,
    BACKENDS,
    Computation,
    VERTEX_EXPLORATION,
    run_computation,
)
from repro.graph import complete_graph, gnm_random_graph
from repro.runtime import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    run_step_task,
)


class CollectSets(Computation):
    """Outputs every explored vertex set up to a max size (picklable)."""

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, max_size=3):
        super().__init__()
        self.max_size = max_size

    def filter(self, embedding):
        return embedding.num_vertices <= self.max_size

    def process(self, embedding):
        self.output(embedding.vertex_set())
        self.map("embeddings", 1)

    def reduce(self, key, values):
        return sum(values)

    def termination_filter(self, embedding):
        return embedding.num_vertices >= self.max_size


class TestBackendSelection:
    def test_make_backend_covers_all_names(self):
        for name in BACKENDS:
            backend = make_backend(ArabesqueConfig(backend=name))
            assert backend.name == name
            backend.close()

    def test_default_is_serial(self):
        backend = make_backend(ArabesqueConfig())
        assert isinstance(backend, SerialBackend)

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ArabesqueConfig(backend="gpu")

    def test_bad_backend_processes(self):
        with pytest.raises(ValueError, match="backend_processes"):
            ArabesqueConfig(backend_processes=0)

    def test_backend_is_context_manager(self):
        with make_backend(ArabesqueConfig(backend="thread")) as backend:
            assert isinstance(backend, ExecutionBackend)


class TestPureStepTasks:
    def _context(self, workers):
        from repro.core.engine import ArabesqueEngine
        from repro.core.aggregation import AggregationChannel
        from repro.core.pattern import PatternCanonicalizer

        graph = gnm_random_graph(10, 20, seed=3)
        computation = CollectSets(3)
        engine = ArabesqueEngine(
            graph, computation, ArabesqueConfig(num_workers=workers)
        )
        computation.init(graph, engine.config)
        channel = AggregationChannel("aggregate", computation.reduce)
        return engine._step_context(
            0, None, PatternCanonicalizer(), channel
        )

    def test_task_is_repeatable(self):
        """Same (context, worker_id) -> same delta, run after run."""
        context = self._context(workers=2)
        first = run_step_task(context, 0)
        second = run_step_task(context, 0)
        assert first.outputs == second.outputs
        assert first.num_outputs == second.num_outputs
        assert first.agg_partials == second.agg_partials
        assert first.counters.processed_embeddings == (
            second.counters.processed_embeddings
        )

    def test_task_leaves_context_unmodified(self):
        context = self._context(workers=2)
        cache_before = dict(context.pattern_cache)
        run_step_task(context, 1)
        assert context.pattern_cache == cache_before
        # The template computation never keeps a bound context.
        assert context.computation._context is None

    def test_workers_partition_the_universe(self):
        context = self._context(workers=2)
        left = run_step_task(context, 0)
        right = run_step_task(context, 1)
        seen = {words for s in left.outputs for words in [tuple(sorted(s))]}
        seen |= {tuple(sorted(s)) for s in right.outputs}
        assert len(seen) == len(left.outputs) + len(right.outputs) == 10

    def test_deltas_are_picklable(self):
        import pickle

        context = self._context(workers=2)
        delta = run_step_task(context, 0)
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.outputs == delta.outputs
        assert clone.local_store.num_embeddings == delta.local_store.num_embeddings


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_identical_to_serial(self, backend, workers):
        """At a fixed worker count, a parallel backend is byte-identical to
        the serial one — including output ORDER, not just the output set
        (the set is additionally invariant across worker counts; that
        property is covered by tests/test_properties.py)."""
        graph = gnm_random_graph(12, 26, seed=7)
        serial = ArabesqueConfig(num_workers=workers)
        reference = run_computation(graph, CollectSets(3), serial)
        config = ArabesqueConfig(num_workers=workers, backend=backend)
        result = run_computation(graph, CollectSets(3), config)
        assert result.canonical_signature() == reference.canonical_signature()
        assert result.outputs == reference.outputs  # order, not just set
        assert [s.processed_embeddings for s in result.steps] == [
            s.processed_embeddings for s in reference.steps
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_output_limit_truncates_identically(self, backend):
        graph = complete_graph(7)
        config = ArabesqueConfig(
            num_workers=3, backend=backend, output_limit=5
        )
        result = run_computation(graph, CollectSets(3), config)
        reference = run_computation(
            graph, CollectSets(3), ArabesqueConfig(num_workers=3, output_limit=5)
        )
        assert result.outputs == reference.outputs
        assert len(result.outputs) == 5
        assert result.num_outputs == reference.num_outputs == 7 + 21 + 35

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_cover_all_workers(self, backend):
        graph = gnm_random_graph(20, 60, seed=5)
        config = ArabesqueConfig(num_workers=4, backend=backend)
        result = run_computation(graph, CollectSets(3), config)
        deepest = result.metrics.supersteps[-2]
        assert len(deepest.work_units) == 4

    def test_engine_accepts_injected_backend(self):
        graph = gnm_random_graph(10, 20, seed=1)
        backend = ThreadBackend(max_threads=2)
        try:
            config = ArabesqueConfig(num_workers=2, backend="thread")
            result = run_computation(graph, CollectSets(3), config, backend=backend)
            reference = run_computation(
                graph, CollectSets(3), ArabesqueConfig(num_workers=2)
            )
            assert result.canonical_signature() == reference.canonical_signature()
            # Injected backends stay open for reuse across runs.
            again = run_computation(graph, CollectSets(3), config, backend=backend)
            assert again.canonical_signature() == reference.canonical_signature()
        finally:
            backend.close()


class TestProcessBackend:
    def test_single_worker_short_circuits(self):
        graph = gnm_random_graph(10, 18, seed=2)
        config = ArabesqueConfig(num_workers=1, backend="process")
        result = run_computation(graph, CollectSets(3), config)
        reference = run_computation(graph, CollectSets(3))
        assert result.canonical_signature() == reference.canonical_signature()

    def test_explicit_pool_size(self):
        graph = gnm_random_graph(10, 18, seed=2)
        config = ArabesqueConfig(
            num_workers=4, backend="process", backend_processes=2
        )
        result = run_computation(graph, CollectSets(3), config)
        reference = run_computation(
            graph, CollectSets(3), ArabesqueConfig(num_workers=4)
        )
        assert result.canonical_signature() == reference.canonical_signature()

    def test_chunking_covers_every_worker(self):
        from repro.runtime.process import _chunk_worker_ids

        for workers in (1, 2, 5, 8):
            for chunks in (1, 2, 3, 8):
                chunked = _chunk_worker_ids(workers, chunks)
                flat = [w for chunk in chunked for w in chunk]
                assert flat == list(range(workers))
                assert all(chunk for chunk in chunked)

    def test_profile_phases_survive_process_boundary(self):
        graph = gnm_random_graph(12, 30, seed=1)
        config = ArabesqueConfig(
            num_workers=2, backend="process", profile_phases=True
        )
        result = run_computation(graph, CollectSets(3), config)
        assert {"R", "G", "C", "P", "W"} <= set(result.phase_totals())
