"""Tests for patterns, quick patterns, and two-level canonicalization."""

import pytest

from repro.core import (
    Pattern,
    PatternCanonicalizer,
    VertexInducedEmbedding,
    canonicalize_pattern,
    pattern_orbits,
)
from repro.graph import graph_from_edges

PATH_BYB = Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0)))
PATH_BYB_REVERSED = Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0)))
PATH_YBY = Pattern((2, 1, 2), ((0, 1, 0), (1, 2, 0)))


class TestPatternBasics:
    def test_counts(self):
        assert PATH_BYB.num_vertices == 3
        assert PATH_BYB.num_edges == 2

    def test_edge_dict(self):
        assert PATH_BYB.edge_dict() == {(0, 1): 0, (1, 2): 0}

    def test_structural_equality(self):
        assert PATH_BYB == PATH_BYB_REVERSED
        assert PATH_BYB != PATH_YBY

    def test_wire_size(self):
        assert PATH_BYB.wire_size() == 4 + 12 + 24

    def test_hashable(self):
        assert len({PATH_BYB, PATH_BYB_REVERSED, PATH_YBY}) == 2


class TestCanonicalization:
    def test_blue_yellow_edge_example(self):
        """The paper's section 5.4 example: (blue,yellow) and (yellow,blue)
        single-edge quick patterns must share a canonical pattern."""
        blue_yellow = Pattern((1, 2), ((0, 1, 0),))
        yellow_blue = Pattern((2, 1), ((0, 1, 0),))
        assert blue_yellow.canonical() == yellow_blue.canonical()

    def test_visit_order_variants_collapse(self):
        # Same B-Y-B path built center-out vs end-to-end.
        end_to_end = Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0)))
        center_out = Pattern((2, 1, 1), ((0, 1, 0), (0, 2, 0)))
        assert end_to_end.canonical() == center_out.canonical()

    def test_canonical_is_idempotent(self):
        canonical = PATH_BYB.canonical()
        assert canonical.canonical() == canonical
        assert canonical.is_canonical()

    def test_mapping_is_valid_permutation(self):
        _, mapping = PATH_BYB.canonical_mapping()
        assert sorted(mapping) == [0, 1, 2]

    def test_mapping_transports_structure(self):
        canonical, mapping = PATH_YBY.canonical_mapping()
        # Applying the mapping to the quick pattern's edges must produce
        # canonical edges.
        for i, j, label in PATH_YBY.edges:
            a, b = mapping[i], mapping[j]
            if a > b:
                a, b = b, a
            assert (a, b, label) in canonical.edges
        # And labels must follow vertices.
        for i, label in enumerate(PATH_YBY.vertex_labels):
            assert canonical.vertex_labels[mapping[i]] == label

    def test_distinct_classes_stay_distinct(self):
        assert PATH_BYB.canonical() != PATH_YBY.canonical()

    def test_module_cache_consistency(self):
        a = canonicalize_pattern(PATH_BYB)
        b = canonicalize_pattern(Pattern((1, 2, 1), ((0, 1, 0), (1, 2, 0))))
        assert a == b


class TestOrbits:
    def test_symmetric_path_ends_share_orbit(self):
        orbits = pattern_orbits(PATH_BYB)
        assert orbits[0] == orbits[2]
        assert orbits[1] != orbits[0]

    def test_triangle_unlabeled_single_orbit(self):
        triangle = Pattern((0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0)))
        assert len(set(pattern_orbits(triangle))) == 1

    def test_labels_break_orbits(self):
        labeled = Pattern((5, 6, 7), ((0, 1, 0), (1, 2, 0)))
        assert len(set(pattern_orbits(labeled))) == 3


class TestPatternCanonicalizer:
    def _quick_patterns(self):
        g = graph_from_edges(
            [(0, 1), (1, 2), (2, 3)], vertex_labels=[1, 2, 1, 2]
        )
        # Three automorphically-related paths with different quick patterns.
        e1 = VertexInducedEmbedding(g, (0, 1, 2)).pattern()  # B-Y-B
        e2 = VertexInducedEmbedding(g, (2, 1, 0)).pattern()  # B-Y-B again
        e3 = VertexInducedEmbedding(g, (1, 2, 3)).pattern()  # Y-B-Y
        return e1, e2, e3

    def test_two_level_counts_quick_patterns(self):
        canonicalizer = PatternCanonicalizer(two_level=True)
        e1, e2, e3 = self._quick_patterns()
        for quick in (e1, e2, e3, e1, e1):
            canonicalizer.canonicalize(quick)
        assert canonicalizer.requests == 5
        assert canonicalizer.quick_patterns_seen == 2  # BYB and YBY
        # One isomorphism run per distinct quick pattern.
        assert canonicalizer.isomorphism_runs == 2

    def test_without_two_level_every_request_runs_isomorphism(self):
        canonicalizer = PatternCanonicalizer(two_level=False)
        e1, e2, e3 = self._quick_patterns()
        for quick in (e1, e2, e3, e1, e1):
            canonicalizer.canonicalize(quick)
        assert canonicalizer.isomorphism_runs == 5

    def test_both_modes_agree(self):
        with_cache = PatternCanonicalizer(two_level=True)
        without = PatternCanonicalizer(two_level=False)
        for quick in self._quick_patterns():
            assert with_cache.canonicalize(quick) == without.canonicalize(quick)

    def test_canonical_patterns_seen(self):
        canonicalizer = PatternCanonicalizer(two_level=True)
        e1, e2, e3 = self._quick_patterns()
        for quick in (e1, e2, e3):
            canonicalizer.canonicalize(quick)
        assert canonicalizer.canonical_patterns_seen() == 2
