"""Baseline tests: each baseline cross-validated against Arabesque apps,
networkx, or brute force — plus the paradigm-level behaviours the paper
reports (TLP parallelism ceiling, TLV message explosion)."""

import itertools

import networkx as nx
import pytest

from repro.apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    MotifCounting,
    cliques_by_size,
    frequent_patterns,
    motif_counts,
)
from repro.baselines import (
    count_cliques_by_size,
    count_motifs,
    count_motifs_up_to,
    degeneracy_order,
    enumerate_cliques,
    enumerate_connected_subgraphs,
    enumerate_maximal_cliques,
    exact_mni_support,
    extend_pattern,
    find_frequent_embeddings,
    graph_label_triples,
    mni_support_lazy,
    run_grami,
    run_tlp_fsm,
    run_tlv_fsm,
    single_edge_patterns,
)
from repro.core import Pattern, run_computation
from repro.graph import (
    assign_labels,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    graph_from_edges,
    path_graph,
    powerlaw_graph,
    star_graph,
)


def to_networkx(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    nxg.add_edges_from((u, v) for _, u, v in graph.edge_iter())
    return nxg


class TestCliqueBaselines:
    def test_all_cliques_unique_and_sorted(self):
        g = gnm_random_graph(15, 50, seed=1)
        cliques = list(enumerate_cliques(g, max_size=4))
        assert len(cliques) == len(set(cliques))
        assert all(tuple(sorted(c)) == c for c in cliques)

    @pytest.mark.parametrize("seed", [1, 4])
    def test_counts_match_arabesque(self, seed):
        g = gnm_random_graph(16, 56, seed=seed)
        ours = count_cliques_by_size(g, max_size=4)
        arabesque = {
            size: len(cliques)
            for size, cliques in cliques_by_size(
                run_computation(g, CliqueFinding(max_size=4))
            ).items()
        }
        assert ours == arabesque

    def test_k6_counts(self):
        counts = count_cliques_by_size(complete_graph(6))
        assert counts == {1: 6, 2: 15, 3: 20, 4: 15, 5: 6, 6: 1}

    def test_degeneracy_order_peels_leaves_first(self):
        # The hub only reaches the peel frontier after enough leaves go.
        order = degeneracy_order(star_graph(5))
        assert order.index(0) >= 4

    def test_degeneracy_order_is_permutation(self):
        g = gnm_random_graph(20, 40, seed=3)
        assert sorted(degeneracy_order(g)) == list(range(20))

    @pytest.mark.parametrize("seed", [2, 6])
    def test_maximal_cliques_match_networkx(self, seed):
        g = gnm_random_graph(18, 70, seed=seed)
        ours = set(enumerate_maximal_cliques(g))
        expected = {frozenset(c) for c in nx.find_cliques(to_networkx(g))}
        assert ours == expected

    def test_maximal_cliques_on_path(self):
        assert set(enumerate_maximal_cliques(path_graph(4))) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }


class TestEsu:
    def test_enumerates_each_subgraph_once(self):
        g = gnm_random_graph(14, 30, seed=2)
        found = list(enumerate_connected_subgraphs(g, 3))
        assert len(found) == len(set(found))

    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_matches_bruteforce(self, size):
        g = gnm_random_graph(12, 26, seed=5)
        found = set(enumerate_connected_subgraphs(g, size))
        expected = {
            combo
            for combo in itertools.combinations(range(12), size)
            if g.is_connected_vertex_set(combo)
        }
        assert found == expected

    @pytest.mark.parametrize("seed", [1, 7])
    def test_motif_census_matches_arabesque(self, seed):
        g = gnm_random_graph(16, 44, seed=seed)
        esu_counts = count_motifs_up_to(g, 4)
        arabesque_counts = motif_counts(run_computation(g, MotifCounting(4)))
        assert esu_counts == arabesque_counts

    def test_labeled_census(self):
        g = assign_labels(gnm_random_graph(14, 30, seed=9), 3, seed=9)
        assert count_motifs(g, 3) == motif_counts(
            run_computation(g, MotifCounting(3, min_size=3))
        )

    def test_size_zero(self):
        assert list(enumerate_connected_subgraphs(path_graph(3), 0)) == []


class TestGrami:
    def test_label_triples(self):
        g = graph_from_edges([(0, 1)], vertex_labels=[1, 2], edge_labels=[7])
        assert graph_label_triples(g) == {(1, 7, 2), (2, 7, 1)}

    def test_single_edge_patterns_canonical_and_unique(self):
        g = assign_labels(gnm_random_graph(20, 50, seed=3), 3, seed=3)
        patterns = single_edge_patterns(g)
        assert len(patterns) == len(set(patterns))
        assert all(p.is_canonical() and p.num_edges == 1 for p in patterns)

    def test_extend_pattern_grows_by_one_edge(self):
        g = complete_graph(4)
        base = single_edge_patterns(g)[0]
        extended = extend_pattern(base, graph_label_triples(g))
        assert extended
        assert all(p.num_edges == 2 for p in extended)

    def test_extend_pattern_closes_triangles(self):
        g = complete_graph(3)
        path = Pattern((0, 0, 0), ((0, 1, 0), (1, 2, 0))).canonical()
        extended = extend_pattern(path, graph_label_triples(g))
        triangle = Pattern(
            (0, 0, 0), ((0, 1, 0), (0, 2, 0), (1, 2, 0))
        ).canonical()
        assert triangle in extended

    def test_lazy_support_stops_early(self):
        g = complete_graph(10)
        pattern = single_edge_patterns(g)[0]
        lazy = mni_support_lazy(g, pattern, threshold=2)
        exhaustive = mni_support_lazy(g, pattern, threshold=10**9)
        assert lazy.frequent
        assert lazy.work < exhaustive.work

    def test_lazy_support_agrees_with_exact_on_infrequent(self):
        g = assign_labels(gnm_random_graph(15, 30, seed=4), 2, seed=4)
        for pattern in single_edge_patterns(g):
            evaluation = mni_support_lazy(g, pattern, threshold=10**9)
            assert evaluation.support == exact_mni_support(g, pattern)

    @pytest.mark.parametrize("seed,threshold", [(1, 3), (2, 4)])
    def test_grami_matches_arabesque_fsm(self, seed, threshold):
        g = assign_labels(gnm_random_graph(14, 24, seed=seed), 2, seed=seed)
        grami = run_grami(g, threshold, max_edges=3)
        arabesque = frequent_patterns(
            run_computation(g, FrequentSubgraphMining(threshold, max_edges=3)),
            threshold,
        )
        # Same frequent-pattern sets; GRAMI's lazy search reports support
        # clamped at the threshold (it stops as soon as frequency is
        # certain — "solving a simpler problem", section 6.2), while
        # Arabesque aggregates exact supports.
        assert set(grami.frequent) == set(arabesque)
        for pattern, support in grami.frequent.items():
            assert support == min(threshold, arabesque[pattern])

    def test_find_frequent_embeddings(self):
        g = complete_graph(4)
        grami = run_grami(g, threshold=2, max_edges=1)
        embeddings = find_frequent_embeddings(g, grami.frequent)
        (pattern,) = grami.frequent
        assert embeddings[pattern] == {
            frozenset(e) for e in itertools.combinations(range(4), 2)
        }

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            run_grami(complete_graph(3), 0)

    def test_terminates_without_max(self):
        g = assign_labels(gnm_random_graph(12, 20, seed=8), 2, seed=8)
        result = run_grami(g, threshold=500)
        assert result.frequent == {}
        assert result.levels == 1


class TestTlp:
    def test_answer_invariant_in_workers(self):
        g = assign_labels(gnm_random_graph(14, 26, seed=2), 2, seed=2)
        reference = run_tlp_fsm(g, 3, max_edges=3, num_workers=1)
        for workers in (2, 5, 10):
            result = run_tlp_fsm(g, 3, max_edges=3, num_workers=workers)
            assert result.frequent == reference.frequent

    def test_matches_grami(self):
        g = assign_labels(gnm_random_graph(14, 26, seed=3), 2, seed=3)
        tlp = run_tlp_fsm(g, 3, max_edges=3, num_workers=4)
        grami = run_grami(g, 3, max_edges=3)
        assert tlp.frequent == grami.frequent

    def test_parallelism_ceiling(self):
        """With more workers than candidate patterns, extra workers get no
        work — the paper's 'only a few workers will be used'."""
        g = assign_labels(gnm_random_graph(20, 60, seed=4), 2, seed=4)
        result = run_tlp_fsm(g, 3, max_edges=2, num_workers=64)
        ceiling = max(result.candidates_per_level)
        busiest_step = max(
            result.metrics.supersteps, key=lambda s: len(s.work_units)
        )
        assert len(busiest_step.work_units) <= ceiling

    def test_max_work_does_not_shrink_with_workers(self):
        """The busiest worker still owns at least the most expensive
        pattern: critical path is bounded below by it."""
        g = assign_labels(powerlaw_graph(120, 3, seed=5), 2, seed=5)
        few = run_tlp_fsm(g, 8, max_edges=2, num_workers=2)
        many = run_tlp_fsm(g, 8, max_edges=2, num_workers=32)
        max_single_pattern_work = max(
            step.max_work for step in many.metrics.supersteps
        )
        assert max_single_pattern_work > 0
        # Critical path with many workers >= the heaviest single pattern.
        assert sum(s.max_work for s in many.metrics.supersteps) >= max_single_pattern_work

    def test_validation(self):
        with pytest.raises(ValueError):
            run_tlp_fsm(complete_graph(3), 0)
        with pytest.raises(ValueError):
            run_tlp_fsm(complete_graph(3), 1, num_workers=0)


class TestTlv:
    def oracle_frequent(self, graph, threshold, max_size):
        """Vertex-induced frequent patterns via ESU + induced MNI."""
        frequent = {}
        seen = set()
        for size in range(1, max_size + 1):
            for members in enumerate_connected_subgraphs(graph, size):
                from repro.core import VertexInducedEmbedding
                from repro.core.canonical import canonicalize_vertex_set

                words = canonicalize_vertex_set(graph, members)
                pattern = VertexInducedEmbedding(graph, words).pattern().canonical()
                if pattern in seen:
                    continue
                seen.add(pattern)
                support = exact_mni_support(graph, pattern, induced=True)
                if support >= threshold:
                    frequent[pattern] = support
        return frequent

    @pytest.mark.parametrize("workers", [1, 3])
    def test_finds_frequent_patterns(self, workers):
        g = assign_labels(gnm_random_graph(12, 24, seed=6), 2, seed=6)
        result = run_tlv_fsm(g, threshold=3, max_size=2, num_workers=workers)
        oracle = self.oracle_frequent(g, 3, 2)
        # TLV explores everything whose every prefix-pattern stays frequent;
        # at max_size=2 with threshold on singles this is exact.
        assert result.frequent == {
            p: s for p, s in oracle.items()
            if all(
                exact_mni_support(g, sub, induced=True) >= 3
                for sub in [p]
            )
        }

    def test_message_explosion_vs_arabesque(self):
        """The paradigm comparison of section 6.2: TLV sends orders of
        magnitude more messages than the TLE engine for the same job."""
        g = powerlaw_graph(80, 2, seed=7)
        tlv = run_tlv_fsm(g, threshold=1, max_size=4, num_workers=4)
        from repro.core import ArabesqueConfig

        tle = run_computation(
            g, MotifCounting(4), ArabesqueConfig(num_workers=4)
        )
        # The gap widens with depth and graph size (the paper reports three
        # orders of magnitude on CiteSeer FSM); at this miniature scale one
        # order of magnitude is already clear.
        assert tlv.metrics.total_messages > 10 * tle.metrics.total_messages

    def test_hotspot_imbalance(self):
        """A star graph concentrates expansion work on the hub's worker."""
        g = star_graph(30)
        result = run_tlv_fsm(g, threshold=1, max_size=3, num_workers=4)
        worst = max(step.imbalance() for step in result.metrics.supersteps
                    if step.work_units)
        assert worst > 2.0

    def test_worker_invariance_of_embedding_count(self):
        g = gnm_random_graph(15, 30, seed=8)
        counts = {
            workers: run_tlv_fsm(
                g, threshold=1, max_size=3, num_workers=workers
            ).embeddings_processed
            for workers in (1, 3)
        }
        assert counts[1] == counts[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_tlv_fsm(complete_graph(3), 0, 2)
        with pytest.raises(ValueError):
            run_tlv_fsm(complete_graph(3), 1, 0)
