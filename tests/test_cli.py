"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_graph, main
from repro.graph import write_edge_list, gnm_random_graph, assign_labels


@pytest.fixture
def edge_list_file(tmp_path):
    graph = assign_labels(gnm_random_graph(20, 40, seed=1), 3, seed=1)
    path = tmp_path / "toy.edges"
    write_edge_list(graph, path)
    return path


class TestLoadGraph:
    def test_dataset_name(self):
        graph = load_graph("citeseer", scale=0.1)
        assert graph.num_vertices == 331

    def test_dataset_default_scale(self):
        graph = load_graph("citeseer", scale=None)
        assert graph.num_vertices == 3312

    def test_file(self, edge_list_file):
        graph = load_graph(str(edge_list_file), scale=None)
        assert graph.num_vertices == 20

    def test_missing_spec(self):
        with pytest.raises(SystemExit):
            load_graph("no-such-thing", scale=None)


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "citeseer", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "citeseer-like" in out

    def test_motifs(self, capsys, edge_list_file):
        assert main(["motifs", str(edge_list_file), "--max-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "motif v=3" in out
        assert "processed=" in out

    def test_motifs_labeled_flag(self, capsys, edge_list_file):
        assert main(
            ["motifs", str(edge_list_file), "--max-size", "3", "--labeled"]
        ) == 0
        out = capsys.readouterr().out
        assert "motif" in out

    def test_cliques(self, capsys, edge_list_file):
        assert main(["cliques", str(edge_list_file), "--max-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "cliques" in out

    def test_cliques_maximal(self, capsys, edge_list_file):
        assert main(
            ["cliques", str(edge_list_file), "--max-size", "3", "--maximal"]
        ) == 0

    def test_cliques_verbose(self, capsys, edge_list_file):
        assert main(
            ["cliques", str(edge_list_file), "--max-size", "3",
             "--min-size", "2", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "size 2" in out

    def test_fsm(self, capsys, edge_list_file):
        assert main(
            ["fsm", str(edge_list_file), "--support", "3", "--max-edges", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "pattern labels=" in out

    def test_fsm_requires_support(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["fsm", str(edge_list_file)])

    def test_workers_flag(self, capsys, edge_list_file):
        assert main(
            ["motifs", str(edge_list_file), "--max-size", "3",
             "--workers", "4"]
        ) == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
