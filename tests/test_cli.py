"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_graph, main
from repro.graph import write_edge_list, gnm_random_graph, assign_labels


@pytest.fixture
def edge_list_file(tmp_path):
    graph = assign_labels(gnm_random_graph(20, 40, seed=1), 3, seed=1)
    path = tmp_path / "toy.edges"
    write_edge_list(graph, path)
    return path


class TestLoadGraph:
    def test_dataset_name(self):
        graph = load_graph("citeseer", scale=0.1)
        assert graph.num_vertices == 331

    def test_dataset_default_scale(self):
        graph = load_graph("citeseer", scale=None)
        assert graph.num_vertices == 3312

    def test_file(self, edge_list_file):
        graph = load_graph(str(edge_list_file), scale=None)
        assert graph.num_vertices == 20

    def test_missing_spec(self):
        with pytest.raises(SystemExit):
            load_graph("no-such-thing", scale=None)


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "citeseer", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "citeseer-like" in out

    def test_motifs(self, capsys, edge_list_file):
        assert main(["motifs", str(edge_list_file), "--max-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "motifs (guided)" in out  # DAG-guided is the default
        assert "dag: patterns=" in out
        assert "motif v=3" in out
        assert "processed=" in out

    def test_motifs_labeled_flag(self, capsys, edge_list_file):
        assert main(
            ["motifs", str(edge_list_file), "--max-size", "3", "--labeled"]
        ) == 0
        out = capsys.readouterr().out
        assert "motif" in out

    def test_motifs_exhaustive_round_trip(self, capsys, edge_list_file):
        """`motifs` and `motifs --exhaustive` print identical tables."""

        def motif_lines(args):
            assert main(args) == 0
            out = capsys.readouterr().out
            return [
                line for line in out.splitlines()
                if line.startswith("motif v=")
            ]

        base = ["motifs", str(edge_list_file), "--max-size", "3"]
        guided = motif_lines(base)
        exhaustive = motif_lines(base + ["--exhaustive"])
        assert guided == exhaustive and guided

    def test_motifs_guided_rejects_limit(self, capsys, edge_list_file):
        # --limit caps collected outputs, which guided motifs never
        # materialize — same loud facade error, clean exit.
        with pytest.raises(SystemExit, match="exhaustive"):
            main(
                ["motifs", str(edge_list_file), "--max-size", "3",
                 "--limit", "5"]
            )
        assert main(
            ["motifs", str(edge_list_file), "--max-size", "3",
             "--exhaustive", "--limit", "5"]
        ) == 0

    def test_motifs_guided_exhaustive_mutually_exclusive(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(
                ["motifs", str(edge_list_file), "--guided", "--exhaustive"]
            )

    def test_cliques(self, capsys, edge_list_file):
        assert main(["cliques", str(edge_list_file), "--max-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "cliques" in out

    def test_cliques_maximal(self, capsys, edge_list_file):
        assert main(
            ["cliques", str(edge_list_file), "--max-size", "3", "--maximal"]
        ) == 0

    def test_maximal_cliques_subcommand(self, capsys, edge_list_file):
        assert main(
            ["maximal-cliques", str(edge_list_file), "--max-size", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "maximal cliques" in out
        # Must agree with the equivalent `cliques --maximal` spelling.
        assert main(
            ["cliques", str(edge_list_file), "--max-size", "3",
             "--min-size", "1", "--maximal"]
        ) == 0
        via_flag = capsys.readouterr().out
        assert [l for l in out.splitlines() if l.startswith("size")] == \
            [l for l in via_flag.splitlines() if l.startswith("size")]

    def test_storage_flag(self, capsys, edge_list_file):
        for storage in ("odag", "list", "adaptive"):
            assert main(
                ["motifs", str(edge_list_file), "--max-size", "3",
                 "--storage", storage]
            ) == 0

    def test_unknown_storage_rejected(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["motifs", str(edge_list_file), "--storage", "bogus"])

    def test_cliques_verbose(self, capsys, edge_list_file):
        assert main(
            ["cliques", str(edge_list_file), "--max-size", "3",
             "--min-size", "2", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "size 2" in out

    def test_fsm(self, capsys, edge_list_file):
        assert main(
            ["fsm", str(edge_list_file), "--support", "3", "--max-edges", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fsm (guided)" in out
        assert "pattern labels=" in out

    def test_fsm_exhaustive_round_trip(self, capsys, edge_list_file):
        """`fsm` and `fsm --exhaustive` print the identical pattern table."""

        def pattern_lines(args):
            assert main(args) == 0
            out = capsys.readouterr().out
            return [
                line for line in out.splitlines()
                if line.startswith("pattern labels=")
            ]

        base = ["fsm", str(edge_list_file), "--support", "3",
                "--max-edges", "2"]
        guided = pattern_lines(base)
        exhaustive = pattern_lines(base + ["--exhaustive"])
        assert guided and guided == exhaustive

    def test_fsm_strategy_flags_conflict(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["fsm", str(edge_list_file), "--support", "3",
                  "--guided", "--exhaustive"])

    def test_fsm_requires_support(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["fsm", str(edge_list_file)])

    def test_workers_flag(self, capsys, edge_list_file):
        assert main(
            ["motifs", str(edge_list_file), "--max-size", "3",
             "--workers", "4"]
        ) == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMatchCommand:
    def _match_count(self, out: str) -> int:
        for line in out.splitlines():
            if " matches, " in line:
                return int(line.split(":")[-1].split("matches")[0].strip().replace(",", ""))
        raise AssertionError(f"no match-count line in {out!r}")

    def test_named_shape_guided_default(self, capsys, edge_list_file):
        # The facade made guided execution the transparent default; the
        # CLI mirrors it and prints the compiled plan.
        assert main(["match", str(edge_list_file), "triangle"]) == 0
        out = capsys.readouterr().out
        assert "guided" in out
        assert "plan: order=" in out

    def test_exhaustive_opt_out(self, capsys, edge_list_file):
        assert main(
            ["match", str(edge_list_file), "triangle", "--exhaustive"]
        ) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out
        assert "plan:" not in out

    def test_guided_prints_plan_and_agrees_with_exhaustive(
        self, capsys, edge_list_file
    ):
        assert main(["match", str(edge_list_file), "square", "--guided"]) == 0
        guided_out = capsys.readouterr().out
        assert "plan: order=" in guided_out
        assert "|Aut|=" in guided_out
        assert main(["match", str(edge_list_file), "square", "--exhaustive"]) == 0
        exhaustive_out = capsys.readouterr().out
        assert self._match_count(guided_out) == self._match_count(exhaustive_out)

    def test_explain_prints_cost_report(self, capsys, edge_list_file):
        assert main(
            ["match", str(edge_list_file), "wedge", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "graph: V=" in out
        assert "winner=" in out
        assert "reason:" in out
        assert "step 0" in out

    def test_explain_skewed_reports_cost_win(self, capsys):
        # The bundled adversarial dataset is where the cost model beats
        # the degree heuristic — the report must say so.
        assert main(["match", "skewed", "triangle", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "winner=" in out

    def test_monomorphic_semantics(self, capsys, edge_list_file):
        assert main(
            ["match", str(edge_list_file), "wedge", "--guided", "--monomorphic"]
        ) == 0
        out = capsys.readouterr().out
        assert "monomorphic" in out

    def test_verbose_lists_matches(self, capsys, edge_list_file):
        assert main(
            ["match", str(edge_list_file), "edge", "--guided", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "(0," in out or "(1," in out

    def test_pattern_file_query(self, capsys, tmp_path, edge_list_file):
        pattern_file = tmp_path / "wedge.pattern"
        pattern_file.write_text("# a wedge\n0 1\n1 2\n")
        assert main(
            ["match", str(edge_list_file), str(pattern_file), "--guided"]
        ) == 0
        file_out = capsys.readouterr().out
        assert main(["match", str(edge_list_file), "wedge", "--guided"]) == 0
        named_out = capsys.readouterr().out
        assert self._match_count(file_out) == self._match_count(named_out)

    def test_unknown_query_rejected(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["match", str(edge_list_file), "not-a-shape"])

    def test_labeled_query_without_labeled_flag_rejected(
        self, tmp_path, edge_list_file
    ):
        # Graph labels are stripped by default; a labeled query would
        # silently match nothing, so it must be refused instead.
        pattern_file = tmp_path / "labeled.pattern"
        pattern_file.write_text("v 0 1\n0 1\n1 2\n")
        with pytest.raises(SystemExit, match="labeled"):
            main(["match", str(edge_list_file), str(pattern_file)])
        # With --labeled the same query runs (match count depends on the
        # graph's actual labels).
        assert main(
            ["match", str(edge_list_file), str(pattern_file), "--labeled"]
        ) == 0

    def test_directory_query_rejected_cleanly(self, tmp_path, edge_list_file):
        # A directory passes Path.exists() but not is_file(); must exit
        # cleanly, not dump an IsADirectoryError traceback.
        with pytest.raises(SystemExit):
            main(["match", str(edge_list_file), str(tmp_path)])

    @pytest.mark.parametrize("mode_flag", ["--exhaustive", "--guided"])
    def test_disconnected_query_rejected_cleanly(
        self, tmp_path, edge_list_file, mode_flag
    ):
        # Connected exploration cannot find disconnected occurrences; both
        # modes must refuse instead of confidently reporting 0 matches.
        pattern_file = tmp_path / "disconnected.pattern"
        pattern_file.write_text("0 1\n2 3\n")
        with pytest.raises(SystemExit, match="connected"):
            main(["match", str(edge_list_file), str(pattern_file), mode_flag])

    def test_guided_and_exhaustive_flags_conflict(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["match", str(edge_list_file), "triangle",
                  "--guided", "--exhaustive"])

    def test_match_with_workers_and_backend(self, capsys, edge_list_file):
        assert main(
            ["match", str(edge_list_file), "triangle", "--guided",
             "--num-workers", "3", "--backend", "thread"]
        ) == 0
