"""Tests for MNI domains and support, cross-validated against VF2."""

import pytest

from repro.apps import Domain
from repro.core import EdgeInducedEmbedding, Pattern, VertexInducedEmbedding
from repro.graph import assign_labels, gnm_random_graph, graph_from_edges, graph_from_string
from repro.isomorphism import find_isomorphisms


class TestDomainBasics:
    def test_from_vertex_embedding(self):
        g = graph_from_edges([(0, 1), (1, 2)], vertex_labels=[1, 2, 1])
        d = Domain.from_embedding(VertexInducedEmbedding(g, (1, 0)))
        assert d.arity == 2
        assert d.position_images(0) == frozenset({1})
        assert d.position_images(1) == frozenset({0})

    def test_from_edge_embedding_first_seen_order(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        d = Domain.from_embedding(EdgeInducedEmbedding(g, (1, 0)))
        # Edge 1=(1,2) first: vertices 1,2 then 0.
        assert d.position_images(0) == frozenset({1})
        assert d.position_images(1) == frozenset({2})
        assert d.position_images(2) == frozenset({0})

    def test_merge_all_unions(self):
        a = Domain([frozenset({1}), frozenset({2})])
        b = Domain([frozenset({3}), frozenset({2})])
        merged = Domain.merge_all([a, b])
        assert merged.position_images(0) == frozenset({1, 3})
        assert merged.position_images(1) == frozenset({2})

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValueError):
            Domain.merge_all([])

    def test_merge_all_rejects_arity_mismatch(self):
        a = Domain([frozenset({1})])
        b = Domain([frozenset({1}), frozenset({2})])
        with pytest.raises(ValueError):
            Domain.merge_all([a, b])

    def test_remap_positions(self):
        d = Domain([frozenset({10}), frozenset({20}), frozenset({30})])
        remapped = d.remap_positions((2, 0, 1))
        assert remapped.position_images(2) == frozenset({10})
        assert remapped.position_images(0) == frozenset({20})
        assert remapped.position_images(1) == frozenset({30})

    def test_remap_rejects_bad_arity(self):
        d = Domain([frozenset({1})])
        with pytest.raises(ValueError):
            d.remap_positions((0, 1))

    def test_support_without_orbits(self):
        d = Domain([frozenset({1, 2, 3}), frozenset({4})])
        assert d.support() == 1

    def test_support_empty(self):
        assert Domain([]).support() == 0

    def test_equality_and_wire_size(self):
        a = Domain([frozenset({1, 2})])
        b = Domain([frozenset({2, 1})])
        assert a == b
        assert a.wire_size() == 4 + 4 + 8


class TestOrbitFolding:
    def test_paper_figure2_example(self):
        """Figure 2: pattern blue-yellow-blue on the 5-vertex graph; the top
        blue vertex maps to 1 in one embedding and 3 in the other, so with
        orbit folding both blue positions see {1, 3}."""
        # Graph of Figure 2: vertices 1..5 -> labels blue=1 (1,3,4?), per
        # paper: 1 blue, 2 yellow, 3 blue, 4 yellow, 5 blue (colors from the
        # figure); edges (1,2),(2,3),(3,4),(1,3).  We keep just what the
        # example needs: embeddings {(1,2),(2,3)} for pattern B-Y-B.
        g = graph_from_string(
            """
            v 1 1
            v 2 2
            v 3 1
            1 2
            2 3
            """
        )
        # vertex names map to dense ids 0,1,2 in declaration order.
        e = EdgeInducedEmbedding(g, (0, 1))  # edges (1,2),(2,3)
        d1 = Domain.from_embedding(e)
        # Reversed traversal of the automorphic embedding.
        d2 = d1.remap_positions((2, 1, 0))
        merged = Domain.merge_all([d1, d2])
        orbits = (0, 1, 0)  # ends share an orbit
        # Without orbits the min is 1 per end; with folding ends see both.
        assert merged.support() == 1
        assert merged.support(orbits) == 1  # yellow middle has domain {2}... size 1
        folded_end = merged.position_images(0) | merged.position_images(2)
        assert folded_end == frozenset({0, 2})

    def test_support_matches_vf2_bruteforce(self):
        """MNI via domains == MNI via enumerating all VF2 isomorphisms."""
        g = assign_labels(gnm_random_graph(30, 60, seed=11), 2, seed=3)
        pattern = Pattern((0, 1), ((0, 1, 0),))
        mappings = find_isomorphisms(
            pattern.vertex_labels, pattern.edge_dict(), g
        )
        if not mappings:
            pytest.skip("no single-edge 0-1 pattern in this graph")
        brute_domains = [set(), set()]
        for mapping in mappings:
            brute_domains[0].add(mapping[0])
            brute_domains[1].add(mapping[1])
        brute_support = min(len(s) for s in brute_domains)
        # Domain built from distinct embeddings with canonical orientation +
        # orbit folding must agree.
        domains = []
        seen = set()
        for mapping in mappings:
            key = frozenset(mapping)
            if key in seen:
                continue
            seen.add(key)
            domains.append(Domain([frozenset({mapping[0]}), frozenset({mapping[1]})]))
        merged = Domain.merge_all(domains)
        orbits = pattern.orbits()
        assert merged.support(orbits) == brute_support

    def test_symmetric_pattern_needs_orbit_folding(self):
        """Unlabeled single-edge pattern: one arbitrary orientation per
        embedding under-counts; orbit folding recovers the VF2 answer."""
        g = gnm_random_graph(25, 50, seed=4)
        pattern = Pattern((0, 0), ((0, 1, 0),))
        mappings = find_isomorphisms(pattern.vertex_labels, pattern.edge_dict(), g)
        brute = [set(), set()]
        for mapping in mappings:
            brute[0].add(mapping[0])
            brute[1].add(mapping[1])
        brute_support = min(len(s) for s in brute)
        domains = []
        seen = set()
        for mapping in mappings:
            key = frozenset(mapping)
            if key in seen:
                continue
            seen.add(key)
            domains.append(
                Domain([frozenset({mapping[0]}), frozenset({mapping[1]})])
            )
        merged = Domain.merge_all(domains)
        assert merged.support(pattern.orbits()) == brute_support
