"""Tests for embedding canonicality (Algorithm 2 and Definition 1).

The two theorems of the paper's appendix are checked as properties:
uniqueness (exactly one canonical word order per automorphism class) and
extendibility (canonical children of canonical parents cover everything).
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    canonicalize_edge_set,
    canonicalize_vertex_set,
    is_canonical_edge_extension,
    is_canonical_edge_words,
    is_canonical_vertex_extension,
    is_canonical_vertex_words,
)
from repro.graph import LabeledGraph, complete_graph, gnm_random_graph, path_graph


class TestVertexExtension:
    def test_first_word_always_canonical(self):
        g = path_graph(3)
        assert is_canonical_vertex_extension(g, (), 2)

    def test_smaller_first_vertex_required(self):
        g = path_graph(3)
        # <1, 0> violates P1 (0 < 1 should come first).
        assert not is_canonical_vertex_extension(g, (1,), 0)
        assert is_canonical_vertex_extension(g, (0,), 1)

    def test_disconnected_extension_rejected(self):
        g = LabeledGraph([0] * 4, [(0, 1), (2, 3)])
        # 2 has no neighbor among {0,1}: P2 violated.
        assert not is_canonical_vertex_extension(g, (0, 1), 2)

    def test_p3_violation(self):
        # Star 0-1, 0-2, 0-3: <0,3,1>: 1's first neighbor is 0 (position 0);
        # vertex 3 at position 1 exceeds 1 -> not canonical.
        g = LabeledGraph([0] * 4, [(0, 1), (0, 2), (0, 3)])
        assert not is_canonical_vertex_extension(g, (0, 3), 1)
        assert is_canonical_vertex_extension(g, (0, 1), 3)

    def test_smaller_late_vertex_allowed_when_neighbor_late(self):
        # Path 1-2-0 (vertex ids): <1,2,0> — 0's first neighbor is 2 at
        # position 1; no vertex after position 1 — canonical despite 0 < 1?
        # No: P1 requires the first word to be the smallest overall.
        g = LabeledGraph([0] * 3, [(1, 2), (0, 2)])
        assert not is_canonical_vertex_extension(g, (1, 2), 0)

    def test_paper_example_triangle_star(self):
        # Figure 5's graph: edges 1-3, 2-3, 2-4, 3-4, 4-5 (ids as drawn).
        g = LabeledGraph(
            [0] * 6, [(1, 3), (2, 3), (2, 4), (3, 4), (4, 5)]
        )
        canonical_words = {(1, 3, 2), (1, 3, 4), (2, 3, 4), (2, 4, 5), (3, 4, 5)}
        # The paper lists <1,4,...> with 1-4 adjacency through... vertex 1
        # connects only to 3 in this rendering, so enumerate directly:
        size3 = set()
        vertices = range(6)
        for combo in itertools.combinations(vertices, 3):
            if g.is_connected_vertex_set(combo):
                size3.add(canonicalize_vertex_set(g, combo))
        for words in size3:
            assert is_canonical_vertex_words(g, words)


class TestVertexUniquenessProperty:
    def _all_orders(self, vertex_set):
        return itertools.permutations(vertex_set)

    def test_exactly_one_canonical_order_per_set(self):
        g = gnm_random_graph(12, 26, seed=3)
        for combo in itertools.combinations(range(12), 3):
            if not g.is_connected_vertex_set(combo):
                continue
            canonical_orders = [
                words
                for words in self._all_orders(combo)
                if is_canonical_vertex_words(g, words)
            ]
            assert len(canonical_orders) == 1
            assert canonical_orders[0] == canonicalize_vertex_set(g, combo)

    def test_canonicalize_rejects_disconnected(self):
        g = LabeledGraph([0] * 4, [(0, 1), (2, 3)])
        try:
            canonicalize_vertex_set(g, [0, 2])
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError for disconnected set")

    def test_empty_set(self):
        g = path_graph(2)
        assert canonicalize_vertex_set(g, []) == ()


class TestVertexExtendibilityProperty:
    def test_every_canonical_child_reachable(self):
        """Extendibility: the canonical order of any connected (k+1)-set
        extends the canonical order of one of its connected k-subsets."""
        g = gnm_random_graph(10, 20, seed=7)
        for combo in itertools.combinations(range(10), 4):
            if not g.is_connected_vertex_set(combo):
                continue
            words = canonicalize_vertex_set(g, combo)
            parent = words[:-1]
            assert is_canonical_vertex_words(g, parent)
            assert g.is_connected_vertex_set(parent)
            assert is_canonical_vertex_extension(g, parent, words[-1])


class TestEdgeExtension:
    def test_first_edge_always_canonical(self):
        g = path_graph(4)
        assert is_canonical_edge_extension(g, (), 2)

    def test_smallest_edge_first(self):
        g = path_graph(4)  # edges 0:(0,1) 1:(1,2) 2:(2,3)
        assert is_canonical_edge_extension(g, (0,), 1)
        assert not is_canonical_edge_extension(g, (1,), 0)

    def test_disconnected_edge_rejected(self):
        g = path_graph(4)
        # edge 2 (2,3) does not touch edge 0 (0,1).
        assert not is_canonical_edge_extension(g, (0,), 2)

    def test_uniqueness_over_edge_sets(self):
        g = gnm_random_graph(8, 14, seed=5)

        def connected_edge_set(edge_ids):
            span = {}
            parent = {}

            def find(x):
                while parent.get(x, x) != x:
                    parent[x] = parent.get(parent[x], parent[x])
                    x = parent[x]
                return x

            for eid in edge_ids:
                u, v = g.edge_endpoints(eid)
                parent.setdefault(u, u)
                parent.setdefault(v, v)
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[ru] = rv
            roots = {find(x) for x in parent}
            return len(roots) == 1

        for combo in itertools.combinations(range(g.num_edges), 3):
            if not connected_edge_set(combo):
                continue
            canonical_orders = [
                words
                for words in itertools.permutations(combo)
                if is_canonical_edge_words(g, words)
            ]
            assert len(canonical_orders) == 1
            assert canonical_orders[0] == canonicalize_edge_set(g, combo)

    def test_canonicalize_edge_set_empty(self):
        assert canonicalize_edge_set(path_graph(3), []) == ()

    def test_canonicalize_edge_set_disconnected(self):
        g = path_graph(5)
        try:
            canonicalize_edge_set(g, [0, 3])
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


@given(seed=st.integers(0, 5000), size=st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_property_unique_canonical_order(seed, size):
    """Uniqueness on random graphs: every connected vertex set sampled from
    a random walk admits exactly one canonical permutation."""
    rng = random.Random(seed)
    g = gnm_random_graph(12, 24, seed=seed % 100)
    # Random connected set via a walk.
    start = rng.randrange(12)
    members = {start}
    frontier = list(g.neighbors(start))
    while len(members) < size and frontier:
        nxt = rng.choice(frontier)
        members.add(nxt)
        frontier = [
            u for v in members for u in g.neighbors(v) if u not in members
        ]
    if len(members) < size:
        return  # isolated region; nothing to test
    canonical_orders = [
        words
        for words in itertools.permutations(members)
        if is_canonical_vertex_words(g, words)
    ]
    assert len(canonical_orders) == 1


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_property_complete_graph_canonical_is_sorted(seed):
    """In K_n every vertex set is connected and the canonical order is the
    ascending sort (smallest first, then smallest neighbor, ...)."""
    rng = random.Random(seed)
    g = complete_graph(8)
    size = rng.randint(1, 5)
    members = rng.sample(range(8), size)
    assert canonicalize_vertex_set(g, members) == tuple(sorted(members))
