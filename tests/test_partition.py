"""Tests for the load-balancing analysis utilities (section 5.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    OdagStore,
    Pattern,
    PartitionReport,
    block_round_robin_assignment,
    measure_partition,
)

UNLABELED_P3 = Pattern((0, 0, 0), ((0, 1, 0), (1, 2, 0)))


def random_store(seed: int, size: int = 3, universe: int = 20) -> OdagStore:
    rng = random.Random(seed)
    store = OdagStore()
    for _ in range(rng.randint(1, 60)):
        store.add(UNLABELED_P3, tuple(rng.sample(range(universe), size)))
    return store


class TestPartitionReport:
    def test_totals(self):
        report = PartitionReport(num_workers=3, shares=(4, 5, 3))
        assert report.total == 12
        assert report.max_share == 5

    def test_imbalance(self):
        report = PartitionReport(num_workers=2, shares=(9, 3))
        assert report.imbalance() == pytest.approx(9 / 6)

    def test_imbalance_empty(self):
        assert PartitionReport(num_workers=2, shares=(0, 0)).imbalance() == 1.0
        assert PartitionReport(num_workers=0, shares=()).imbalance() == 1.0


class TestMeasurePartition:
    def test_shares_cover_store(self):
        store = random_store(1)
        report = measure_partition(store, 4)
        assert report.total == sum(
            1 for _ in store.extract_partition(0, 1)
        )

    def test_single_worker_gets_everything(self):
        store = random_store(2)
        report = measure_partition(store, 1)
        assert report.shares == (report.total,)

    def test_balance_reasonable(self):
        store = random_store(3)
        report = measure_partition(store, 4)
        if report.total >= 8:
            assert report.imbalance() < 2.5

    def test_detects_dropped_embeddings(self):
        class LossyStore(OdagStore):
            def extract_partition(self, worker, num_workers, prefix_filter=None):
                rows = list(
                    super().extract_partition(worker, num_workers, prefix_filter)
                )
                return rows[1:] if num_workers > 1 and worker == 0 else rows

        store = random_store(4)
        # baseline: the honest store passes
        measure_partition(store, 3)
        lossy = LossyStore()
        lossy.merge(store)
        with pytest.raises(ValueError, match="partition invariant violated"):
            measure_partition(lossy, 3)

    def test_detects_duplicated_embeddings(self):
        class DupStore(OdagStore):
            def extract_partition(self, worker, num_workers, prefix_filter=None):
                rows = list(
                    super().extract_partition(worker, num_workers, prefix_filter)
                )
                if num_workers > 1 and worker == 1 and rows:
                    return rows + rows[:1]
                return rows

        dup = DupStore()
        dup.merge(random_store(5))
        with pytest.raises(ValueError, match="partition invariant violated"):
            measure_partition(dup, 3)


class TestBlockRoundRobin:
    def test_assignment_pattern(self):
        owners = block_round_robin_assignment(total=8, num_workers=2, block=2)
        assert owners == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_block_one_is_pure_round_robin(self):
        owners = block_round_robin_assignment(total=5, num_workers=3, block=1)
        assert owners == [0, 1, 2, 0, 1]

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            block_round_robin_assignment(4, 2, block=0)

    def test_every_index_owned(self):
        owners = block_round_robin_assignment(total=100, num_workers=7, block=4)
        assert len(owners) == 100
        assert set(owners) <= set(range(7))

    def test_blocks_spread_evenly(self):
        owners = block_round_robin_assignment(total=700, num_workers=7, block=10)
        counts = [owners.count(w) for w in range(7)]
        assert max(counts) - min(counts) <= 10  # at most one block apart


@given(seed=st.integers(0, 2000), workers=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_property_partition_exact_on_random_stores(seed, workers):
    """measure_partition validates the no-loss/no-dup invariant by summing
    per-worker extraction counts against the full extraction."""
    store = random_store(seed)
    report = measure_partition(store, workers)
    full = sum(1 for _ in store.extract_partition(0, 1))
    assert report.total == full
