"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    DATASETS,
    PAPER_TABLE1,
    citeseer_like,
    dataset_statistics,
    instagram_like,
    mico_like,
    patents_like,
    scale_free_graph,
    sn_like,
    youtube_like,
)


class TestScaleFree:
    def test_edge_target_roughly_hit(self):
        g = scale_free_graph(500, 1500, seed=1)
        assert 0.9 * 1500 <= g.num_edges <= 1500

    def test_deterministic(self):
        assert scale_free_graph(200, 500, seed=5) == scale_free_graph(200, 500, seed=5)

    def test_heavy_tail(self):
        g = scale_free_graph(800, 2400, seed=2)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_free_graph(1, 5)


class TestGenerators:
    def test_citeseer_full_scale_matches_paper(self):
        g = citeseer_like()
        paper = PAPER_TABLE1["citeseer"]
        assert g.num_vertices == paper.vertices
        assert abs(g.num_edges - paper.edges) / paper.edges < 0.1
        assert g.num_vertex_labels == paper.labels

    @pytest.mark.parametrize(
        "factory,paper_key,label_count",
        [
            (mico_like, "mico", 29),
            (patents_like, "patents", 37),
            (youtube_like, "youtube", 80),
        ],
    )
    def test_labeled_generators(self, factory, paper_key, label_count):
        g = factory()
        paper = PAPER_TABLE1[paper_key]
        assert g.num_vertex_labels == label_count
        # Average degree within 2x of the paper's (downscaling tolerance).
        assert g.average_degree() > paper.average_degree / 3

    def test_sn_is_dense_and_unlabeled(self):
        g = sn_like()
        assert g.num_vertex_labels == 1
        assert g.average_degree() > 15

    def test_instagram_is_sparse_and_unlabeled(self):
        g = instagram_like()
        assert g.num_vertex_labels == 1
        assert 5 <= g.average_degree() <= 12

    def test_all_deterministic(self):
        for name, factory in DATASETS.items():
            assert factory() == factory(), name

    def test_scaling_parameter(self):
        small = mico_like(scale=0.01)
        large = mico_like(scale=0.02)
        assert large.num_vertices > small.num_vertices
        assert large.num_edges > small.num_edges


class TestStatistics:
    def test_statistics_row(self):
        g = citeseer_like()
        stats = dataset_statistics(g)
        assert stats.vertices == g.num_vertices
        assert stats.average_degree == pytest.approx(g.average_degree())
        assert "citeseer-like" in stats.row()

    def test_paper_table_complete(self):
        # Every Table 1 dataset has a generator; the registry may carry
        # extra non-paper fixtures (the adversarial "skewed" graph).
        assert set(PAPER_TABLE1) <= set(DATASETS)
        assert "skewed" in DATASETS
