"""The pattern-aware exploration planner (repro.plan).

Four layers of validation:

* **planner** — structural invariants of compiled plans (connected order,
  every earlier position accounted for as back-edge or back-non-edge,
  restrictions baked into the right steps, picklability);
* **symmetry** — the Grochow-Kellis soundness invariant, property-style:
  (#matches satisfying the restrictions) x |Aut(P)| == #unrestricted
  monomorphisms, with VF2 enumerating the mappings;
* **cross-validation** — guided matching returns the identical match
  multiset as the exhaustive filter-process oracle AND a direct VF2
  oracle, on every bundled dataset and on a hypothesis random sweep,
  under both induced and monomorphic semantics;
* **determinism** — guided runs are byte-identical across backends,
  worker counts, and storage modes, like exhaustive ones.
"""

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    GuidedMatching,
    MotifCounting,
    match_vertex_sets,
    motif_counts,
    run_matching,
    single_motif_count,
)
from repro.core import ArabesqueConfig, Pattern, run_computation
from repro.datasets import DATASETS
from repro.graph import (
    LabeledGraph,
    assign_labels,
    gnm_random_graph,
    strip_labels,
)
from repro.isomorphism import SubgraphMatcher, distinct_embeddings
from repro.plan import (
    NAMED_SHAPES,
    PlanError,
    compile_plan,
    guided_candidates,
    guided_extension_check,
    match_mapping,
    pattern_automorphisms,
    read_pattern_file,
    satisfies_restrictions,
    symmetry_breaking_restrictions,
)

#: Scales keeping every bundled dataset in the few-hundred-vertex range so
#: the exhaustive oracle stays fast.
DATASET_SCALES = {
    "citeseer": 0.1,
    "mico": 0.004,
    "patents": 0.0002,
    "youtube": 0.0001,
    "sn": 0.0001,
    "instagram": 1 / 300_000,
}


def pattern_of_graph(graph: LabeledGraph) -> Pattern:
    """A pattern structurally identical to a (small) graph."""
    return Pattern(
        graph.vertex_labels,
        tuple(
            sorted(
                (u, v, graph.edge_label(eid)) for eid, u, v in graph.edge_iter()
            )
        ),
    )


def random_connected_pattern(seed: int, max_vertices: int = 5, labels: int = 1) -> Pattern:
    """A random connected pattern with 2..max_vertices vertices."""
    rng = random.Random(seed)
    for attempt in range(100):
        n = rng.randint(2, max_vertices)
        max_edges = n * (n - 1) // 2
        m = rng.randint(n - 1, max_edges)
        candidate = gnm_random_graph(n, m, seed=seed + 7919 * attempt)
        if labels > 1:
            candidate = assign_labels(candidate, labels, seed=seed + 13)
        if candidate.is_connected_vertex_set(tuple(candidate.vertices())):
            return pattern_of_graph(candidate)
    raise AssertionError("no connected pattern found (generator bug)")


def monomorphism_images(query: Pattern, graph: LabeledGraph) -> set[frozenset]:
    """VF2 oracle: distinct edge images of all monomorphisms."""
    matcher = SubgraphMatcher(
        query.vertex_labels, query.edge_dict(), graph, induced=False
    )
    images = set()
    for mapping in matcher.match_iter():
        images.add(
            frozenset(
                (min(mapping[u], mapping[v]), max(mapping[u], mapping[v]))
                for u, v, _ in query.edges
            )
        )
    return images


# ----------------------------------------------------------------------
# Planner structure
# ----------------------------------------------------------------------
class TestPlanner:
    def test_order_is_connected_and_complete(self):
        for name, shape in NAMED_SHAPES.items():
            plan = compile_plan(shape)
            assert sorted(plan.order) == list(range(shape.num_vertices)), name
            # Every step after the first touches an earlier position.
            for step in plan.steps[1:]:
                assert step.back_edges, (name, step)

    def test_steps_partition_earlier_positions(self):
        for shape in NAMED_SHAPES.values():
            plan = compile_plan(shape)
            for step in plan.steps:
                back = {position for position, _ in step.back_edges}
                non = set(step.back_non_edges)
                assert back | non == set(range(step.position))
                assert not back & non

    def test_first_step_matches_highest_degree_vertex(self):
        plan = compile_plan(NAMED_SHAPES["star3"])
        degree = {0: 3, 1: 1, 2: 1, 3: 1}
        assert degree[plan.order[0]] == 3

    def test_restrictions_attached_to_later_position(self):
        plan = compile_plan(NAMED_SHAPES["triangle"])
        # Triangle: all three positions interchangeable -> words strictly
        # increasing; each step must exceed every earlier position.
        for step in plan.steps:
            assert step.must_exceed == tuple(range(step.position))
            assert step.must_precede == ()

    def test_rigid_pattern_has_no_restrictions(self):
        # A labeled path 1-2-3 with distinct labels is rigid.
        rigid = Pattern((1, 2, 3), ((0, 1, 0), (1, 2, 0)))
        plan = compile_plan(rigid)
        assert plan.restrictions == ()
        assert plan.num_automorphisms == 1

    def test_empty_and_disconnected_rejected(self):
        with pytest.raises(PlanError):
            compile_plan(Pattern((), ()))
        with pytest.raises(PlanError):
            compile_plan(Pattern((0, 0), ()))

    def test_plan_is_picklable(self):
        plan = compile_plan(NAMED_SHAPES["house"], induced=False)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_describe_mentions_order_and_automorphisms(self):
        text = compile_plan(NAMED_SHAPES["square"]).describe()
        assert "order=" in text and "|Aut|=8" in text

    def test_match_mapping_inverts_order(self):
        plan = compile_plan(NAMED_SHAPES["wedge"])
        words = tuple(100 + position for position in range(plan.num_steps))
        mapping = match_mapping(plan, words)
        for position, vertex in enumerate(plan.order):
            assert mapping[vertex] == words[position]
        with pytest.raises(ValueError):
            match_mapping(plan, words[:-1])

    def test_guided_candidates_drawn_from_anchor_neighborhood(self):
        graph = strip_labels(gnm_random_graph(20, 50, seed=5))
        plan = compile_plan(NAMED_SHAPES["triangle"])
        words = None
        for v in graph.vertices():
            for u in graph.neighbors(v):
                if u > v:
                    words = (v, u)
                    break
            if words:
                break
        pool = set(guided_candidates(plan, graph, words))
        assert pool <= set(graph.neighbors(words[0])) | set(
            graph.neighbors(words[1])
        )
        for w in pool:
            if guided_extension_check(plan, graph, words, w):
                assert graph.adjacent(w, words[0]) and graph.adjacent(w, words[1])
                assert w > words[1]


# ----------------------------------------------------------------------
# Symmetry breaking soundness
# ----------------------------------------------------------------------
class TestSymmetry:
    @pytest.mark.parametrize(
        "name,expected_aut",
        [("edge", 2), ("wedge", 2), ("triangle", 6), ("square", 8),
         ("star3", 6), ("clique4", 24), ("path3", 2), ("diamond", 4)],
    )
    def test_automorphism_counts(self, name, expected_aut):
        restrictions, num_automorphisms = symmetry_breaking_restrictions(
            NAMED_SHAPES[name]
        )
        assert num_automorphisms == expected_aut
        assert len(pattern_automorphisms(NAMED_SHAPES[name])) == expected_aut
        if expected_aut == 1:
            assert restrictions == ()

    @given(pattern_seed=st.integers(0, 2000), graph_seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_restrictions_sound_on_random_patterns(self, pattern_seed, graph_seed):
        """(#restricted matches) x |Aut| == #unrestricted monomorphisms."""
        query = random_connected_pattern(pattern_seed, max_vertices=5)
        graph = strip_labels(gnm_random_graph(9, random.Random(graph_seed).randint(8, 30), seed=graph_seed))
        restrictions, num_automorphisms = symmetry_breaking_restrictions(query)
        matcher = SubgraphMatcher(
            query.vertex_labels, query.edge_dict(), graph, induced=False
        )
        mappings = list(matcher.match_iter())
        restricted = [
            m for m in mappings if satisfies_restrictions(m, restrictions)
        ]
        assert len(restricted) * num_automorphisms == len(mappings)

    @given(pattern_seed=st.integers(0, 2000), graph_seed=st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_restrictions_sound_with_labels(self, pattern_seed, graph_seed):
        query = random_connected_pattern(pattern_seed, max_vertices=4, labels=2)
        graph = assign_labels(
            gnm_random_graph(8, random.Random(graph_seed).randint(7, 24), seed=graph_seed),
            2,
            seed=graph_seed + 1,
        )
        restrictions, num_automorphisms = symmetry_breaking_restrictions(query)
        matcher = SubgraphMatcher(
            query.vertex_labels, query.edge_dict(), graph, induced=True
        )
        mappings = list(matcher.match_iter())
        restricted = [
            m for m in mappings if satisfies_restrictions(m, restrictions)
        ]
        assert len(restricted) * num_automorphisms == len(mappings)


# ----------------------------------------------------------------------
# Guided == exhaustive == VF2 oracle
# ----------------------------------------------------------------------
class TestCrossValidation:
    @pytest.mark.parametrize("dataset", sorted(DATASET_SCALES))
    def test_triangle_on_every_bundled_dataset(self, dataset):
        graph = strip_labels(DATASETS[dataset](scale=DATASET_SCALES[dataset]))
        query = NAMED_SHAPES["triangle"]
        exhaustive = run_matching(graph, query, induced=True, guided=False)
        guided = run_matching(graph, query, induced=True, guided=True)
        assert match_vertex_sets(exhaustive) == match_vertex_sets(guided)
        assert exhaustive.num_outputs == guided.num_outputs
        oracle = distinct_embeddings(
            query.vertex_labels, query.edge_dict(), graph, induced=True
        )
        assert {tuple(sorted(s)) for s in oracle} == set(
            match_vertex_sets(guided)
        )
        assert len(oracle) == guided.num_outputs

    @pytest.mark.parametrize("shape", ["wedge", "square", "diamond", "clique4"])
    @pytest.mark.parametrize("induced", [True, False])
    def test_shapes_on_citeseer(self, shape, induced):
        graph = strip_labels(DATASETS["citeseer"](scale=0.1))
        query = NAMED_SHAPES[shape]
        exhaustive = run_matching(graph, query, induced=induced, guided=False)
        guided = run_matching(graph, query, induced=induced, guided=True)
        assert match_vertex_sets(exhaustive) == match_vertex_sets(guided)
        if induced:
            oracle_count = len(
                distinct_embeddings(
                    query.vertex_labels, query.edge_dict(), graph, induced=True
                )
            )
        else:
            oracle_count = len(monomorphism_images(query, graph))
        assert guided.num_outputs == oracle_count

    @given(seed=st.integers(0, 4000))
    @settings(max_examples=30, deadline=None)
    def test_random_graph_sweep(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 12)
        m = rng.randint(n - 1, min(n * (n - 1) // 2, 3 * n))
        graph = assign_labels(gnm_random_graph(n, m, seed=seed), 2, seed=seed + 1)
        query = random_connected_pattern(seed + 2, max_vertices=4, labels=2)
        induced = bool(seed % 2)
        exhaustive = run_matching(graph, query, induced=induced, guided=False)
        guided = run_matching(graph, query, induced=induced, guided=True)
        assert match_vertex_sets(exhaustive) == match_vertex_sets(guided)
        if induced:
            oracle_count = len(
                distinct_embeddings(
                    query.vertex_labels, query.edge_dict(), graph, induced=True
                )
            )
        else:
            oracle_count = len(monomorphism_images(query, graph))
        assert guided.num_outputs == oracle_count

    def test_single_vertex_query(self):
        graph = assign_labels(gnm_random_graph(12, 20, seed=9), 3, seed=2)
        label = graph.vertex_label(0)
        query = Pattern((label,), ())
        guided = run_matching(graph, query, induced=True, guided=True)
        exhaustive = run_matching(graph, query, induced=True, guided=False)
        expected = sorted(
            (v,) for v in graph.vertices() if graph.vertex_label(v) == label
        )
        assert match_vertex_sets(guided) == expected
        assert match_vertex_sets(exhaustive) == expected

    def test_single_motif_count_agrees_with_motif_distribution(self):
        graph = strip_labels(gnm_random_graph(25, 60, seed=17))
        distribution = motif_counts(
            run_computation(graph, MotifCounting(4), ArabesqueConfig())
        )
        for name in ("triangle", "wedge", "square", "diamond"):
            canonical = NAMED_SHAPES[name].canonical()
            expected = distribution.get(canonical, 0)
            assert single_motif_count(graph, NAMED_SHAPES[name]) == expected
            assert (
                single_motif_count(graph, NAMED_SHAPES[name], guided=False)
                == expected
            )


# ----------------------------------------------------------------------
# Determinism across backends / workers / storage
# ----------------------------------------------------------------------
class TestGuidedDeterminism:
    def test_byte_identical_across_backends_and_workers(self):
        graph = strip_labels(gnm_random_graph(35, 90, seed=23))
        query = NAMED_SHAPES["square"]
        cross_everything = set()
        for backend in ("serial", "thread"):
            per_worker = {}
            for workers in (1, 2, 5):
                config = ArabesqueConfig(num_workers=workers, backend=backend)
                result = run_matching(
                    graph, query, induced=True, guided=True, config=config
                )
                per_worker[workers] = result.canonical_signature()
                cross_everything.add(
                    result.canonical_signature(ignore_output_order=True)
                )
            assert len(set(per_worker.values())) >= 1
        assert len(cross_everything) == 1

    def test_process_backend_matches_serial(self):
        graph = strip_labels(gnm_random_graph(30, 70, seed=29))
        query = NAMED_SHAPES["triangle"]
        serial = run_matching(
            graph, query, induced=True, guided=True,
            config=ArabesqueConfig(num_workers=2, backend="serial"),
        )
        process = run_matching(
            graph, query, induced=True, guided=True,
            config=ArabesqueConfig(num_workers=2, backend="process"),
        )
        assert serial.canonical_signature() == process.canonical_signature()

    @pytest.mark.parametrize("storage", ["odag", "list", "adaptive"])
    def test_storage_modes_agree(self, storage):
        graph = strip_labels(gnm_random_graph(30, 80, seed=31))
        query = NAMED_SHAPES["diamond"]
        result = run_matching(
            graph, query, induced=False, guided=True,
            config=ArabesqueConfig(storage=storage),
        )
        oracle = run_matching(graph, query, induced=False, guided=False)
        assert match_vertex_sets(result) == match_vertex_sets(oracle)


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
class TestPlanConfig:
    def test_config_rejects_non_plan(self):
        with pytest.raises(ValueError):
            ArabesqueConfig(plan="triangle")

    def test_plan_requires_vertex_exploration(self):
        from repro.apps import GraphMatching

        plan = compile_plan(NAMED_SHAPES["triangle"])
        graph = strip_labels(gnm_random_graph(10, 20, seed=1))
        edge_mode = GraphMatching(NAMED_SHAPES["triangle"], induced=False)
        with pytest.raises(ValueError):
            run_computation(
                graph, edge_mode, ArabesqueConfig(plan=plan)
            )

    def test_plan_requires_computation_opt_in(self):
        # A plan paired with an unaware computation would silently
        # restrict what it explores (e.g. a motif census losing every
        # non-query shape) — must be a loud error, not a wrong answer.
        plan = compile_plan(NAMED_SHAPES["triangle"])
        graph = strip_labels(gnm_random_graph(10, 20, seed=1))
        with pytest.raises(ValueError, match="plan_compatible"):
            run_computation(
                graph, MotifCounting(3), ArabesqueConfig(plan=plan)
            )

    def test_precompiled_plan_reused(self):
        graph = strip_labels(gnm_random_graph(15, 30, seed=3))
        query = NAMED_SHAPES["triangle"]
        plan = compile_plan(query.canonical(), induced=True)
        with_plan = run_matching(
            graph, query, induced=True, guided=True, plan=plan
        )
        without_plan = run_matching(graph, query, induced=True, guided=True)
        assert with_plan.canonical_signature() == without_plan.canonical_signature()
        with pytest.raises(ValueError):
            run_matching(graph, query, induced=False, guided=True, plan=plan)
        # Pairing a plan compiled from a different query must fail loudly
        # instead of returning the other pattern's matches.
        with pytest.raises(ValueError, match="different query"):
            run_matching(
                graph, NAMED_SHAPES["square"], induced=True, guided=True,
                plan=plan,
            )
        # A plan with guided=False signals caller confusion — reject it
        # rather than silently running the exhaustive path.
        with pytest.raises(ValueError, match="guided=False"):
            run_matching(graph, query, induced=True, guided=False, plan=plan)

    def test_disconnected_query_rejected_by_both_modes(self):
        from repro.apps import GraphMatching

        disconnected = Pattern((0, 0, 0, 0), ((0, 1, 0), (2, 3, 0)))
        assert not disconnected.is_connected()
        with pytest.raises(ValueError, match="connected"):
            GraphMatching(disconnected)
        with pytest.raises(PlanError):
            compile_plan(disconnected)

    def test_run_matching_strips_plan_for_exhaustive(self):
        plan = compile_plan(NAMED_SHAPES["triangle"])
        graph = strip_labels(gnm_random_graph(12, 25, seed=2))
        config = ArabesqueConfig(plan=plan)
        exhaustive = run_matching(
            graph, NAMED_SHAPES["triangle"], guided=False, config=config
        )
        guided = run_matching(
            graph, NAMED_SHAPES["triangle"], guided=True, config=config
        )
        assert match_vertex_sets(exhaustive) == match_vertex_sets(guided)

    def test_mismatched_computation_and_config_plans_rejected(self):
        graph = strip_labels(gnm_random_graph(10, 20, seed=4))
        plan_a = compile_plan(NAMED_SHAPES["triangle"].canonical())
        plan_b = compile_plan(NAMED_SHAPES["square"].canonical())
        with pytest.raises(ValueError, match="different plan"):
            run_computation(
                graph, GuidedMatching(plan_a), ArabesqueConfig(plan=plan_b)
            )
        # A guided computation on the exhaustive path would emit every
        # size-k connected subgraph as a "match" — also rejected.
        with pytest.raises(ValueError, match="different plan"):
            run_computation(graph, GuidedMatching(plan_a), ArabesqueConfig())

    def test_guided_matching_computation_is_picklable(self):
        plan = compile_plan(NAMED_SHAPES["wedge"])
        clone = pickle.loads(pickle.dumps(GuidedMatching(plan)))
        assert clone.plan == plan


# ----------------------------------------------------------------------
# Pattern files
# ----------------------------------------------------------------------
class TestPatternFiles:
    def test_round_trip_with_labels(self, tmp_path):
        path = tmp_path / "labeled.pattern"
        path.write_text("# labeled wedge\nv 0 5\nv 2 7\n0 1 3\n1 2\n")
        pattern = read_pattern_file(path)
        assert pattern.vertex_labels == (5, 0, 7)
        assert pattern.edges == ((0, 1, 3), (1, 2, 0))

    def test_malformed_lines_rejected(self, tmp_path):
        for body in ("0 0\n", "0 1\n0 1\n", "v 0\n", "0 1 2 3\n", ""):
            path = tmp_path / "bad.pattern"
            path.write_text(body)
            with pytest.raises(ValueError):
                read_pattern_file(path)

    def test_duplicate_vertex_label_rejected(self, tmp_path):
        path = tmp_path / "dup_label.pattern"
        path.write_text("v 0 1\nv 0 2\n0 1\n")
        with pytest.raises(ValueError, match="duplicate label"):
            read_pattern_file(path)

    def test_negative_ids_rejected(self, tmp_path):
        for body in ("-1 0\n0 1\n", "v -1 5\n0 1\n"):
            path = tmp_path / "negative.pattern"
            path.write_text(body)
            with pytest.raises(ValueError, match="negative|>= 0"):
                read_pattern_file(path)

    def test_one_based_file_rejected_with_dense_id_hint(self, tmp_path):
        path = tmp_path / "one_based.pattern"
        path.write_text("1 2\n1 3\n2 3\n")
        with pytest.raises(ValueError, match="dense"):
            read_pattern_file(path)
