#!/usr/bin/env python
"""Bench-regression gate for the machine-readable benchmark artifacts.

Compares freshly produced ``benchmarks/results/BENCH_*.json`` files
against the committed quick-mode baselines in ``benchmarks/baselines/``
(``<name>.quick.json``), and fails when a tracked number regresses:

* **machine-independent counters** (states, candidate/survivor stream
  totals, match counts, batch sizes) must be *exactly* equal — any
  drift means kernel behavior changed, not the machine;
* **relative wall ratios** (``wall_ratio``, ``best_wall_ratio``, ...)
  may wobble with the host, but both sides of a ratio are measured on
  the same machine in the same run, so a drop beyond the tolerance
  (default 20%) is a real slowdown of the new kernel against the old
  one and fails the gate.  Improvements never fail.

Usage::

    python tools/check_bench_regression.py \
        [--baselines benchmarks/baselines] \
        [--results benchmarks/results] \
        [--tolerance 0.20]

Every ``*.quick.json`` baseline must have a matching fresh result (the
CI quick-mode smoke produces them); a missing result, a missing
workload, a changed counter, or an out-of-tolerance ratio exits 1 with
the offending numbers listed.  Exit status 0 means no regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Exactly-equal keys: machine-independent stream/batch counters.
EXACT_KEYS = (
    "states",
    "members",
    "matches",
    "candidates",
    "survivors",
    "candidates_exhaustive",
    "candidates_guided",
    "candidates_cost",
    "candidates_heuristic",
    "total_candidates_exhaustive",
    "total_candidates_guided",
    "total_candidates_cost",
    "total_candidates_heuristic",
)

#: Ratio keys: relative same-machine timings, tolerance-checked
#: (lower than baseline by more than the tolerance = regression).
RATIO_KEYS = (
    "wall_ratio",
    "candidate_ratio",
    "best_wall_ratio",
    "aggregate_wall_ratio",
    "best_dag_fused_wall_ratio",
    "aggregate_candidate_ratio",
    "best_skewed_wall_ratio",
)

#: Keys naming a workload entry inside a ``workloads``-style list.
IDENTITY_KEYS = ("graph", "query", "workload")


def _workload_id(entry: dict) -> tuple:
    return tuple(entry.get(key) for key in IDENTITY_KEYS)


def _compare_scalars(
    path: str, baseline: dict, fresh: dict, tolerance: float
) -> list[str]:
    problems = []
    for key in EXACT_KEYS:
        if key in baseline:
            if key not in fresh:
                problems.append(f"{path}: counter {key!r} disappeared")
            elif fresh[key] != baseline[key]:
                problems.append(
                    f"{path}: counter {key!r} drifted "
                    f"{baseline[key]} -> {fresh[key]} (must be exact)"
                )
    for key in RATIO_KEYS:
        if key in baseline and isinstance(baseline[key], (int, float)):
            if key not in fresh:
                problems.append(f"{path}: ratio {key!r} disappeared")
                continue
            floor = baseline[key] * (1.0 - tolerance)
            if fresh[key] < floor:
                problems.append(
                    f"{path}: ratio {key!r} regressed "
                    f"{baseline[key]} -> {fresh[key]} "
                    f"(floor {floor:.3f} at {tolerance:.0%} tolerance)"
                )
    return problems


def compare_payloads(
    name: str, baseline: dict, fresh: dict, tolerance: float
) -> list[str]:
    """All regressions of ``fresh`` against ``baseline`` (empty = pass)."""
    problems = _compare_scalars(name, baseline, fresh, tolerance)
    if baseline.get("quick") != fresh.get("quick"):
        problems.append(
            f"{name}: quick-mode flag mismatch "
            f"(baseline {baseline.get('quick')}, fresh {fresh.get('quick')}) "
            "— compare like with like"
        )
    for list_key, baseline_entries in baseline.items():
        if not (
            isinstance(baseline_entries, list)
            and baseline_entries
            and isinstance(baseline_entries[0], dict)
        ):
            continue
        fresh_entries = {
            _workload_id(entry): entry
            for entry in fresh.get(list_key, ())
            if isinstance(entry, dict)
        }
        for entry in baseline_entries:
            key = _workload_id(entry)
            label = f"{name}:{list_key}:{'/'.join(str(k) for k in key if k)}"
            fresh_entry = fresh_entries.get(key)
            if fresh_entry is None:
                problems.append(f"{label}: workload disappeared")
                continue
            problems.extend(
                _compare_scalars(label, entry, fresh_entry, tolerance)
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baselines", default="benchmarks/baselines", type=Path
    )
    parser.add_argument("--results", default="benchmarks/results", type=Path)
    parser.add_argument("--tolerance", default=0.20, type=float)
    args = parser.parse_args(argv)

    baselines = sorted(args.baselines.glob("*.quick.json"))
    if not baselines:
        print(f"no *.quick.json baselines under {args.baselines}", flush=True)
        return 1
    problems: list[str] = []
    for baseline_path in baselines:
        name = baseline_path.name[: -len(".quick.json")]
        result_path = args.results / f"{name}.json"
        if not result_path.exists():
            problems.append(
                f"{name}: fresh result {result_path} missing "
                "(run the quick-mode benches first)"
            )
            continue
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(result_path.read_text())
        found = compare_payloads(name, baseline, fresh, args.tolerance)
        problems.extend(found)
        status = "FAIL" if found else "ok"
        print(f"{name}: {status} ({result_path} vs {baseline_path})")
    if problems:
        print(f"\n{len(problems)} regression(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("no bench regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
