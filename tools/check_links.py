#!/usr/bin/env python
"""Relative-link checker for the repo's markdown docs (stdlib only).

Scans markdown files for inline links and images (``[text](target)`` /
``![alt](target)``) and reference definitions (``[label]: target``),
and fails when a *relative* target does not exist on disk.  External
schemes (http/https/mailto) and pure in-page anchors (``#section``) are
skipped; a relative target's ``#fragment`` suffix is checked against the
target file's headings when the target is markdown.

Usage::

    python tools/check_links.py README.md ROADMAP.md docs

Directory arguments are scanned for ``*.md`` recursively.  Exit status
is 0 when every link resolves, 1 otherwise (broken links are listed).
CI runs this over README.md, ROADMAP.md, and docs/.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline ``[text](target)`` / ``![alt](target)`` — target ends at the
#: first unescaped closing paren (no nested parens in our docs).
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions: ``[label]: target``.
REFERENCE_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Fenced code blocks — links inside them are examples, not links.
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchors for every heading in a markdown document."""
    anchors: set[str] = set()
    for line in CODE_FENCE.sub("", markdown).splitlines():
        match = re.match(r"\s{0,3}#{1,6}\s+(.*)", line)
        if not match:
            continue
        # GitHub's slug rule: lowercase, drop everything that is not a
        # word character / space / hyphen (so '?', ':', '.' vanish),
        # then spaces become hyphens.
        title = re.sub(r"[^\w\s-]", "", match.group(1)).strip().lower()
        anchors.add(re.sub(r"\s+", "-", title))
    return anchors


def link_targets(markdown: str) -> list[str]:
    """Every link/image/reference target in a document, code fences
    stripped first."""
    stripped = CODE_FENCE.sub("", markdown)
    return INLINE_LINK.findall(stripped) + REFERENCE_DEF.findall(stripped)


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    problems: list[str] = []
    markdown = path.read_text(encoding="utf-8")
    for target in link_targets(markdown):
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:].lower() not in heading_anchors(markdown):
                problems.append(f"{path}: broken in-page anchor {target!r}")
            continue
        relative, _, fragment = target.partition("#")
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken relative link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
            if fragment.lower() not in anchors:
                problems.append(
                    f"{path}: link {target!r} points at a missing "
                    f"heading #{fragment}"
                )
    return problems


def collect_markdown(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    arguments = argv or ["README.md", "ROADMAP.md", "docs"]
    files = collect_markdown(arguments)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"check_links: {len(files)} files, "
        f"{'OK' if not problems else f'{len(problems)} broken link(s)'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
