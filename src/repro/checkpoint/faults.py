"""Fault injection: kill runs at chosen BSP barriers to drive crash-resume.

Two crash flavours, both aimed at the instant *after* barrier *k*'s
snapshot hits disk (the worst case for resume — maximum state, minimum
re-execution):

* :class:`CrashingWriter` — an in-process crash: the writer raises
  :class:`InjectedCrash` right after persisting the chosen barrier's
  snapshot.  Cheap enough to sweep every barrier × backend × storage in
  the test matrix; from the snapshot's point of view it is
  indistinguishable from the process dying, because the engine gets no
  chance to write anything further.
* :func:`run_to_crash`'s ``hard_kill`` mode (used via
  ``tests/test_failure_modes.py``) — the real thing: a forked child
  ``SIGKILL``\\ s itself after the write, so no ``finally`` blocks, no
  interpreter shutdown, no flushing.  What survives is exactly what
  ``os.replace`` made durable.
"""

from __future__ import annotations

from typing import Any

from ..core.config import ArabesqueConfig
from ..core.computation import Computation
from ..core.engine import ArabesqueEngine
from ..graph import LabeledGraph
from .snapshot import CheckpointWriter


class InjectedCrash(RuntimeError):
    """The injected failure — escapes the engine like a real crash would."""


class CrashingWriter(CheckpointWriter):
    """A :class:`CheckpointWriter` that crashes after a chosen barrier.

    The snapshot for ``crash_after_step`` is fully written (atomic rename
    included) before the crash fires — modelling a process that died
    between the barrier and the next step.  ``action`` (e.g. an
    ``os.kill(os.getpid(), SIGKILL)`` thunk) runs before the raise for
    hard-kill variants.
    """

    def __init__(
        self,
        run_dir: str,
        crash_after_step: int,
        keep: int = 2,
        fresh: bool = True,
        action: Any = None,
    ) -> None:
        super().__init__(run_dir, keep=keep, fresh=fresh)
        self.crash_after_step = crash_after_step
        self.action = action

    def write(self, step: int, payload: dict) -> str:
        path = super().write(step, payload)
        if step == self.crash_after_step:
            if self.action is not None:
                self.action()
            raise InjectedCrash(
                f"injected crash after the step-{step} barrier snapshot"
            )
        return path


def run_to_crash(
    graph: LabeledGraph,
    computation: Computation,
    config: ArabesqueConfig,
    run_dir: str,
    crash_after_step: int,
    *,
    action: Any = None,
) -> None:
    """Run until the injected crash at ``crash_after_step`` fires.

    Returns normally when the crash fired (the usual case); raises
    :class:`RuntimeError` if the run *finished* before reaching the chosen
    barrier — a sweep asking for a barrier the workload never reaches is
    a broken test, and should fail loudly rather than "pass" by resuming
    a completed run.
    """
    writer = CrashingWriter(
        str(run_dir),
        crash_after_step,
        keep=config.checkpoint_keep,
        fresh=True,
        action=action,
    )
    engine = ArabesqueEngine(graph, computation, config, checkpointer=writer)
    try:
        engine.run()
    except InjectedCrash:
        return
    raise RuntimeError(
        f"run finished before the injected crash at barrier "
        f"{crash_after_step} — the workload has fewer snapshotted barriers "
        "than the sweep assumes"
    )


__all__ = ["CrashingWriter", "InjectedCrash", "run_to_crash"]
