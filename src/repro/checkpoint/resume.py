"""Crash-resume: rebuild an engine from a run directory's latest snapshot.

``resume_run(run_dir, graph)`` validates the snapshot against the offered
inputs *loudly* — a different graph raises
:class:`~repro.checkpoint.snapshot.CheckpointGraphMismatch`, a config that
disagrees on any semantic field (storage mode first among them) raises
:class:`~repro.checkpoint.snapshot.CheckpointConfigMismatch` naming every
mismatched field — then restarts the BSP loop at the snapshotted step + 1.
The resumed run's :meth:`~repro.core.results.RunResult.canonical_signature`
is byte-identical to an uninterrupted run: everything a later step reads
was captured at the barrier, and the caller is free to change *execution*
knobs (backend, worker count, process pool size, deadline) across the
crash because results are invariant to them by construction.

By default the resumed run keeps checkpointing into the same directory
(``fresh=False`` — the snapshot sequence extends instead of resetting), so
a run that crashes repeatedly still only ever re-executes from its last
barrier.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..core.config import ArabesqueConfig
from ..core.engine import ArabesqueEngine
from ..core.results import RunResult
from ..graph import LabeledGraph
from .snapshot import (
    CheckpointConfigMismatch,
    CheckpointGraphMismatch,
    CheckpointWriter,
    SEMANTIC_CONFIG_FIELDS,
    graph_fingerprint,
    load_latest,
    payload_resume_state,
)

#: Config fields a resume caller may override without touching semantics.
EXECUTION_CONFIG_FIELDS = (
    "backend",
    "num_workers",
    "backend_processes",
    "deadline_seconds",
    "cancel",
    "checkpoint_dir",
    "checkpoint_keep",
    "checkpoint_every",
    "spill_budget_nbytes",
    "spill_dir",
    "profile_phases",
)


def validate_payload(
    payload: dict[str, Any],
    graph: LabeledGraph,
    config: ArabesqueConfig | None = None,
) -> None:
    """Fingerprint checks: the offered graph/config must match the run."""
    offered = graph_fingerprint(graph)
    if offered != payload["graph_fingerprint"]:
        raise CheckpointGraphMismatch(
            "the offered graph is not the graph this run was snapshotted "
            f"on (fingerprint {offered[:12]}… vs snapshot "
            f"{payload['graph_fingerprint'][:12]}…) — resume with the "
            "original dataset (and the same labeled/unlabeled variant)"
        )
    if config is None:
        return
    snapshot_config: ArabesqueConfig = payload["config"]
    mismatched = [
        name
        for name in SEMANTIC_CONFIG_FIELDS
        if getattr(config, name) != getattr(snapshot_config, name)
    ]
    if (config.plan is not None) != (snapshot_config.plan is not None):
        mismatched.append("plan")
    if mismatched:
        details = ", ".join(
            f"{name}: snapshot={getattr(snapshot_config, name)!r} "
            f"offered={getattr(config, name)!r}"
            for name in mismatched
            if name != "plan"
        )
        if "plan" in mismatched:
            details = (details + "; " if details else "") + (
                "plan: snapshot "
                + ("guided" if snapshot_config.plan is not None else "exhaustive")
                + " vs offered "
                + ("guided" if config.plan is not None else "exhaustive")
            )
        raise CheckpointConfigMismatch(
            "the offered config changes what this run computes — resume "
            "must keep the snapshot's semantics ("
            + details
            + "); only execution knobs (backend, num_workers, deadline, "
            "spill budget, checkpoint cadence) may differ"
        )


def build_resume_config(
    payload: dict[str, Any],
    run_dir: str,
    config: ArabesqueConfig | None,
) -> ArabesqueConfig:
    """The config the resumed run executes under.

    Semantics (and the plan object itself) always come from the snapshot;
    execution knobs come from the caller's config when one is given.  The
    resumed run checkpoints back into ``run_dir`` unless the caller
    pointed ``checkpoint_dir`` elsewhere.
    """
    base: ArabesqueConfig = payload["config"]
    if config is None:
        return dataclasses.replace(base, checkpoint_dir=str(run_dir))
    overrides = {
        name: getattr(config, name) for name in EXECUTION_CONFIG_FIELDS
    }
    if overrides.get("checkpoint_dir") is None:
        overrides["checkpoint_dir"] = str(run_dir)
    return dataclasses.replace(base, **overrides)


def resume_run(
    run_dir: str,
    graph: LabeledGraph,
    *,
    config: ArabesqueConfig | None = None,
    universe: tuple[int, ...] | None = None,
) -> RunResult:
    """Resume the run checkpointed in ``run_dir`` on ``graph``.

    Loads and validates the latest snapshot (corruption, truncation, and
    fingerprint mismatches all raise
    :class:`~repro.checkpoint.snapshot.CheckpointError` subclasses), then
    runs the remaining exploration steps and returns the completed
    :class:`~repro.core.results.RunResult` — byte-identical in
    ``canonical_signature`` to the uninterrupted run.
    """
    payload = load_latest(run_dir)
    validate_payload(payload, graph, config)
    run_config = build_resume_config(payload, run_dir, config)
    state = payload_resume_state(payload)
    checkpointer = CheckpointWriter(
        run_config.checkpoint_dir,
        keep=run_config.checkpoint_keep,
        fresh=False,
    )
    engine = ArabesqueEngine(
        graph,
        payload["computation"],
        run_config,
        universe=universe,
        checkpointer=checkpointer,
    )
    return engine.run(resume_state=state)


__all__ = [
    "EXECUTION_CONFIG_FIELDS",
    "build_resume_config",
    "resume_run",
    "validate_payload",
]
