"""Checkpointed execution: BSP barrier snapshots and crash-resume.

The step-synchronous engine makes the inter-step barrier a natural
snapshot point (the ASYMP / G-thinker direction named in the ROADMAP):
:mod:`~repro.checkpoint.snapshot` defines the versioned, checksummed,
atomically-written snapshot format and the retention-managed writer;
:mod:`~repro.checkpoint.resume` validates fingerprints and rebuilds an
engine mid-run; :mod:`~repro.checkpoint.faults` injects crashes at chosen
barriers so the resume path is tested against every barrier of a run.

See docs/checkpoint.md for the format and the resume semantics.
"""

from .faults import CrashingWriter, InjectedCrash, run_to_crash
from .resume import (
    EXECUTION_CONFIG_FIELDS,
    build_resume_config,
    resume_run,
    validate_payload,
)
from .snapshot import (
    CheckpointConfigMismatch,
    CheckpointError,
    CheckpointGraphMismatch,
    CheckpointWriter,
    FORMAT_VERSION,
    SEMANTIC_CONFIG_FIELDS,
    config_fingerprint,
    graph_fingerprint,
    latest_snapshot_path,
    list_snapshots,
    load_latest,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "CheckpointConfigMismatch",
    "CheckpointError",
    "CheckpointGraphMismatch",
    "CheckpointWriter",
    "CrashingWriter",
    "EXECUTION_CONFIG_FIELDS",
    "FORMAT_VERSION",
    "InjectedCrash",
    "SEMANTIC_CONFIG_FIELDS",
    "build_resume_config",
    "config_fingerprint",
    "graph_fingerprint",
    "latest_snapshot_path",
    "list_snapshots",
    "load_latest",
    "read_snapshot",
    "resume_run",
    "run_to_crash",
    "validate_payload",
    "write_snapshot",
]
