"""Barrier snapshots: the on-disk format and the atomic writer.

Arabesque's step-synchronous BSP loop makes the inter-step barrier a
natural snapshot point: after the store merge, *everything* a later step
reads is in a handful of engine-owned objects — the merged
:class:`~repro.core.storage.EmbeddingStore`, the aggregation channels'
barrier state, the master pattern-canonicalizer cache, and the run's
accumulated counters/outputs.  A snapshot pickles exactly that state (plus
graph/config fingerprints so a resume against the wrong inputs fails
loudly) into one self-validating file:

``MAGIC (8 bytes) | version (4 bytes, big-endian) | pickled payload |
sha256 of everything before it (32 bytes)``

Writes are atomic (write to ``<name>.tmp``, flush + fsync, then
``os.replace``) so a crash mid-write never leaves a half snapshot under
the real name; after each successful write, only the newest
``keep`` snapshots are retained.  Reads re-verify the checksum and the
magic/version before unpickling — a truncated, corrupted, or foreign file
raises :class:`CheckpointError` instead of silently resuming from garbage.

This module deliberately does not import the engine (the engine imports
*it*, lazily, inside :meth:`~repro.core.engine.ArabesqueEngine.run`);
the resume path that rebuilds an engine lives in
:mod:`repro.checkpoint.resume`.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
import pickle
import struct
from dataclasses import dataclass
from typing import Any

from ..core.aggregation import AggregationChannel
from ..core.computation import Computation
from ..core.config import ArabesqueConfig
from ..core.pattern import PatternCanonicalizer
from ..core.results import RunResult
from ..core.storage import EmbeddingStore, ListStore, SpillListStore
from ..graph import LabeledGraph

MAGIC = b"ARBKCKPT"
FORMAT_VERSION = 1
_CHECKSUM_NBYTES = 32

#: Snapshot payloads produced by spill-mode runs store the rows themselves
#: (segment files do not outlive the run), tagged with this marker.
_SPILL_ROWS = "spill-rows"


class CheckpointError(RuntimeError):
    """A snapshot could not be written, read, or validated."""


class CheckpointGraphMismatch(CheckpointError):
    """The graph offered at resume is not the graph that was snapshotted."""


class CheckpointConfigMismatch(CheckpointError):
    """The config offered at resume disagrees with the snapshot on fields
    that change what a run computes (storage mode first among them)."""


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def graph_fingerprint(graph: LabeledGraph) -> str:
    """Content hash of the graph's defining data (labels + labeled edges).

    Structural only — the dataset ``name`` is excluded so a renamed copy
    of the same graph still resumes.
    """
    digest = hashlib.sha256()
    digest.update(repr(graph.num_vertices).encode())
    digest.update(repr(tuple(graph.vertex_labels)).encode())
    edge_labels = tuple(graph.edge_labels)
    for eid in graph.edges():
        u, v = graph.edge_endpoints(eid)
        digest.update(struct.pack(">lll", u, v, edge_labels[eid]))
    return digest.hexdigest()


#: Config fields that change *what a run computes* — a resumed run must
#: agree with the snapshot on all of them.  Execution knobs (backend,
#: num_workers, backend_processes, deadline, spill budget, checkpoint
#: cadence...) are free to differ: results are invariant across them by
#: construction.
SEMANTIC_CONFIG_FIELDS = (
    "storage",
    "two_level_aggregation",
    "incremental_canonicality",
    "collect_outputs",
    "output_limit",
    "max_exploration_steps",
    "max_embeddings",
)


def config_fingerprint(config: ArabesqueConfig) -> str:
    """Hash of the semantic config fields (plus plan presence)."""
    fields = tuple(
        getattr(config, name) for name in SEMANTIC_CONFIG_FIELDS
    ) + (config.plan is not None,)
    return hashlib.sha256(repr(fields).encode()).hexdigest()


# ----------------------------------------------------------------------
# Payload construction / restoration
# ----------------------------------------------------------------------
def _strip_computation(computation: Computation) -> Computation:
    """A shallow copy safe to pickle into a snapshot: the graph reference
    (installed by ``init``) and any bound task context are dropped; resume
    re-runs ``init(graph, config)``, which is deterministic."""
    stripped = copy.copy(computation)
    for attr in ("graph", "_context"):
        if hasattr(stripped, attr):
            try:
                setattr(stripped, attr, None)
            except AttributeError:  # read-only slot/property
                pass
    return stripped


def _portable_store(store: EmbeddingStore) -> Any:
    """The store as snapshot content.  ODAG/list stores pickle directly
    (the process backend already proves them picklable); a spill store's
    segment files die with the run, so its rows are materialized into the
    payload in global sorted order (the one memory-heavy moment of spill
    checkpointing — documented in docs/checkpoint.md)."""
    if isinstance(store, SpillListStore):
        return (_SPILL_ROWS, list(store._iter_all()))
    return store


def restore_store(stored: Any) -> EmbeddingStore:
    """Rebuild the engine-facing store from snapshot content.

    Spill rows come back as a sorted :class:`ListStore` — extraction
    semantics (global sorted order, contiguous per-pattern rank ranges)
    are identical, and the resumed run's *new* stores spill as usual.
    """
    if isinstance(stored, tuple) and len(stored) == 2 and stored[0] == _SPILL_ROWS:
        rebuilt = ListStore()
        for pattern, words in stored[1]:
            rebuilt.add(pattern, words)
        rebuilt.sort()
        return rebuilt
    return stored


def build_payload(
    *,
    graph: LabeledGraph,
    config: ArabesqueConfig,
    mode: str,
    step: int,
    processed_total: int,
    result: RunResult,
    store: EmbeddingStore,
    canonicalizer: PatternCanonicalizer,
    agg_channel: AggregationChannel,
    out_channel: AggregationChannel,
    computation: Computation,
    wall_seconds: float,
) -> dict[str, Any]:
    """Assemble one barrier's snapshot payload (see module docstring)."""
    return {
        "format_version": FORMAT_VERSION,
        "step": step,
        "mode": mode,
        "processed_total": processed_total,
        "result": result,
        "store": _portable_store(store),
        "canonicalizer": canonicalizer,
        "agg_published": agg_channel.published(),
        "agg_latest": agg_channel.latest(),
        "out_accumulated": out_channel.finalize(),
        "computation": _strip_computation(computation),
        # The live CancelFlag (a threading.Event) must not land in the
        # snapshot; a resumed run arms its own.
        "config": dataclasses.replace(config, cancel=None),
        "wall_seconds": wall_seconds,
        "graph_fingerprint": graph_fingerprint(graph),
        "config_fingerprint": config_fingerprint(config),
    }


@dataclass
class ResumeState:
    """What :meth:`ArabesqueEngine.run` needs to restart at step + 1."""

    step: int
    processed_total: int
    result: RunResult
    store: EmbeddingStore
    canonicalizer: PatternCanonicalizer
    agg_published: dict
    agg_latest: dict
    out_accumulated: dict
    wall_seconds: float


def payload_resume_state(payload: dict[str, Any]) -> ResumeState:
    """Extract the engine-facing resume state from a validated payload."""
    return ResumeState(
        step=payload["step"],
        processed_total=payload["processed_total"],
        result=payload["result"],
        store=restore_store(payload["store"]),
        canonicalizer=payload["canonicalizer"],
        agg_published=payload["agg_published"],
        agg_latest=payload["agg_latest"],
        out_accumulated=payload["out_accumulated"],
        wall_seconds=payload["wall_seconds"],
    )


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------
def _snapshot_name(step: int) -> str:
    return f"step-{step:06d}.ckpt"


def _snapshot_step(name: str) -> int | None:
    if not (name.startswith("step-") and name.endswith(".ckpt")):
        return None
    try:
        return int(name[len("step-") : -len(".ckpt")])
    except ValueError:
        return None


def write_snapshot(run_dir: str, step: int, payload: dict[str, Any]) -> str:
    """Atomically write one snapshot file; return its path."""
    os.makedirs(run_dir, exist_ok=True)
    blob = (
        MAGIC
        + struct.pack(">I", FORMAT_VERSION)
        + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    )
    digest = hashlib.sha256(blob).digest()
    path = os.path.join(run_dir, _snapshot_name(step))
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
        handle.write(digest)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def read_snapshot(path: str) -> dict[str, Any]:
    """Read and fully validate one snapshot file.

    Every failure mode is loud: missing file, truncation, bad magic,
    unsupported version, and checksum mismatch each raise
    :class:`CheckpointError` with a message naming the problem — a
    damaged snapshot must never silently resume as an older/garbled run.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path!r}: {exc}") from exc
    header_nbytes = len(MAGIC) + 4
    if len(data) < header_nbytes + _CHECKSUM_NBYTES:
        raise CheckpointError(
            f"snapshot {path!r} is truncated "
            f"({len(data)} bytes; header + checksum alone need "
            f"{header_nbytes + _CHECKSUM_NBYTES})"
        )
    blob, stored_digest = data[:-_CHECKSUM_NBYTES], data[-_CHECKSUM_NBYTES:]
    if hashlib.sha256(blob).digest() != stored_digest:
        raise CheckpointError(
            f"snapshot {path!r} failed its checksum — the file is "
            "corrupted or was truncated mid-write"
        )
    if blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError(
            f"{path!r} is not an Arabesque checkpoint (bad magic)"
        )
    (version,) = struct.unpack(
        ">I", blob[len(MAGIC) : header_nbytes]
    )
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"snapshot {path!r} has format version {version}; this build "
            f"reads version {FORMAT_VERSION}"
        )
    try:
        payload = pickle.loads(blob[header_nbytes:])
    except Exception as exc:  # checksum passed but unpickling still failed
        raise CheckpointError(
            f"snapshot {path!r} payload failed to deserialize: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "step" not in payload:
        raise CheckpointError(
            f"snapshot {path!r} payload is not a checkpoint payload"
        )
    return payload


def list_snapshots(run_dir: str) -> list[tuple[int, str]]:
    """``(step, path)`` of every snapshot in the directory, oldest first."""
    try:
        names = os.listdir(run_dir)
    except OSError:
        return []
    found = []
    for name in names:
        step = _snapshot_step(name)
        if step is not None:
            found.append((step, os.path.join(run_dir, name)))
    found.sort()
    return found


def latest_snapshot_path(run_dir: str) -> str:
    """Path of the newest snapshot (CheckpointError if there is none)."""
    snapshots = list_snapshots(run_dir)
    if not snapshots:
        raise CheckpointError(
            f"no checkpoint snapshots found in {run_dir!r} "
            "(expected step-*.ckpt files)"
        )
    return snapshots[-1][1]


def load_latest(run_dir: str) -> dict[str, Any]:
    """Read and validate the newest snapshot in ``run_dir``."""
    return read_snapshot(latest_snapshot_path(run_dir))


class CheckpointWriter:
    """Writes barrier snapshots into one run directory, with retention.

    ``fresh=True`` (a new run) clears any stale ``step-*.ckpt`` files left
    by a previous run of the same directory — lazily, on the first write,
    so a run that finishes without ever snapshotting (e.g. it ends at the
    step-0 barrier) does not destroy the previous run's snapshots without
    replacing them.  Resume paths construct the writer with ``fresh=False``
    so the continued run extends the existing sequence.
    """

    def __init__(self, run_dir: str, keep: int = 2, fresh: bool = True) -> None:
        if keep < 1:
            raise ValueError("checkpoint keep must be >= 1")
        self.run_dir = str(run_dir)
        self.keep = keep
        self._cleared = not fresh
        os.makedirs(self.run_dir, exist_ok=True)

    def write(self, step: int, payload: dict[str, Any]) -> str:
        if not self._cleared:
            for _, path in list_snapshots(self.run_dir):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._cleared = True
        path = write_snapshot(self.run_dir, step, payload)
        self._retain()
        return path

    def _retain(self) -> None:
        snapshots = list_snapshots(self.run_dir)
        for _, path in snapshots[: -self.keep]:
            try:
                os.unlink(path)
            except OSError:
                pass


__all__ = [
    "CheckpointConfigMismatch",
    "CheckpointError",
    "CheckpointGraphMismatch",
    "CheckpointWriter",
    "FORMAT_VERSION",
    "MAGIC",
    "ResumeState",
    "SEMANTIC_CONFIG_FIELDS",
    "build_payload",
    "config_fingerprint",
    "graph_fingerprint",
    "latest_snapshot_path",
    "list_snapshots",
    "load_latest",
    "payload_resume_state",
    "read_snapshot",
    "restore_store",
    "write_snapshot",
]
