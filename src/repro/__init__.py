"""repro — a pure-Python reproduction of Arabesque (SOSP 2015).

Arabesque is a distributed graph mining system built around the
"think like an embedding" paradigm: the system enumerates subgraph
instances (embeddings), the application supplies ``filter``/``process``
functions, and the runtime handles dedup (embedding canonicality), storage
(ODAGs), aggregation (two-level pattern aggregation), and load balancing.

Quickstart::

    from repro import ArabesqueConfig, run_computation
    from repro.apps import MotifCounting, motif_counts
    from repro.datasets import citeseer_like

    result = run_computation(citeseer_like(), MotifCounting(max_size=3))
    for pattern, count in motif_counts(result).items():
        print(pattern, count)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graph` — immutable labeled graphs, generators, I/O;
* :mod:`repro.isomorphism` — canonical labeling (bliss substitute), VF2;
* :mod:`repro.bsp` — in-process BSP engine with metered communication;
* :mod:`repro.core` — the filter-process model and execution techniques;
* :mod:`repro.apps` — FSM, motifs, cliques, maximal cliques;
* :mod:`repro.baselines` — TLV, TLP, GRAMI/G-Tries/Mace substitutes;
* :mod:`repro.datasets` — synthetic equivalents of the paper's graphs.
"""

from .core import (
    ArabesqueConfig,
    ArabesqueEngine,
    Computation,
    Embedding,
    Pattern,
    RunResult,
    run_computation,
)
from .graph import GraphBuilder, LabeledGraph

__version__ = "1.0.0"

__all__ = [
    "ArabesqueConfig",
    "ArabesqueEngine",
    "Computation",
    "Embedding",
    "GraphBuilder",
    "LabeledGraph",
    "Pattern",
    "RunResult",
    "run_computation",
    "__version__",
]
