"""repro — a pure-Python reproduction of Arabesque (SOSP 2015).

Arabesque is a distributed graph mining system built around the
"think like an embedding" paradigm: the system enumerates subgraph
instances (embeddings), the application supplies ``filter``/``process``
functions, and the runtime handles dedup (embedding canonicality), storage
(ODAGs), aggregation (two-level pattern aggregation), and load balancing.

Quickstart — the :class:`~repro.session.Miner` session facade is the
front door::

    from repro import Miner
    from repro.datasets import citeseer_like

    miner = Miner(citeseer_like())
    for pattern, count in miner.motifs(max_size=3).unlabeled().run().counts().items():
        print(pattern, count)
    squares = miner.match("square").unlabeled().workers(4).run()

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.session` — the fluent ``Miner`` facade (queries, typed
  results, per-session plan/universe caching);
* :mod:`repro.graph` — immutable labeled graphs, generators, I/O;
* :mod:`repro.isomorphism` — canonical labeling (bliss substitute), VF2;
* :mod:`repro.bsp` — in-process BSP engine with metered communication;
* :mod:`repro.core` — the filter-process model and execution techniques;
* :mod:`repro.plan` — pattern-aware guided exploration planner;
* :mod:`repro.apps` — FSM, motifs, cliques, maximal cliques, matching;
* :mod:`repro.baselines` — TLV, TLP, GRAMI/G-Tries/Mace substitutes;
* :mod:`repro.datasets` — synthetic equivalents of the paper's graphs.
"""

from .core import (
    ArabesqueConfig,
    ArabesqueEngine,
    Computation,
    Embedding,
    Pattern,
    RunResult,
    run_computation,
)
from .graph import GraphBuilder, LabeledGraph
from .session import Miner, SessionError

__version__ = "1.0.0"

__all__ = [
    "ArabesqueConfig",
    "ArabesqueEngine",
    "Computation",
    "Embedding",
    "GraphBuilder",
    "LabeledGraph",
    "Miner",
    "Pattern",
    "RunResult",
    "SessionError",
    "run_computation",
    "__version__",
]
