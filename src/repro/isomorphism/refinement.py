"""Color refinement (1-dimensional Weisfeiler–Leman) for small labeled graphs.

This is the workhorse inside the canonical labeling algorithm
(:mod:`repro.isomorphism.canonical_label`), our substitute for the bliss
library the paper uses for pattern canonicality (section 5.4).

A *coloring* is a list ``color[v]`` of small integers.  Refinement splits
color classes by the multiset of ``(edge label, neighbor color)`` pairs seen
from each vertex, repeating until a fixpoint.  The split order is fully
deterministic — new colors are assigned by sorting classes on
``(old color, signature)`` — which is what makes the enclosing canonical
labeling isomorphism-invariant: two isomorphic graphs refine to colorings
related by the same isomorphism.
"""

from __future__ import annotations

from typing import Sequence

AdjacencyList = Sequence[Sequence[tuple[int, int]]]
"""Per-vertex sequence of ``(neighbor, edge label)`` pairs."""


def initial_coloring(vertex_labels: Sequence[int]) -> list[int]:
    """Coloring that partitions vertices by their label.

    Colors are assigned by sorted label value so that isomorphic graphs get
    identical initial colorings up to the isomorphism.
    """
    distinct = sorted(set(vertex_labels))
    index = {label: i for i, label in enumerate(distinct)}
    return [index[label] for label in vertex_labels]


def refine_coloring(adjacency: AdjacencyList, coloring: Sequence[int]) -> list[int]:
    """Refine ``coloring`` to the coarsest stable refinement.

    Returns a new coloring with colors renumbered ``0..k-1`` such that the
    color order is determined by ``(old color, neighborhood signature)``.
    The input is not modified.
    """
    n = len(coloring)
    current = list(coloring)
    while True:
        signatures: list[tuple[int, tuple[tuple[int, int], ...]]] = []
        for v in range(n):
            neighborhood = sorted(
                (edge_label, current[u]) for u, edge_label in adjacency[v]
            )
            signatures.append((current[v], tuple(neighborhood)))
        order = sorted(set(signatures))
        index = {sig: i for i, sig in enumerate(order)}
        refined = [index[signatures[v]] for v in range(n)]
        if refined == current:
            return refined
        current = refined


def color_classes(coloring: Sequence[int]) -> list[list[int]]:
    """Vertices grouped by color, ordered by color; members sorted."""
    classes: dict[int, list[int]] = {}
    for v, color in enumerate(coloring):
        classes.setdefault(color, []).append(v)
    return [sorted(classes[color]) for color in sorted(classes)]


def is_discrete(coloring: Sequence[int]) -> bool:
    """Whether every color class is a singleton."""
    return len(set(coloring)) == len(coloring)


def individualize(coloring: Sequence[int], vertex: int) -> list[int]:
    """Split ``vertex`` into its own color, placed before its old class.

    All colors >= the old color of ``vertex`` shift up by one; ``vertex``
    takes the old color value, so it precedes the remainder of its class.
    """
    pivot = coloring[vertex]
    result = []
    for v, color in enumerate(coloring):
        if v == vertex:
            result.append(pivot)
        elif color >= pivot:
            result.append(color + 1)
        else:
            result.append(color)
    return result
