"""VF2-style subgraph isomorphism from a small pattern to a large graph.

This is the reproduction's substitute for VFLib (paper, section 6.3: the
authors pair GRAMI with VFLib to discover the embeddings of frequent
patterns).  It enumerates the mappings ``pattern vertex -> graph vertex``
that respect vertex labels, edge labels, and adjacency.

Two matching semantics are provided, mirroring the paper's two embedding
kinds (section 2):

* ``induced=False`` — monomorphism: every pattern edge maps to a graph
  edge; extra graph edges between mapped vertices are allowed.  This is
  the semantics of *edge-induced* embeddings (FSM).
* ``induced=True`` — induced isomorphism: pattern non-edges must map to
  graph non-edges.  This is the semantics of *vertex-induced* embeddings
  (motifs, cliques).

The matcher orders pattern vertices so every vertex after the first has an
already-matched neighbor, restricting candidates to neighborhoods — the key
VF2 idea that keeps matching fast on sparse graphs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..graph import LabeledGraph


def _connected_search_order(
    num_vertices: int, edges: dict[tuple[int, int], int]
) -> list[int]:
    """Pattern vertex order where each vertex (after the first) touches a
    previous one; ties broken toward higher degree to fail fast."""
    if num_vertices == 0:
        return []
    degree = [0] * num_vertices
    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
        adjacency[u].add(v)
        adjacency[v].add(u)
    start = max(range(num_vertices), key=lambda v: (degree[v], -v))
    order = [start]
    placed = {start}
    while len(order) < num_vertices:
        frontier = [
            v
            for v in range(num_vertices)
            if v not in placed and adjacency[v] & placed
        ]
        if not frontier:
            # Disconnected pattern: start a new component (FSM patterns are
            # connected, but the matcher stays correct regardless).
            frontier = [v for v in range(num_vertices) if v not in placed]
        chosen = max(frontier, key=lambda v: (len(adjacency[v] & placed), degree[v], -v))
        order.append(chosen)
        placed.add(chosen)
    return order


class SubgraphMatcher:
    """Reusable matcher for one pattern against one graph.

    Parameters
    ----------
    pattern_labels:
        Vertex labels of the pattern; length gives the pattern order.
    pattern_edges:
        ``(u, v) -> edge label`` with ``u < v``.
    graph:
        The haystack :class:`LabeledGraph`.
    induced:
        Induced-isomorphism semantics when True (see module docstring).
    """

    def __init__(
        self,
        pattern_labels: Sequence[int],
        pattern_edges: dict[tuple[int, int], int],
        graph: LabeledGraph,
        induced: bool = False,
    ) -> None:
        self._labels = tuple(pattern_labels)
        self._edges = dict(pattern_edges)
        self._graph = graph
        self._induced = induced
        #: Candidate vertices tested across all match_iter calls — a
        #: machine-independent work measure used by the TLP baseline for
        #: load accounting.
        self.work = 0
        self._order = _connected_search_order(len(self._labels), self._edges)
        n = len(self._labels)
        adjacency: list[dict[int, int]] = [{} for _ in range(n)]
        for (u, v), edge_label in self._edges.items():
            adjacency[u][v] = edge_label
            adjacency[v][u] = edge_label
        self._adjacency = adjacency
        # For each position in the search order, the pattern neighbors that
        # are already matched, with the required edge label.
        self._back_edges: list[list[tuple[int, int]]] = []
        seen: set[int] = set()
        for p in self._order:
            backs = [(q, adjacency[p][q]) for q in adjacency[p] if q in seen]
            self._back_edges.append(backs)
            seen.add(p)
        # Non-neighbors already matched (only consulted in induced mode).
        self._back_non_edges: list[list[int]] = []
        seen.clear()
        for p in self._order:
            nons = [q for q in seen if q not in adjacency[p]]
            self._back_non_edges.append(nons)
            seen.add(p)

    def match_iter(self) -> Iterator[tuple[int, ...]]:
        """Yield every mapping as a tuple: position ``i`` holds the graph
        vertex matched to pattern vertex ``i``.

        Automorphic images of the same vertex set are yielded separately —
        callers that want distinct embeddings should dedupe on
        ``frozenset(mapping)`` (see :func:`distinct_embeddings`).
        """
        n = len(self._labels)
        if n == 0:
            yield ()
            return
        graph = self._graph
        mapping: dict[int, int] = {}
        used: set[int] = set()

        def candidates(depth: int) -> Iterator[int]:
            p = self._order[depth]
            wanted_label = self._labels[p]
            backs = self._back_edges[depth]
            if backs:
                anchor, anchor_label = backs[0]
                pool: Sequence[int] = graph.neighbors(mapping[anchor])
            else:
                pool = graph.vertices()
            for g in pool:
                self.work += 1
                if g in used or graph.vertex_label(g) != wanted_label:
                    continue
                ok = True
                for q, edge_label in backs:
                    gq = mapping[q]
                    if not graph.adjacent(g, gq) or graph.edge_label(
                        graph.edge_id(g, gq)
                    ) != edge_label:
                        ok = False
                        break
                if ok and self._induced:
                    for q in self._back_non_edges[depth]:
                        if graph.adjacent(g, mapping[q]):
                            ok = False
                            break
                if ok:
                    yield g

        def backtrack(depth: int) -> Iterator[tuple[int, ...]]:
            if depth == n:
                yield tuple(mapping[p] for p in range(n))
                return
            p = self._order[depth]
            for g in candidates(depth):
                mapping[p] = g
                used.add(g)
                yield from backtrack(depth + 1)
                used.discard(g)
                del mapping[p]

        yield from backtrack(0)

    def count(self, limit: int | None = None) -> int:
        """Number of mappings, stopping early at ``limit`` if given."""
        total = 0
        for _ in self.match_iter():
            total += 1
            if limit is not None and total >= limit:
                break
        return total

    def exists(self) -> bool:
        """Whether at least one mapping exists."""
        return self.count(limit=1) > 0


def find_isomorphisms(
    pattern_labels: Sequence[int],
    pattern_edges: dict[tuple[int, int], int],
    graph: LabeledGraph,
    induced: bool = False,
    limit: int | None = None,
) -> list[tuple[int, ...]]:
    """All mappings (up to ``limit``) as a list; see :class:`SubgraphMatcher`."""
    matcher = SubgraphMatcher(pattern_labels, pattern_edges, graph, induced=induced)
    found = []
    for mapping in matcher.match_iter():
        found.append(mapping)
        if limit is not None and len(found) >= limit:
            break
    return found


def distinct_embeddings(
    pattern_labels: Sequence[int],
    pattern_edges: dict[tuple[int, int], int],
    graph: LabeledGraph,
    induced: bool = False,
) -> set[frozenset[int]]:
    """Distinct embedding vertex sets (automorphic duplicates collapsed)."""
    matcher = SubgraphMatcher(pattern_labels, pattern_edges, graph, induced=induced)
    return {frozenset(mapping) for mapping in matcher.match_iter()}
