"""Isomorphism substrate: canonical labeling (bliss substitute), VF2, orbits."""

from .canonical_label import (
    Certificate,
    build_adjacency,
    canonical_form,
    find_automorphisms,
    vertex_orbits,
)
from .refinement import (
    color_classes,
    individualize,
    initial_coloring,
    is_discrete,
    refine_coloring,
)
from .vf2 import SubgraphMatcher, distinct_embeddings, find_isomorphisms

__all__ = [
    "Certificate",
    "SubgraphMatcher",
    "build_adjacency",
    "canonical_form",
    "color_classes",
    "distinct_embeddings",
    "find_automorphisms",
    "find_isomorphisms",
    "individualize",
    "initial_coloring",
    "is_discrete",
    "refine_coloring",
    "vertex_orbits",
]
