"""Canonical labeling of small labeled graphs — the bliss substitute.

Arabesque maps every *quick pattern* to a *canonical pattern* by solving
graph isomorphism with the bliss library (paper, section 5.4).  This module
provides the same capability for the pattern sizes graph mining produces
(up to ~10 vertices) using the classic individualization–refinement scheme:

1. refine the vertex coloring with 1-WL (:mod:`.refinement`);
2. if the coloring is discrete it defines an ordering — emit its
   *certificate* (a total serialization of the relabeled graph);
3. otherwise branch on every vertex of the first smallest non-singleton
   color class, individualize, and recurse;
4. the canonical form is the lexicographically smallest certificate over
   all leaves.

Because refinement is isomorphism-invariant, two isomorphic graphs explore
mirrored trees and arrive at the same minimal certificate; hence
``certificate(g1) == certificate(g2)``  iff  ``g1 ≅ g2`` (labels included).

The same tree also yields the automorphism group: every leaf ordering whose
certificate equals the canonical one differs from the canonical ordering by
an automorphism, and all automorphisms arise this way
(:func:`find_automorphisms`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .refinement import (
    AdjacencyList,
    color_classes,
    individualize,
    initial_coloring,
    is_discrete,
    refine_coloring,
)

Certificate = tuple
"""Opaque, hashable, totally ordered canonical form of a labeled graph."""


def build_adjacency(
    num_vertices: int, edges: dict[tuple[int, int], int]
) -> list[list[tuple[int, int]]]:
    """Per-vertex ``(neighbor, edge label)`` lists from an edge-label dict.

    ``edges`` maps ``(u, v)`` with ``u < v`` to the edge label.
    """
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_vertices)]
    for (u, v), edge_label in edges.items():
        adjacency[u].append((v, edge_label))
        adjacency[v].append((u, edge_label))
    return adjacency


def _ordering_from_coloring(coloring: Sequence[int]) -> list[int]:
    """Discrete coloring -> vertex ordering (position i holds the vertex
    with color i)."""
    order = [0] * len(coloring)
    for v, color in enumerate(coloring):
        order[color] = v
    return order


def _certificate_for_ordering(
    ordering: Sequence[int],
    vertex_labels: Sequence[int],
    edges: dict[tuple[int, int], int],
) -> Certificate:
    """Serialize the graph relabeled by ``ordering`` into a certificate.

    ``ordering[i]`` is the original vertex placed at canonical position
    ``i``.  The certificate is ``(n, vertex label row, sorted edge triples)``
    where each edge triple is ``(i, j, edge label)`` in canonical positions,
    ``i < j``.
    """
    position = {v: i for i, v in enumerate(ordering)}
    relabeled_edges = []
    for (u, v), edge_label in edges.items():
        i, j = position[u], position[v]
        if i > j:
            i, j = j, i
        relabeled_edges.append((i, j, edge_label))
    relabeled_edges.sort()
    labels_row = tuple(vertex_labels[v] for v in ordering)
    return (len(ordering), labels_row, tuple(relabeled_edges))


def _search_leaves(
    adjacency: AdjacencyList, coloring: list[int]
) -> Iterator[list[int]]:
    """Yield the vertex ordering of every leaf of the IR tree."""
    coloring = refine_coloring(adjacency, coloring)
    if is_discrete(coloring):
        yield _ordering_from_coloring(coloring)
        return
    # Target cell: first smallest non-singleton class (deterministic and
    # isomorphism-invariant choice).
    target: list[int] | None = None
    for cell in color_classes(coloring):
        if len(cell) > 1 and (target is None or len(cell) < len(target)):
            target = cell
    assert target is not None
    for vertex in target:
        yield from _search_leaves(adjacency, individualize(coloring, vertex))


def canonical_form(
    num_vertices: int,
    vertex_labels: Sequence[int],
    edges: dict[tuple[int, int], int],
) -> tuple[Certificate, list[int]]:
    """Canonical certificate and one canonical ordering.

    Returns ``(certificate, ordering)`` where ``ordering[i]`` is the original
    vertex assigned canonical position ``i``.  Two labeled graphs have equal
    certificates iff they are isomorphic respecting vertex and edge labels.
    """
    if num_vertices == 0:
        return (0, (), ()), []
    adjacency = build_adjacency(num_vertices, edges)
    start = initial_coloring(vertex_labels)
    best_cert: Certificate | None = None
    best_ordering: list[int] | None = None
    for ordering in _search_leaves(adjacency, start):
        cert = _certificate_for_ordering(ordering, vertex_labels, edges)
        if best_cert is None or cert < best_cert:
            best_cert = cert
            best_ordering = ordering
    assert best_cert is not None and best_ordering is not None
    return best_cert, best_ordering


def find_automorphisms(
    num_vertices: int,
    vertex_labels: Sequence[int],
    edges: dict[tuple[int, int], int],
) -> list[tuple[int, ...]]:
    """The full automorphism group as vertex permutations.

    Each permutation ``sigma`` satisfies ``sigma[v] = image of v`` and
    preserves vertex labels, adjacency, and edge labels.  Derived from the
    IR tree: for minimal-certificate leaf orderings ``p`` and ``q``, the map
    ``v -> q[p^-1[v]]`` is an automorphism, and every automorphism appears
    when ``p`` is fixed and ``q`` ranges over all minimal leaves.
    """
    if num_vertices == 0:
        return [()]
    adjacency = build_adjacency(num_vertices, edges)
    start = initial_coloring(vertex_labels)
    leaves_by_cert: dict[Certificate, list[list[int]]] = {}
    best_cert: Certificate | None = None
    for ordering in _search_leaves(adjacency, start):
        cert = _certificate_for_ordering(ordering, vertex_labels, edges)
        if best_cert is None or cert < best_cert:
            best_cert = cert
        leaves_by_cert.setdefault(cert, []).append(ordering)
    assert best_cert is not None
    minimal_leaves = leaves_by_cert[best_cert]
    base = minimal_leaves[0]
    base_inverse = [0] * num_vertices
    for position, v in enumerate(base):
        base_inverse[v] = position
    automorphisms = []
    for leaf in minimal_leaves:
        automorphisms.append(tuple(leaf[base_inverse[v]] for v in range(num_vertices)))
    return sorted(set(automorphisms))


def vertex_orbits(
    num_vertices: int,
    vertex_labels: Sequence[int],
    edges: dict[tuple[int, int], int],
) -> list[int]:
    """Orbit id per vertex under the automorphism group.

    Orbit ids are normalized to the smallest vertex in each orbit, so two
    vertices are interchangeable by symmetry iff they share an orbit id.
    Used by the MNI support metric to fold per-vertex domains
    (:mod:`repro.apps.support`).
    """
    parent = list(range(num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for sigma in find_automorphisms(num_vertices, vertex_labels, edges):
        for v in range(num_vertices):
            a, b = find(v), find(sigma[v])
            if a != b:
                if a < b:
                    parent[b] = a
                else:
                    parent[a] = b
    return [find(v) for v in range(num_vertices)]
