"""Immutable labeled graph: the input-graph substrate of Arabesque.

Arabesque workers each hold "a local read-only copy of the graph" whose
"vertices and edges consist of incremental numeric ids" (paper, section 4.3).
:class:`LabeledGraph` is that copy: an undirected graph with dense integer
vertex ids ``0..n-1``, dense integer edge ids ``0..m-1``, and integer labels
on both vertices and edges (label ``0`` plays the role of the paper's "null"
label for unlabeled graphs).

The representation is tuned for the hot loops of embedding exploration:

* ``neighbors(v)`` returns a sorted tuple, so extension generation and the
  canonicality check of Algorithm 2 can scan in id order without re-sorting;
* ``edge_id(u, v)`` is a dict lookup, needed when converting vertex-induced
  embeddings to their edge sets and during edge-based exploration;
* ``adjacent(u, v)`` is O(min deg) via per-vertex neighbor sets.

Instances are deeply immutable: all collections are tuples and the neighbor
sets are ``frozenset``.  Build them with :class:`repro.graph.GraphBuilder`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence


class GraphError(ValueError):
    """Raised for malformed graph construction or out-of-range queries."""


class LabeledGraph:
    """An immutable undirected graph with labeled vertices and edges.

    Parameters
    ----------
    vertex_labels:
        Sequence of integer labels; vertex ``v`` has label
        ``vertex_labels[v]``.  The length defines the vertex count.
    edges:
        Sequence of ``(u, v)`` pairs with ``u != v``.  Edge ids are assigned
        in the order given.  Parallel edges and self-loops are rejected
        (the paper assumes simple graphs without self-loops).
    edge_labels:
        Optional sequence of integer labels, one per edge; defaults to all
        zeros (the "null" label).
    name:
        Optional human-readable dataset name used in reports.
    """

    __slots__ = (
        "_vertex_labels",
        "_edge_endpoints",
        "_edge_labels",
        "_neighbors",
        "_neighbor_sets",
        "_incident_edges",
        "_edge_index",
        "_label_index",
        "_name",
    )

    def __init__(
        self,
        vertex_labels: Sequence[int],
        edges: Sequence[tuple[int, int]],
        edge_labels: Sequence[int] | None = None,
        name: str = "graph",
    ) -> None:
        n = len(vertex_labels)
        self._vertex_labels = tuple(int(label) for label in vertex_labels)
        if edge_labels is None:
            edge_labels = [0] * len(edges)
        if len(edge_labels) != len(edges):
            raise GraphError(
                f"{len(edges)} edges but {len(edge_labels)} edge labels"
            )

        adjacency: list[list[int]] = [[] for _ in range(n)]
        incident: list[list[int]] = [[] for _ in range(n)]
        endpoints: list[tuple[int, int]] = []
        edge_index: dict[tuple[int, int], int] = {}
        for eid, (u, v) in enumerate(edges):
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references a missing vertex")
            if u == v:
                raise GraphError(f"self-loop on vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in edge_index:
                raise GraphError(f"parallel edge ({u}, {v})")
            edge_index[key] = eid
            endpoints.append(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
            incident[u].append(eid)
            incident[v].append(eid)

        self._edge_endpoints = tuple(endpoints)
        self._edge_labels = tuple(int(label) for label in edge_labels)
        self._neighbors = tuple(tuple(sorted(adj)) for adj in adjacency)
        self._neighbor_sets = tuple(frozenset(adj) for adj in adjacency)
        self._incident_edges = tuple(tuple(sorted(inc)) for inc in incident)
        self._edge_index = edge_index
        #: Lazy label -> sorted vertex ids (built on first use; rebuilding
        #: is idempotent, so concurrent first readers are harmless).
        self._label_index: dict[int, tuple[int, ...]] | None = None
        self._name = name

    # ------------------------------------------------------------------
    # Size and identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Dataset name used in benchmark reports."""
        return self._name

    @property
    def num_vertices(self) -> int:
        """Number of vertices (ids are ``0..num_vertices - 1``)."""
        return len(self._vertex_labels)

    @property
    def num_edges(self) -> int:
        """Number of edges (ids are ``0..num_edges - 1``)."""
        return len(self._edge_endpoints)

    @property
    def num_vertex_labels(self) -> int:
        """Number of distinct vertex labels present in the graph."""
        return len(set(self._vertex_labels)) if self._vertex_labels else 0

    def average_degree(self) -> float:
        """Average vertex degree, ``2m / n`` (0.0 for the empty graph)."""
        if not self._vertex_labels:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def vertices(self) -> range:
        """All vertex ids, in increasing order."""
        return range(self.num_vertices)

    def vertex_label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return self._vertex_labels[v]

    @property
    def vertex_labels(self) -> tuple[int, ...]:
        """Tuple of all vertex labels indexed by vertex id."""
        return self._vertex_labels

    def vertices_with_label(self, label: int) -> tuple[int, ...]:
        """All vertices carrying ``label``, sorted ascending.

        The label index every real mining system keeps: guided plans use
        it as the step-0 candidate pool instead of scanning all vertices.
        Built lazily once per graph and cached (graphs are immutable).
        """
        if self._label_index is None:
            index: dict[int, list[int]] = {}
            for vertex, vertex_label in enumerate(self._vertex_labels):
                index.setdefault(vertex_label, []).append(vertex)
            self._label_index = {
                vertex_label: tuple(ids) for vertex_label, ids in index.items()
            }
        return self._label_index.get(label, ())

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._neighbors[v])

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbors of ``v`` as a sorted tuple (ascending vertex id)."""
        return self._neighbors[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """Neighbors of ``v`` as a frozenset for O(1) membership tests."""
        return self._neighbor_sets[v]

    def adjacent(self, u: int, v: int) -> bool:
        """Whether an edge ``(u, v)`` exists."""
        return v in self._neighbor_sets[u]

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def edges(self) -> range:
        """All edge ids, in increasing order."""
        return range(self.num_edges)

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` of edge ``eid`` with ``u < v``."""
        return self._edge_endpoints[eid]

    def edge_label(self, eid: int) -> int:
        """Label of edge ``eid``."""
        return self._edge_labels[eid]

    @property
    def edge_labels(self) -> tuple[int, ...]:
        """Tuple of all edge labels indexed by edge id."""
        return self._edge_labels

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of the edge between ``u`` and ``v``.

        Raises :class:`GraphError` if no such edge exists; use
        :meth:`adjacent` first when absence is expected.
        """
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_index[key]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def incident_edges(self, v: int) -> tuple[int, ...]:
        """Edge ids incident to vertex ``v``, sorted ascending."""
        return self._incident_edges[v]

    def edge_other_endpoint(self, eid: int, v: int) -> int:
        """The endpoint of ``eid`` that is not ``v``."""
        u, w = self._edge_endpoints[eid]
        if v == u:
            return w
        if v == w:
            return u
        raise GraphError(f"vertex {v} is not an endpoint of edge {eid}")

    # ------------------------------------------------------------------
    # Label statistics (used by dataset reports and generators)
    # ------------------------------------------------------------------
    def vertex_label_histogram(self) -> dict[int, int]:
        """Mapping ``label -> number of vertices`` carrying it."""
        histogram: dict[int, int] = {}
        for label in self._vertex_labels:
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def induced_edge_ids(self, vertex_set: Iterable[int]) -> list[int]:
        """Edge ids of the subgraph induced by ``vertex_set``, sorted."""
        members = set(vertex_set)
        found: list[int] = []
        for v in members:
            for eid in self._incident_edges[v]:
                u, w = self._edge_endpoints[eid]
                if u in members and w in members and v == u:
                    found.append(eid)
        found.sort()
        return found

    def is_connected_vertex_set(self, vertex_ids: Sequence[int]) -> bool:
        """Whether ``vertex_ids`` induces a connected subgraph."""
        if not vertex_ids:
            return False
        members = set(vertex_ids)
        stack = [next(iter(members))]
        seen = {stack[0]}
        while stack:
            v = stack.pop()
            for u in self._neighbors[v]:
                if u in members and u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == len(members)

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex-id lists."""
        seen = [False] * self.num_vertices
        components: list[list[int]] = []
        for start in self.vertices():
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            stack = [start]
            while stack:
                v = stack.pop()
                for u in self._neighbors[v]:
                    if not seen[u]:
                        seen[u] = True
                        component.append(u)
                        stack.append(u)
            component.sort()
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"LabeledGraph(name={self._name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, labels={self.num_vertex_labels})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (
            self._vertex_labels == other._vertex_labels
            and self._edge_endpoints == other._edge_endpoints
            and self._edge_labels == other._edge_labels
        )

    def __hash__(self) -> int:
        return hash((self._vertex_labels, self._edge_endpoints, self._edge_labels))

    def relabel(
        self, vertex_labels: Mapping[int, int] | Sequence[int]
    ) -> "LabeledGraph":
        """A copy of this graph with different vertex labels.

        Accepts either a full sequence of labels or a mapping of
        ``vertex -> new label`` (unmapped vertices keep their label).
        """
        if isinstance(vertex_labels, Mapping):
            labels = list(self._vertex_labels)
            for v, label in vertex_labels.items():
                labels[v] = label
        else:
            labels = list(vertex_labels)
            if len(labels) != self.num_vertices:
                raise GraphError("label sequence length must match vertex count")
        return LabeledGraph(
            labels, self._edge_endpoints, self._edge_labels, name=self._name
        )

    def edge_iter(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(eid, u, v)`` triples in edge-id order."""
        for eid, (u, v) in enumerate(self._edge_endpoints):
            yield eid, u, v
