"""Immutable labeled graph: the input-graph substrate of Arabesque.

Arabesque workers each hold "a local read-only copy of the graph" whose
"vertices and edges consist of incremental numeric ids" (paper, section 4.3).
:class:`LabeledGraph` is that copy: an undirected graph with dense integer
vertex ids ``0..n-1``, dense integer edge ids ``0..m-1``, and integer labels
on both vertices and edges (label ``0`` plays the role of the paper's "null"
label for unlabeled graphs).

The representation is a CSR (compressed sparse row) core over stdlib
``array('l')`` buffers plus a big-int bitset layer (:mod:`.bitset`):

* ``_offsets[v] .. _offsets[v+1]`` delimits vertex ``v``'s row in both the
  neighbor array (``_csr_neighbors``, sorted by neighbor id; the parallel
  ``_csr_nbr_edge`` holds each entry's edge id) and the incident-edge array
  (``_csr_incident``, sorted by edge id) — ``neighbors(v)`` and
  ``incident_edges(v)`` are zero-copy ``memoryview`` slices;
* ``adjacent(u, v)`` is a single shift on ``neighbor_bits(u)``, and
  ``edge_between(u, v)`` is a bisect into the smaller endpoint's CSR row;
* the label index is built **eagerly** at construction, so instances are
  truly immutable after ``__init__`` — no first-read mutation dirtying
  copy-on-write pages under the fork-based process backend.

Build graphs with :class:`repro.graph.GraphBuilder`.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping, Sequence

from .bitset import from_bitset, to_bitset


class GraphError(ValueError):
    """Raised for malformed graph construction or out-of-range queries."""


class LabeledGraph:
    """An immutable undirected graph with labeled vertices and edges.

    Parameters
    ----------
    vertex_labels:
        Sequence of integer labels; vertex ``v`` has label
        ``vertex_labels[v]``.  The length defines the vertex count.
    edges:
        Sequence of ``(u, v)`` pairs with ``u != v``.  Edge ids are assigned
        in the order given.  Parallel edges and self-loops are rejected
        (the paper assumes simple graphs without self-loops).
    edge_labels:
        Optional sequence of integer labels, one per edge; defaults to all
        zeros (the "null" label).
    name:
        Optional human-readable dataset name used in reports.
    """

    __slots__ = (
        "_vertex_labels",
        "_edge_u",
        "_edge_v",
        "_edge_labels",
        "_offsets",
        "_csr_neighbors",
        "_csr_nbr_edge",
        "_csr_incident",
        "_nbr_views",
        "_inc_views",
        "_nbr_all",
        "_nbr_edge_all",
        "_nbr_bits",
        "_inc_bits",
        "_label_index",
        "_label_bits",
        "_uniform_edge_label",
        "_name",
    )

    def __init__(
        self,
        vertex_labels: Sequence[int],
        edges: Sequence[tuple[int, int]],
        edge_labels: Sequence[int] | None = None,
        name: str = "graph",
    ) -> None:
        n = len(vertex_labels)
        self._vertex_labels = array("l", (int(label) for label in vertex_labels))
        if edge_labels is None:
            edge_labels = [0] * len(edges)
        if len(edge_labels) != len(edges):
            raise GraphError(
                f"{len(edges)} edges but {len(edge_labels)} edge labels"
            )

        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        incident: list[list[int]] = [[] for _ in range(n)]
        edge_u = array("l")
        edge_v = array("l")
        nbr_bits = [0] * n
        inc_bits = [0] * n
        seen: set[tuple[int, int]] = set()
        for eid, (u, v) in enumerate(edges):
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references a missing vertex")
            if u == v:
                raise GraphError(f"self-loop on vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"parallel edge ({u}, {v})")
            seen.add(key)
            edge_u.append(key[0])
            edge_v.append(key[1])
            adjacency[u].append((v, eid))
            adjacency[v].append((u, eid))
            # Edge ids are assigned in input order, so per-vertex incident
            # lists come out sorted by edge id without an explicit sort.
            incident[u].append(eid)
            incident[v].append(eid)
            nbr_bits[u] |= 1 << v
            nbr_bits[v] |= 1 << u
            eid_bit = 1 << eid
            inc_bits[u] |= eid_bit
            inc_bits[v] |= eid_bit

        self._edge_u = edge_u
        self._edge_v = edge_v
        self._edge_labels = array("l", (int(label) for label in edge_labels))

        offsets = array("l", [0])
        csr_neighbors = array("l")
        csr_nbr_edge = array("l")
        csr_incident = array("l")
        for v in range(n):
            row = adjacency[v]
            row.sort()
            for neighbor, eid in row:
                csr_neighbors.append(neighbor)
                csr_nbr_edge.append(eid)
            csr_incident.extend(incident[v])
            offsets.append(len(csr_neighbors))
        self._offsets = offsets
        self._csr_neighbors = csr_neighbors
        self._csr_nbr_edge = csr_nbr_edge
        self._csr_incident = csr_incident

        nbr_all = memoryview(csr_neighbors)
        inc_all = memoryview(csr_incident)
        self._nbr_all = nbr_all
        self._nbr_edge_all = memoryview(csr_nbr_edge)
        self._nbr_views = tuple(
            nbr_all[offsets[v] : offsets[v + 1]] for v in range(n)
        )
        self._inc_views = tuple(
            inc_all[offsets[v] : offsets[v + 1]] for v in range(n)
        )
        self._nbr_bits = tuple(nbr_bits)
        self._inc_bits = tuple(inc_bits)

        #: Eager label -> sorted vertex ids (tuple + bitset form).  Built
        #: at construction so no read path ever mutates the instance.
        index: dict[int, list[int]] = {}
        for vertex, vertex_label in enumerate(self._vertex_labels):
            index.setdefault(vertex_label, []).append(vertex)
        self._label_index = {
            vertex_label: tuple(ids) for vertex_label, ids in index.items()
        }
        self._label_bits = {
            vertex_label: to_bitset(ids) for vertex_label, ids in index.items()
        }

        distinct_edge_labels = set(self._edge_labels)
        self._uniform_edge_label = (
            distinct_edge_labels.pop() if len(distinct_edge_labels) == 1 else
            0 if not distinct_edge_labels else None
        )
        self._name = name

    # ------------------------------------------------------------------
    # Size and identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Dataset name used in benchmark reports."""
        return self._name

    @property
    def num_vertices(self) -> int:
        """Number of vertices (ids are ``0..num_vertices - 1``)."""
        return len(self._vertex_labels)

    @property
    def num_edges(self) -> int:
        """Number of edges (ids are ``0..num_edges - 1``)."""
        return len(self._edge_labels)

    @property
    def num_vertex_labels(self) -> int:
        """Number of distinct vertex labels present in the graph."""
        return len(self._label_index)

    def average_degree(self) -> float:
        """Average vertex degree, ``2m / n`` (0.0 for the empty graph)."""
        if not self._vertex_labels:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def memory_nbytes(self) -> int:
        """Approximate bytes held by the CSR buffers and bitset layer.

        The number the benchmarks report as "peak graph bytes": the array
        buffers plus the big-int bitsets (per-vertex adjacency/incidence
        and the label index), excluding fixed per-object overhead.
        """
        total = sum(
            buf.itemsize * len(buf)
            for buf in (
                self._vertex_labels,
                self._edge_u,
                self._edge_v,
                self._edge_labels,
                self._offsets,
                self._csr_neighbors,
                self._csr_nbr_edge,
                self._csr_incident,
            )
        )
        total += sum(sys.getsizeof(bits) for bits in self._nbr_bits)
        total += sum(sys.getsizeof(bits) for bits in self._inc_bits)
        total += sum(sys.getsizeof(bits) for bits in self._label_bits.values())
        return total

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def vertices(self) -> range:
        """All vertex ids, in increasing order."""
        return range(self.num_vertices)

    def vertex_label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return self._vertex_labels[v]

    @property
    def vertex_labels(self) -> tuple[int, ...]:
        """Tuple of all vertex labels indexed by vertex id."""
        return tuple(self._vertex_labels)

    def vertices_with_label(self, label: int) -> tuple[int, ...]:
        """All vertices carrying ``label``, sorted ascending.

        The label index every real mining system keeps: guided plans use
        it as the step-0 candidate pool instead of scanning all vertices.
        Built eagerly at construction (graphs are immutable).
        """
        return self._label_index.get(label, ())

    def label_bits(self, label: int) -> int:
        """Bitset form of :meth:`vertices_with_label` (``0`` for absent)."""
        return self._label_bits.get(label, 0)

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._nbr_views[v])

    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbors of ``v``, sorted ascending (zero-copy CSR row)."""
        return self._nbr_views[v]

    def neighbor_bits(self, v: int) -> int:
        """Neighbors of ``v`` as a big-int bitset (O(1) membership/``&``)."""
        return self._nbr_bits[v]

    def adjacent(self, u: int, v: int) -> bool:
        """Whether an edge ``(u, v)`` exists."""
        return bool((self._nbr_bits[u] >> v) & 1)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def edges(self) -> range:
        """All edge ids, in increasing order."""
        return range(self.num_edges)

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` of edge ``eid`` with ``u < v``."""
        return (self._edge_u[eid], self._edge_v[eid])

    def edge_label(self, eid: int) -> int:
        """Label of edge ``eid``."""
        return self._edge_labels[eid]

    @property
    def edge_labels(self) -> tuple[int, ...]:
        """Tuple of all edge labels indexed by edge id."""
        return tuple(self._edge_labels)

    @property
    def uniform_edge_label(self) -> int | None:
        """The single edge label shared by every edge, or ``None`` if mixed.

        ``0`` (the null label) for edge-less graphs.  Hot back-edge checks
        use this to skip the edge-id lookup entirely on unlabeled graphs:
        adjacency alone decides, because every present edge carries the
        one label.
        """
        return self._uniform_edge_label

    def edge_between(self, u: int, v: int) -> int | None:
        """Edge id of the edge between ``u`` and ``v``, or ``None``.

        A bisect into the smaller endpoint's sorted CSR neighbor row;
        endpoints must be valid vertex ids.
        """
        offsets = self._offsets
        if offsets[u + 1] - offsets[u] > offsets[v + 1] - offsets[v]:
            u, v = v, u
        lo = offsets[u]
        hi = offsets[u + 1]
        i = bisect_left(self._nbr_all, v, lo, hi)
        if i < hi and self._nbr_all[i] == v:
            return self._nbr_edge_all[i]
        return None

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of the edge between ``u`` and ``v``.

        Raises :class:`GraphError` if no such edge exists; use
        :meth:`adjacent` (or :meth:`edge_between`) first when absence is
        expected.
        """
        try:
            eid = self.edge_between(u, v)
        except IndexError:
            raise GraphError(f"no edge between {u} and {v}") from None
        if eid is None:
            raise GraphError(f"no edge between {u} and {v}")
        return eid

    def incident_edges(self, v: int) -> Sequence[int]:
        """Edge ids incident to vertex ``v``, sorted ascending."""
        return self._inc_views[v]

    def incident_bits(self, v: int) -> int:
        """Incident edge ids of ``v`` as a big-int bitset over edge ids."""
        return self._inc_bits[v]

    def edge_other_endpoint(self, eid: int, v: int) -> int:
        """The endpoint of ``eid`` that is not ``v``."""
        u = self._edge_u[eid]
        w = self._edge_v[eid]
        if v == u:
            return w
        if v == w:
            return u
        raise GraphError(f"vertex {v} is not an endpoint of edge {eid}")

    # ------------------------------------------------------------------
    # Label statistics (used by dataset reports and generators)
    # ------------------------------------------------------------------
    def vertex_label_histogram(self) -> dict[int, int]:
        """Mapping ``label -> number of vertices`` carrying it."""
        return {label: len(ids) for label, ids in self._label_index.items()}

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def induced_edge_ids(self, vertex_set: Iterable[int]) -> list[int]:
        """Edge ids of the subgraph induced by ``vertex_set``, sorted.

        Pure bitset arithmetic: an edge is induced iff it appears in the
        incident-edge bitsets of two members, so one pass accumulating
        "seen once" / "seen twice" masks finds them all; decoding the
        twice-mask yields edge ids ascending.
        """
        inc_bits = self._inc_bits
        once = 0
        both = 0
        for v in set(vertex_set):
            bits = inc_bits[v]
            both |= once & bits
            once |= bits
        return list(from_bitset(both))

    def is_connected_vertex_set(self, vertex_ids: Sequence[int]) -> bool:
        """Whether ``vertex_ids`` induces a connected subgraph."""
        if not vertex_ids:
            return False
        members = to_bitset(vertex_ids)
        nbr_bits = self._nbr_bits
        start = members & -members
        seen = start
        stack = [start.bit_length() - 1]
        while stack:
            v = stack.pop()
            fresh = nbr_bits[v] & members & ~seen
            if fresh:
                seen |= fresh
                stack.extend(from_bitset(fresh))
        return seen == members

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex-id lists."""
        seen = [False] * self.num_vertices
        components: list[list[int]] = []
        for start in self.vertices():
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            stack = [start]
            while stack:
                v = stack.pop()
                for u in self._nbr_views[v]:
                    if not seen[u]:
                        seen[u] = True
                        component.append(u)
                        stack.append(u)
            component.sort()
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"LabeledGraph(name={self._name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, labels={self.num_vertex_labels})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (
            self._vertex_labels == other._vertex_labels
            and self._edge_u == other._edge_u
            and self._edge_v == other._edge_v
            and self._edge_labels == other._edge_labels
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._vertex_labels.tobytes(),
                self._edge_u.tobytes(),
                self._edge_v.tobytes(),
                self._edge_labels.tobytes(),
            )
        )

    def __reduce__(self):
        # memoryview slots are not picklable; rebuild from the defining
        # data instead (the spawn-mode process backend pickles the graph
        # inside StepContext — fork inherits it copy-on-write).
        return (
            LabeledGraph,
            (
                self._vertex_labels.tolist(),
                list(zip(self._edge_u, self._edge_v)),
                self._edge_labels.tolist(),
                self._name,
            ),
        )

    def relabel(
        self, vertex_labels: Mapping[int, int] | Sequence[int]
    ) -> "LabeledGraph":
        """A copy of this graph with different vertex labels.

        Accepts either a full sequence of labels or a mapping of
        ``vertex -> new label`` (unmapped vertices keep their label).
        """
        if isinstance(vertex_labels, Mapping):
            labels = list(self._vertex_labels)
            for v, label in vertex_labels.items():
                labels[v] = label
        else:
            labels = list(vertex_labels)
            if len(labels) != self.num_vertices:
                raise GraphError("label sequence length must match vertex count")
        return LabeledGraph(
            labels,
            list(zip(self._edge_u, self._edge_v)),
            self._edge_labels,
            name=self._name,
        )

    def edge_iter(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(eid, u, v)`` triples in edge-id order."""
        return zip(range(self.num_edges), self._edge_u, self._edge_v)
