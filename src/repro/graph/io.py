"""Graph text formats.

Two formats are supported:

* **Edge list** — one ``u v [edge_label]`` pair per line, optionally preceded
  by ``v <vertex> <label>`` vertex-label lines.  Comment lines start with
  ``#``.  This covers the crawled datasets the paper uses (Youtube, Patents).

* **Arabesque adjacency** — the input format of the original system: one line
  per vertex, ``<vertex id> <vertex label> [<neighbor id> ...]``.  Edge
  labels are not representable; they default to 0.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from .builder import GraphBuilder
from .graph import GraphError, LabeledGraph


def _open_for_read(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def read_edge_list(source: str | Path | TextIO, name: str = "graph") -> LabeledGraph:
    """Parse an edge-list file into a :class:`LabeledGraph`.

    Lines:

    * ``# ...`` — comment, ignored.
    * ``v <vertex> <label>`` — declare a vertex with a label.
    * ``<u> <v>`` or ``<u> <v> <edge label>`` — an undirected edge.

    Vertices referenced only by edges get label 0.  Vertex names may be any
    whitespace-free token; dense ids are assigned in first-seen order.
    """
    handle, owned = _open_for_read(source)
    builder = GraphBuilder()
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "v":
                if len(parts) != 3:
                    raise GraphError(f"line {lineno}: expected 'v <vertex> <label>'")
                builder.add_vertex(parts[1], label=int(parts[2]))
            elif len(parts) == 2:
                builder.add_edge(parts[0], parts[1])
            elif len(parts) == 3:
                builder.add_edge(parts[0], parts[1], label=int(parts[2]))
            else:
                raise GraphError(f"line {lineno}: malformed edge line {line!r}")
    finally:
        if owned:
            handle.close()
    return builder.build(name=name)


def write_edge_list(graph: LabeledGraph, target: str | Path | TextIO) -> None:
    """Write ``graph`` in the edge-list format accepted by read_edge_list."""
    handle, owned = _open_for_write(target)
    try:
        handle.write(f"# {graph.name}\n")
        for v in graph.vertices():
            handle.write(f"v {v} {graph.vertex_label(v)}\n")
        for eid, u, v in graph.edge_iter():
            handle.write(f"{u} {v} {graph.edge_label(eid)}\n")
    finally:
        if owned:
            handle.close()


def read_adjacency(source: str | Path | TextIO, name: str = "graph") -> LabeledGraph:
    """Parse the original Arabesque adjacency format.

    One line per vertex: ``<vertex id> <vertex label> [<neighbor id> ...]``.
    Vertex ids must be dense ``0..n-1``; each edge may be listed on one or
    both endpoint lines.
    """
    handle, owned = _open_for_read(source)
    labels: dict[int, int] = {}
    adjacency: dict[int, list[int]] = {}
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"line {lineno}: expected '<id> <label> [nbrs...]'")
            vid, label = int(parts[0]), int(parts[1])
            if vid in labels:
                raise GraphError(f"line {lineno}: duplicate vertex {vid}")
            labels[vid] = label
            adjacency[vid] = [int(p) for p in parts[2:]]
    finally:
        if owned:
            handle.close()

    n = len(labels)
    if set(labels) != set(range(n)):
        raise GraphError("adjacency format requires dense vertex ids 0..n-1")

    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for v in range(n):
        for u in adjacency[v]:
            if not 0 <= u < n:
                raise GraphError(f"vertex {v} lists missing neighbor {u}")
            key = (v, u) if v < u else (u, v)
            if key not in seen:
                seen.add(key)
                edges.append(key)
    return LabeledGraph([labels[v] for v in range(n)], edges, name=name)


def write_adjacency(graph: LabeledGraph, target: str | Path | TextIO) -> None:
    """Write ``graph`` in the original Arabesque adjacency format."""
    handle, owned = _open_for_write(target)
    try:
        for v in graph.vertices():
            neighbors = " ".join(str(u) for u in graph.neighbors(v))
            suffix = f" {neighbors}" if neighbors else ""
            handle.write(f"{v} {graph.vertex_label(v)}{suffix}\n")
    finally:
        if owned:
            handle.close()


def graph_from_string(text: str, name: str = "graph") -> LabeledGraph:
    """Parse an edge-list graph from an inline string (tests, examples)."""
    return read_edge_list(io.StringIO(text), name=name)
