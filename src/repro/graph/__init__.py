"""Graph substrate: immutable labeled graphs, builders, generators, I/O."""

from .bitset import bitset_count, from_bitset, iter_bitset, to_bitset
from .builder import GraphBuilder
from .generators import (
    assign_labels,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    graph_from_edges,
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_regularish_graph,
    star_graph,
    strip_labels,
)
from .graph import GraphError, LabeledGraph
from .io import (
    graph_from_string,
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)

__all__ = [
    "GraphBuilder",
    "GraphError",
    "LabeledGraph",
    "assign_labels",
    "bitset_count",
    "complete_graph",
    "cycle_graph",
    "from_bitset",
    "gnm_random_graph",
    "graph_from_edges",
    "graph_from_string",
    "grid_graph",
    "iter_bitset",
    "path_graph",
    "powerlaw_graph",
    "random_regularish_graph",
    "read_adjacency",
    "read_edge_list",
    "star_graph",
    "strip_labels",
    "to_bitset",
    "write_adjacency",
    "write_edge_list",
]
