"""Mutable builder producing immutable :class:`~repro.graph.LabeledGraph`.

The builder tolerates arbitrary (non-dense, non-integer) vertex names and
compacts them to the dense incremental ids Arabesque requires (paper,
section 4.3).  Duplicate edges are merged silently, which makes the builder
safe to feed from noisy edge lists (the public datasets the paper uses are
plain crawled edge lists with duplicates).
"""

from __future__ import annotations

from typing import Hashable

from .graph import GraphError, LabeledGraph


class GraphBuilder:
    """Accumulates vertices and edges, then freezes into a LabeledGraph.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_vertex("a", label=1)
    0
    >>> b.add_vertex("b", label=2)
    1
    >>> b.add_edge("a", "b", label=7)
    0
    >>> g = b.build(name="tiny")
    >>> (g.num_vertices, g.num_edges)
    (2, 1)
    """

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._labels: list[int] = []
        self._edges: list[tuple[int, int]] = []
        self._edge_labels: list[int] = []
        self._edge_keys: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added so far."""
        return len(self._edges)

    def add_vertex(self, key: Hashable, label: int = 0) -> int:
        """Register vertex ``key`` with ``label``; returns its dense id.

        Re-adding an existing key returns the existing id and updates the
        label (last writer wins), so callers can add edges first and attach
        labels in a second pass.
        """
        vid = self._ids.get(key)
        if vid is None:
            vid = len(self._labels)
            self._ids[key] = vid
            self._labels.append(int(label))
        else:
            self._labels[vid] = int(label)
        return vid

    def has_vertex(self, key: Hashable) -> bool:
        """Whether ``key`` has been registered."""
        return key in self._ids

    def vertex_id(self, key: Hashable) -> int:
        """Dense id previously assigned to ``key``."""
        try:
            return self._ids[key]
        except KeyError:
            raise GraphError(f"unknown vertex key: {key!r}") from None

    def add_edge(self, u: Hashable, v: Hashable, label: int = 0) -> int:
        """Add an undirected edge, creating endpoints (label 0) on demand.

        Duplicate edges are merged; the first label wins.  Self-loops are
        rejected.  Returns the edge id.
        """
        uid = self._ids.get(u)
        if uid is None:
            uid = self.add_vertex(u)
        vid = self._ids.get(v)
        if vid is None:
            vid = self.add_vertex(v)
        if uid == vid:
            raise GraphError(f"self-loop on {u!r}")
        key = (uid, vid) if uid < vid else (vid, uid)
        eid = self._edge_keys.get(key)
        if eid is None:
            eid = len(self._edges)
            self._edge_keys[key] = eid
            self._edges.append(key)
            self._edge_labels.append(int(label))
        return eid

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether an edge between ``u`` and ``v`` was added."""
        if u not in self._ids or v not in self._ids:
            return False
        uid, vid = self._ids[u], self._ids[v]
        key = (uid, vid) if uid < vid else (vid, uid)
        return key in self._edge_keys

    def build(self, name: str = "graph") -> LabeledGraph:
        """Freeze into an immutable :class:`LabeledGraph`."""
        return LabeledGraph(self._labels, self._edges, self._edge_labels, name=name)
