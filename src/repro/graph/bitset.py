"""Big-int bitsets over dense integer ids.

The CSR graph core represents every hot set — adjacency rows, candidate
pools, label indexes, FSM domain whitelists — as one Python ``int`` whose
bit ``i`` is set iff id ``i`` is a member.  Python's arbitrary-precision
integers make this a zero-dependency bitset: intersection, union, and
subtraction are single C-level ``&``/``|``/``& ~`` operations over machine
words instead of per-element hash probes, which is exactly the flat
adjacency-intersection kernel systems like Peregrine build their matching
engines on.

Determinism note: decoding a bitset always yields ids in **ascending**
order (bit position order), which is the sorted order every pool in this
codebase emits.  Converting ``sorted(pool)`` pipelines to
``from_bitset(pool_bits)`` therefore changes no observable sequence — the
cross-backend ``canonical_signature`` byte-identity oracle holds.

Membership tests use shifts: ``(bits >> i) & 1``.  The empty bitset is
``0`` (falsy) — code that distinguishes "no whitelist" from "empty
whitelist" must compare against ``None``, never truthiness.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: For each byte value, the positions of its set bits, ascending.
_BYTE_BITS: tuple[tuple[int, ...], ...] = tuple(
    tuple(i for i in range(8) if byte >> i & 1) for byte in range(256)
)


def to_bitset(ids: Iterable[int]) -> int:
    """Pack non-negative integer ids into one big-int bitset."""
    bits = 0
    for i in ids:
        bits |= 1 << i
    return bits


def from_bitset(bits: int) -> tuple[int, ...]:
    """Unpack a bitset into its member ids, ascending (== sorted).

    Decodes byte-at-a-time through a 256-entry table, so the cost is
    O(universe/8 + members) rather than per-member big-int arithmetic.
    """
    if not bits:
        return ()
    out: list[int] = []
    append = out.append
    base = 0
    for byte in bits.to_bytes((bits.bit_length() + 7) // 8, "little"):
        if byte:
            for offset in _BYTE_BITS[byte]:
                append(base + offset)
        base += 8
    return tuple(out)


def iter_bitset(bits: int) -> Iterator[int]:
    """Lazily yield a bitset's member ids in ascending order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def bitset_count(bits: int) -> int:
    """Number of members (popcount)."""
    return bits.bit_count()
