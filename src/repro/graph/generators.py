"""Seeded random-graph generators used to synthesize the paper's datasets.

The evaluation graphs of the paper are either citation/co-authorship networks
(scale-free, heavy-tailed degrees: CiteSeer, MiCo, Patents) or crawled social
networks (Youtube, SN, Instagram).  Two generator families cover them:

* :func:`gnm_random_graph` — uniform random (Erdős–Rényi G(n, m)), used where
  density matters more than skew;
* :func:`powerlaw_graph` — preferential attachment (Barabási–Albert style)
  producing the scale-free degree distributions that drive the hotspot
  phenomena in the paper's TLV experiments (section 6.2 notes "CiteSeer is a
  scale-free graph thus affecting the scalability of TLV").

Labels are attached separately with :func:`assign_labels` so the same
topology can be reused across labeled (FSM) and unlabeled (motifs/cliques)
experiments.  All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import random
from typing import Sequence

from .graph import GraphError, LabeledGraph


def gnm_random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "gnm",
) -> LabeledGraph:
    """Uniform random simple graph with exactly ``num_edges`` edges.

    Sampling is rejection-based over vertex pairs, which is fast while the
    graph is sparse (all paper datasets have density well below 1%).
    """
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"cannot place {num_edges} edges in a {num_vertices}-vertex simple graph"
        )
    rng = random.Random(seed)
    chosen: set[tuple[int, int]] = set()
    # Dense request: enumerate and sample, avoiding rejection stalls.
    if max_edges and num_edges > max_edges // 2:
        population = [
            (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
        ]
        edges = rng.sample(population, num_edges)
        return LabeledGraph([0] * num_vertices, edges, name=name)
    while len(chosen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        chosen.add(key)
    return LabeledGraph([0] * num_vertices, sorted(chosen), name=name)


def powerlaw_graph(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int = 0,
    name: str = "powerlaw",
) -> LabeledGraph:
    """Preferential-attachment graph (Barabási–Albert flavor).

    Each arriving vertex attaches ``edges_per_vertex`` edges to existing
    vertices chosen proportionally to their current degree, producing a
    power-law degree tail.  ``edges_per_vertex`` may be fractional on
    average by alternating attachment counts; here it must be an integer
    >= 1 and the first ``edges_per_vertex + 1`` vertices form a seed clique
    so early attachments have targets.
    """
    m = edges_per_vertex
    if m < 1:
        raise GraphError("edges_per_vertex must be >= 1")
    if num_vertices < m + 1:
        raise GraphError("need at least edges_per_vertex + 1 vertices")
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    # repeated_targets holds one entry per edge endpoint: sampling from it is
    # sampling proportional to degree.
    repeated_targets: list[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v))
            repeated_targets.append(u)
            repeated_targets.append(v)
    for v in range(m + 1, num_vertices):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated_targets))
        for u in targets:
            edges.append((u, v) if u < v else (v, u))
            repeated_targets.append(u)
            repeated_targets.append(v)
    return LabeledGraph([0] * num_vertices, edges, name=name)


def random_regularish_graph(
    num_vertices: int,
    degree: int,
    seed: int = 0,
    name: str = "regularish",
) -> LabeledGraph:
    """Near-regular random graph via a configuration-model style pairing.

    Used for dense social-network-like substrates (the SN graph has average
    degree 79 with low skew compared to citation graphs).  Collisions
    (self-loops, duplicates) are dropped, so degrees are approximately
    ``degree``.
    """
    if degree >= num_vertices:
        raise GraphError("degree must be below num_vertices")
    rng = random.Random(seed)
    stubs = [v for v in range(num_vertices) for _ in range(degree)]
    rng.shuffle(stubs)
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return LabeledGraph([0] * num_vertices, edges, name=name)


def assign_labels(
    graph: LabeledGraph,
    num_labels: int,
    seed: int = 0,
    skew: float = 0.0,
) -> LabeledGraph:
    """Return a copy of ``graph`` with random vertex labels ``0..num_labels-1``.

    ``skew`` interpolates between uniform label frequencies (0.0) and a
    Zipf-like distribution (1.0) where label ``i`` has weight ``1/(i+1)``.
    Real labeled graphs (CiteSeer areas, MiCo fields of interest) have
    skewed label histograms, which matters for FSM: skew concentrates
    embeddings on few patterns, the hotspot effect of section 6.2.
    """
    if num_labels < 1:
        raise GraphError("num_labels must be >= 1")
    rng = random.Random(seed)
    if skew <= 0.0:
        labels = [rng.randrange(num_labels) for _ in graph.vertices()]
    else:
        weights = [(1.0 - skew) + skew / (i + 1) for i in range(num_labels)]
        population = list(range(num_labels))
        labels = rng.choices(population, weights=weights, k=graph.num_vertices)
    return graph.relabel(labels)


def strip_labels(graph: LabeledGraph) -> LabeledGraph:
    """A copy of ``graph`` with all vertex labels set to 0.

    Motif mining "assumes the input graph is unlabeled" (paper, section 2)
    and clique mining is purely structural; the paper's Motifs/Cliques runs
    on labeled datasets (MiCo, Youtube) ignore the labels — Table 4 reports
    only 3 quick patterns for Motifs-MiCo, which is only possible with
    labels stripped.
    """
    return graph.relabel([0] * graph.num_vertices)


def grid_graph(rows: int, cols: int, name: str = "grid") -> LabeledGraph:
    """Deterministic 2-D grid — handy as a worst case for cliques (none > 2)."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return LabeledGraph([0] * (rows * cols), edges, name=name)


def complete_graph(num_vertices: int, name: str = "complete") -> LabeledGraph:
    """K_n — the worst case for clique mining and a canonicality stress test."""
    edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    return LabeledGraph([0] * num_vertices, edges, name=name)


def path_graph(num_vertices: int, name: str = "path") -> LabeledGraph:
    """Simple path P_n."""
    edges = [(v, v + 1) for v in range(num_vertices - 1)]
    return LabeledGraph([0] * max(num_vertices, 0), edges, name=name)


def cycle_graph(num_vertices: int, name: str = "cycle") -> LabeledGraph:
    """Simple cycle C_n (requires n >= 3)."""
    if num_vertices < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    edges = [(u, v) if u < v else (v, u) for u, v in edges]
    return LabeledGraph([0] * num_vertices, edges, name=name)


def star_graph(num_leaves: int, name: str = "star") -> LabeledGraph:
    """Star with one hub and ``num_leaves`` leaves — the TLV hotspot shape."""
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return LabeledGraph([0] * (num_leaves + 1), edges, name=name)


def graph_from_edges(
    edges: Sequence[tuple[int, int]],
    vertex_labels: Sequence[int] | None = None,
    edge_labels: Sequence[int] | None = None,
    name: str = "graph",
) -> LabeledGraph:
    """Small-graph literal: infer the vertex count from the edge list."""
    n = 0
    for u, v in edges:
        n = max(n, u + 1, v + 1)
    if vertex_labels is None:
        vertex_labels = [0] * n
    elif len(vertex_labels) < n:
        raise GraphError("vertex_labels shorter than edge list requires")
    return LabeledGraph(vertex_labels, list(edges), edge_labels, name=name)
