"""Giraph-style aggregators.

Arabesque executes its user-level aggregation "using standard Giraph
aggregators" (paper, section 4.3).  An aggregator collects values from all
workers during a superstep; the reduced result becomes visible to every
worker at the start of the next superstep.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")


class Aggregator(Generic[T]):
    """A named commutative/associative reduction across workers.

    Parameters
    ----------
    initial:
        Zero-argument factory producing the identity value for a superstep.
    combine:
        Binary function folding one contributed value into the accumulator.
    """

    def __init__(self, initial: Callable[[], T], combine: Callable[[T, Any], T]):
        self._initial = initial
        self._combine = combine
        self._current: T = initial()
        self._previous: T = initial()

    def aggregate(self, value: Any) -> None:
        """Contribute ``value`` to the current superstep's accumulation."""
        self._current = self._combine(self._current, value)

    def flip(self) -> None:
        """Superstep barrier: publish current value, reset the accumulator."""
        self._previous = self._current
        self._current = self._initial()

    @property
    def value(self) -> T:
        """The value accumulated over the *previous* superstep."""
        return self._previous


def sum_aggregator() -> Aggregator[int]:
    """Counts/sums integers (used for halting votes and statistics)."""
    return Aggregator(initial=lambda: 0, combine=lambda acc, v: acc + v)


def max_aggregator() -> Aggregator[float]:
    """Keeps the maximum contributed value."""
    return Aggregator(initial=lambda: float("-inf"), combine=max)

def min_aggregator() -> Aggregator[float]:
    """Keeps the minimum contributed value."""
    return Aggregator(initial=lambda: float("inf"), combine=min)


def list_aggregator() -> Aggregator[list]:
    """Concatenates contributed items (order: worker id, then send order)."""
    def combine(acc: list, value: Any) -> list:
        acc.append(value)
        return acc

    return Aggregator(initial=list, combine=combine)


def dict_merge_aggregator(merge_value: Callable[[Any, Any], Any]) -> Aggregator[dict]:
    """Merges contributed ``(key, value)`` pairs into a dict.

    Collisions are resolved with ``merge_value(old, new)`` — the primitive
    behind pattern-keyed aggregation in the Arabesque layer.
    """
    def combine(acc: dict, pair: tuple[Any, Any]) -> dict:
        key, value = pair
        if key in acc:
            acc[key] = merge_value(acc[key], value)
        else:
            acc[key] = value
        return acc

    return Aggregator(initial=dict, combine=combine)
