"""Execution metrics collected by the BSP engine.

These numbers feed the simulated-distribution cost model
(:mod:`repro.bsp.cost_model`): per-worker *work units* capture compute load
(and therefore imbalance/hotspots), message and byte counters capture
communication volume.  Workers report work units through
``BspContext.add_work``; message sizes are metered automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SuperstepMetrics:
    """Everything measured during one superstep."""

    superstep: int
    work_units: dict[int, float] = field(default_factory=dict)
    messages_sent: int = 0
    bytes_sent: int = 0
    broadcast_messages: int = 0
    broadcast_bytes: int = 0
    wall_seconds: float = 0.0
    #: Free-form per-phase timing breakdown (used for the Figure 12 bench).
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def add_work(self, worker_id: int, units: float) -> None:
        """Accumulate compute work units for ``worker_id``."""
        self.work_units[worker_id] = self.work_units.get(worker_id, 0.0) + units

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Accumulate wall time attributed to a named phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def absorb_worker(
        self,
        worker_id: int,
        work_units: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        """Fold one worker task's metering delta into this superstep.

        Worker tasks (see :mod:`repro.runtime.tasks`) meter themselves into
        plain numbers and dicts; the engine calls this at the step barrier.
        Phase times sum across workers, i.e. they are aggregate CPU seconds
        spent in each phase, not critical-path time.
        """
        self.add_work(worker_id, work_units)
        if phase_seconds:
            for phase, seconds in phase_seconds.items():
                self.add_phase_time(phase, seconds)

    @property
    def total_work(self) -> float:
        """Sum of work units across workers."""
        return sum(self.work_units.values())

    @property
    def max_work(self) -> float:
        """The busiest worker's load — the superstep's critical path."""
        return max(self.work_units.values(), default=0.0)

    def imbalance(self) -> float:
        """max/mean work ratio: 1.0 is perfect balance."""
        if not self.work_units:
            return 1.0
        mean = self.total_work / len(self.work_units)
        if mean == 0.0:
            return 1.0
        return self.max_work / mean


@dataclass
class RunMetrics:
    """Metrics for a whole BSP run (one exploration job)."""

    num_workers: int
    supersteps: list[SuperstepMetrics] = field(default_factory=list)

    def new_superstep(self) -> SuperstepMetrics:
        """Open metrics for the next superstep and return them."""
        metrics = SuperstepMetrics(superstep=len(self.supersteps))
        self.supersteps.append(metrics)
        return metrics

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """All point-to-point messages across the run."""
        return sum(step.messages_sent for step in self.supersteps)

    @property
    def total_bytes(self) -> int:
        """All point-to-point bytes across the run."""
        return sum(step.bytes_sent for step in self.supersteps)

    @property
    def total_broadcast_bytes(self) -> int:
        """All broadcast bytes across the run."""
        return sum(step.broadcast_bytes for step in self.supersteps)

    @property
    def total_work(self) -> float:
        """All compute work units across the run."""
        return sum(step.total_work for step in self.supersteps)

    @property
    def total_wall_seconds(self) -> float:
        """Measured wall-clock across supersteps (sequential execution)."""
        return sum(step.wall_seconds for step in self.supersteps)

    def phase_totals(self) -> dict[str, float]:
        """Per-phase wall time summed over all supersteps."""
        totals: dict[str, float] = {}
        for step in self.supersteps:
            for phase, seconds in step.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals
