"""Deterministic cost model converting BSP metrics into simulated time.

The paper's scalability results (Figures 7 and 8, Table 3) were measured on
20 servers with 32 threads and a 10 GbE network.  We do not have that
testbed; per DESIGN.md (substitution 1) we recover *simulated* makespans
from quantities the in-process engine measures exactly:

* per-worker **work units** — a superstep lasts as long as its busiest
  worker, so hotspots (the TLV/TLP failure mode) directly stretch the
  critical path;
* **point-to-point traffic** — per-message overhead plus bytes over the
  aggregate bandwidth of the cluster (sharded across workers);
* **broadcast traffic** — global state (e.g. merged ODAGs) must reach every
  worker, so its cost *does not shrink* as workers are added; this is the
  ODAG broadcast ceiling the paper observes for pattern-rich workloads;
* a fixed per-superstep **barrier**.

The defaults are calibrated to commodity-cluster magnitudes (10 GbE, ~1 µs
per fine-grained work unit, ~5 µs per small message).  Only *ratios* between
configurations are reported by the benchmarks, which makes the shapes robust
to the absolute constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import RunMetrics, SuperstepMetrics


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the simulated cluster.

    ``seconds_per_broadcast_byte`` models the per-server cost of receiving
    and de-serializing broadcast state (merged ODAGs): every worker pays it
    for the *whole* broadcast regardless of cluster size — "the per-server
    computational cost of de-serializing and filtering out embeddings
    remains constant" (paper, section 6.3).  This is the term that caps the
    scalability of pattern-rich workloads.
    """

    seconds_per_work_unit: float = 1e-6
    seconds_per_message: float = 5e-6
    bytes_per_second: float = 1.25e9  # 10 GbE
    seconds_per_broadcast_byte: float = 2e-8  # ~50 MB/s deserialization
    barrier_seconds: float = 0.002

    def superstep_seconds(self, step: SuperstepMetrics, num_workers: int) -> float:
        """Simulated duration of one superstep on ``num_workers`` workers."""
        compute = step.max_work * self.seconds_per_work_unit
        p2p = (
            step.messages_sent * self.seconds_per_message
            + step.bytes_sent / self.bytes_per_second
        ) / max(num_workers, 1)
        if num_workers > 1:
            fan_out = (num_workers - 1) / num_workers
        else:
            fan_out = 0.0
        broadcast = step.broadcast_bytes * fan_out / self.bytes_per_second
        # Constant per server: does not shrink as workers are added.
        deserialize = step.broadcast_bytes * fan_out * self.seconds_per_broadcast_byte
        return compute + p2p + broadcast + deserialize + self.barrier_seconds

    def makespan(self, run: RunMetrics) -> float:
        """Simulated end-to-end time of a run (sums its supersteps)."""
        return sum(
            self.superstep_seconds(step, run.num_workers) for step in run.supersteps
        )


def speedup_curve(
    makespans: dict[int, float], baseline_workers: int | None = None
) -> dict[int, float]:
    """Speedups relative to the configuration with ``baseline_workers``.

    ``makespans`` maps worker count to simulated time.  When
    ``baseline_workers`` is None the smallest configuration is the baseline
    (the paper's Figure 8 uses 5 servers as the reference).
    """
    if not makespans:
        return {}
    if baseline_workers is None:
        baseline_workers = min(makespans)
    base = makespans[baseline_workers]
    return {
        workers: base / seconds if seconds > 0 else float("inf")
        for workers, seconds in sorted(makespans.items())
    }
