"""An in-process Bulk Synchronous Parallel engine — the Giraph substitute.

Arabesque "can execute on top of any system supporting the BSP model" and is
implemented "as a layer on top of Giraph", using Giraph vertices "simply as
workers that bear no relationship to any specific vertex in the input graph"
(paper, section 4.3).  This module is that substrate: a deterministic BSP
engine with

* logical **workers** implementing a ``compute`` callback,
* **point-to-point and broadcast messages** delivered at the next superstep,
  with wire-size accounting (:mod:`.messages`),
* **aggregators** with Giraph semantics (:mod:`.aggregator`),
* Pregel-style **halting** (workers vote to halt; messages wake them), and
* per-superstep :class:`~repro.bsp.metrics.SuperstepMetrics`.

Workers run sequentially inside one Python process (deterministically, in
worker-id order); distribution is *simulated*.  What would be parallel
wall-clock on a cluster is recovered from the metered per-worker work and
communication volume by :mod:`repro.bsp.cost_model` — see DESIGN.md
(substitution 1) for why this preserves the paper's scalability phenomena.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from .aggregator import Aggregator
from .messages import Message, estimate_size
from .metrics import RunMetrics, SuperstepMetrics


class BspError(RuntimeError):
    """Raised on protocol violations (bad worker ids, missing aggregators)."""


class BspContext:
    """Per-superstep facade handed to ``Worker.compute``.

    Exposes the worker's identity, messaging, aggregation, work metering,
    and halting — the Giraph ``Vertex``/``WorkerContext`` surface collapsed
    into one object.
    """

    def __init__(
        self,
        worker_id: int,
        num_workers: int,
        superstep: int,
        outbox: list[Message],
        aggregators: Mapping[str, Aggregator],
        metrics: SuperstepMetrics,
    ) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.superstep = superstep
        self._outbox = outbox
        self._aggregators = aggregators
        self._metrics = metrics
        self._halted = False

    # -- messaging ------------------------------------------------------
    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to worker ``dst``, delivered next superstep."""
        if not 0 <= dst < self.num_workers:
            raise BspError(f"worker {self.worker_id} sent to missing worker {dst}")
        message = Message(self.worker_id, dst, payload)
        self._outbox.append(message)
        self._metrics.messages_sent += 1
        self._metrics.bytes_sent += message.wire_size()

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every worker (including self).

        Metered as one logical broadcast: the payload is serialized once and
        replicated by the network layer, so bytes are counted once under
        ``broadcast_bytes`` (the cost model expands them by fan-out).
        """
        size = estimate_size(payload)
        self._metrics.broadcast_messages += 1
        self._metrics.broadcast_bytes += size
        for dst in range(self.num_workers):
            self._outbox.append(Message(self.worker_id, dst, payload))

    # -- aggregation ----------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to aggregator ``name`` (visible next step)."""
        try:
            self._aggregators[name].aggregate(value)
        except KeyError:
            raise BspError(f"unknown aggregator {name!r}") from None

    def get_aggregate(self, name: str) -> Any:
        """Read aggregator ``name``'s value from the previous superstep."""
        try:
            return self._aggregators[name].value
        except KeyError:
            raise BspError(f"unknown aggregator {name!r}") from None

    # -- metering and halting --------------------------------------------
    def add_work(self, units: float = 1.0) -> None:
        """Report compute work units for load accounting."""
        self._metrics.add_work(self.worker_id, units)

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Attribute wall time to a named phase (Figure 12 breakdown)."""
        self._metrics.add_phase_time(phase, seconds)

    def vote_to_halt(self) -> None:
        """Pregel halting: stay inactive until a message arrives."""
        self._halted = True


class Worker:
    """Base class for BSP workers.  Subclasses override :meth:`compute`."""

    def setup(self, worker_id: int, num_workers: int) -> None:
        """Called once before superstep 0."""

    def compute(self, ctx: BspContext, messages: Sequence[Any]) -> None:
        """Called every superstep with the messages delivered this step."""
        raise NotImplementedError


class BspEngine:
    """Drives workers through supersteps until global quiescence.

    Parameters
    ----------
    workers:
        The worker objects; worker ids are their positions.
    aggregators:
        Optional named aggregators available to all workers.
    max_supersteps:
        Safety bound; exceeding it raises :class:`BspError` (a graph mining
        job that fails to terminate indicates a broken filter).
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        aggregators: Mapping[str, Aggregator] | None = None,
        max_supersteps: int = 1000,
    ) -> None:
        if not workers:
            raise BspError("need at least one worker")
        self._workers = list(workers)
        self._aggregators = dict(aggregators or {})
        self._max_supersteps = max_supersteps
        self.metrics = RunMetrics(num_workers=len(self._workers))

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def add_aggregator(self, name: str, aggregator: Aggregator) -> None:
        """Register an aggregator before :meth:`run`."""
        self._aggregators[name] = aggregator

    def run(self) -> RunMetrics:
        """Execute supersteps until all workers halt with no mail in flight."""
        num_workers = self.num_workers
        for worker_id, worker in enumerate(self._workers):
            worker.setup(worker_id, num_workers)

        inboxes: list[list[Any]] = [[] for _ in range(num_workers)]
        halted = [False] * num_workers
        for superstep in range(self._max_supersteps):
            metrics = self.metrics.new_superstep()
            outbox: list[Message] = []
            started = time.perf_counter()
            for worker_id, worker in enumerate(self._workers):
                mail = inboxes[worker_id]
                if halted[worker_id] and not mail:
                    continue
                ctx = BspContext(
                    worker_id,
                    num_workers,
                    superstep,
                    outbox,
                    self._aggregators,
                    metrics,
                )
                worker.compute(ctx, mail)
                halted[worker_id] = ctx._halted
            metrics.wall_seconds = time.perf_counter() - started

            for aggregator in self._aggregators.values():
                aggregator.flip()

            inboxes = [[] for _ in range(num_workers)]
            for message in outbox:
                inboxes[message.dst].append(message.payload)
            if all(halted) and not outbox:
                return self.metrics
            # Messages wake halted workers (Pregel semantics).
            for worker_id in range(num_workers):
                if inboxes[worker_id]:
                    halted[worker_id] = False
        raise BspError(f"no quiescence after {self._max_supersteps} supersteps")
