"""Messages and wire-size accounting for the BSP substrate.

The original Arabesque runs on Giraph over a 10 GbE network; communication
volume is a first-order effect in its evaluation (TLV exchanges 120 million
messages where Arabesque needs 137 thousand — section 6.2).  Our in-process
substitute therefore meters every payload with :func:`estimate_size`, a
deterministic model of a compact binary encoding:

* ints are 4 bytes (Arabesque stores vertex/edge ids as Java ints);
* containers cost a 4-byte length header plus their elements;
* strings cost a header plus one byte per character.

The absolute constants matter less than their ratios — the evaluation
reproduces *relative* sizes (ODAG vs embedding lists, TLV vs TLE traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

INT_BYTES = 4
LENGTH_HEADER_BYTES = 4


def estimate_size(payload: Any) -> int:
    """Estimated wire size of ``payload`` in bytes under the model above.

    Supports the payload vocabulary used across the system: ints, floats,
    bools, strings, None, and arbitrarily nested tuples/lists/sets/dicts.
    Objects may opt in by defining ``wire_size() -> int``.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return INT_BYTES
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return LENGTH_HEADER_BYTES + len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return LENGTH_HEADER_BYTES + sum(estimate_size(item) for item in payload)
    if isinstance(payload, dict):
        return LENGTH_HEADER_BYTES + sum(
            estimate_size(k) + estimate_size(v) for k, v in payload.items()
        )
    wire_size = getattr(payload, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    raise TypeError(f"cannot estimate wire size of {type(payload).__name__}")


@dataclass(frozen=True)
class Message:
    """A point-to-point message between workers.

    ``src``/``dst`` are worker ids; ``payload`` is any sizeable object.
    """

    src: int
    dst: int
    payload: Any

    def wire_size(self) -> int:
        """Payload size plus an 8-byte routing header."""
        return 2 * INT_BYTES + estimate_size(self.payload)
