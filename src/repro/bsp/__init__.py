"""BSP substrate: in-process Giraph substitute with metered communication."""

from .aggregator import (
    Aggregator,
    dict_merge_aggregator,
    list_aggregator,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from .cost_model import CostModel, speedup_curve
from .engine import BspContext, BspEngine, BspError, Worker
from .messages import Message, estimate_size
from .metrics import RunMetrics, SuperstepMetrics

__all__ = [
    "Aggregator",
    "BspContext",
    "BspEngine",
    "BspError",
    "CostModel",
    "Message",
    "RunMetrics",
    "SuperstepMetrics",
    "Worker",
    "dict_merge_aggregator",
    "estimate_size",
    "list_aggregator",
    "max_aggregator",
    "min_aggregator",
    "speedup_curve",
    "sum_aggregator",
]
