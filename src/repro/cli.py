"""Command-line interface: run the bundled mining applications on a graph.

Usage::

    python -m repro motifs  GRAPH --max-size 3
    python -m repro cliques GRAPH --max-size 4 [--maximal]
    python -m repro fsm     GRAPH --support 100 [--max-edges 3]
    python -m repro stats   GRAPH

``GRAPH`` is an edge-list file (see :func:`repro.graph.read_edge_list`) or
one of the built-in synthetic dataset names (``citeseer``, ``mico``,
``patents``, ``youtube``, ``sn``, ``instagram``); built-ins accept
``--scale`` to resize.  Results are printed as plain text.

``--num-workers`` partitions the exploration across N logical workers and
reports the metered distribution; ``--backend`` picks the execution runtime
that actually runs them (``serial``, ``thread``, or ``process`` — see
:mod:`repro.runtime`).  ``--backend process --num-workers N`` uses N OS
processes for a real multi-core speedup; results are identical across
backends and worker counts by construction.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    MaximalCliqueFinding,
    MotifCounting,
    cliques_by_size,
    frequent_patterns,
    motif_counts,
)
from .core import ArabesqueConfig, BACKENDS, SERIAL_BACKEND, run_computation
from .datasets import DATASETS, dataset_statistics
from .graph import LabeledGraph, read_edge_list, strip_labels


def load_graph(spec: str, scale: float | None) -> LabeledGraph:
    """A dataset name or an edge-list path -> LabeledGraph."""
    if spec in DATASETS:
        factory = DATASETS[spec]
        return factory(scale=scale) if scale is not None else factory()
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"error: {spec!r} is neither a dataset name "
            f"({', '.join(sorted(DATASETS))}) nor a readable file"
        )
    return read_edge_list(path, name=path.stem)


def run_config(args: argparse.Namespace, **overrides) -> ArabesqueConfig:
    """Engine configuration from the shared CLI flags."""
    return ArabesqueConfig(
        num_workers=args.workers, backend=args.backend, **overrides
    )


def _print_run_summary(result) -> None:
    print(f"# steps={result.num_steps} processed={result.total_processed:,} "
          f"makespan={result.makespan():.4f}s "
          f"messages={result.metrics.total_messages:,}")


def cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    stats = dataset_statistics(graph)
    print(f"{'dataset':<16} {'V':>9} {'E':>11} {'labels':>6} {'avg deg':>8}")
    print(stats.row())
    return 0


def cmd_motifs(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    if not args.labeled:
        graph = strip_labels(graph)
    config = run_config(args, collect_outputs=False)
    result = run_computation(graph, MotifCounting(args.max_size), config)
    for pattern, count in sorted(
        motif_counts(result).items(),
        key=lambda kv: (kv[0].num_vertices, -kv[1]),
    ):
        edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
        print(f"motif v={pattern.num_vertices} edges=[{edges}] count={count:,}")
    _print_run_summary(result)
    return 0


def cmd_cliques(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    if args.maximal:
        app = MaximalCliqueFinding(max_size=args.max_size)
    else:
        app = CliqueFinding(max_size=args.max_size, min_size=args.min_size)
    config = run_config(args, output_limit=args.limit)
    result = run_computation(graph, app, config)
    for size, cliques in sorted(cliques_by_size(result).items()):
        print(f"size {size}: {len(cliques):,} cliques")
        if args.verbose:
            for clique in cliques[:10]:
                print(f"  {clique}")
    _print_run_summary(result)
    return 0


def cmd_fsm(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    config = run_config(args, collect_outputs=False)
    app = FrequentSubgraphMining(args.support, max_edges=args.max_edges)
    result = run_computation(graph, app, config)
    for pattern, support in sorted(
        frequent_patterns(result, args.support).items(),
        key=lambda kv: (kv[0].num_edges, -kv[1]),
    ):
        labels = "/".join(map(str, pattern.vertex_labels))
        edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
        print(f"pattern labels=[{labels}] edges=[{edges}] support={support}")
    _print_run_summary(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arabesque reproduction: distributed graph mining",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("graph", help="edge-list file or dataset name")
        sub.add_argument("--scale", type=float, default=None,
                         help="scale factor for built-in datasets")
        sub.add_argument("--num-workers", "--workers", dest="workers",
                         type=int, default=1, metavar="N",
                         help="logical workers the exploration is "
                              "partitioned over (default 1); results never "
                              "depend on this")
        sub.add_argument("--backend", choices=BACKENDS,
                         default=SERIAL_BACKEND,
                         help="execution runtime for the worker tasks: "
                              "'serial' runs them in one loop, 'thread' on "
                              "a thread pool (GIL-bound on standard "
                              "CPython), 'process' on one OS process per "
                              "worker chunk for real multi-core speedup "
                              "(default: serial)")

    stats = subparsers.add_parser("stats", help="print dataset statistics")
    common(stats)
    stats.set_defaults(handler=cmd_stats)

    motifs = subparsers.add_parser("motifs", help="count motifs")
    common(motifs)
    motifs.add_argument("--max-size", type=int, default=3)
    motifs.add_argument("--labeled", action="store_true",
                        help="keep vertex labels (labeled motifs)")
    motifs.set_defaults(handler=cmd_motifs)

    cliques = subparsers.add_parser("cliques", help="enumerate cliques")
    common(cliques)
    cliques.add_argument("--max-size", type=int, default=4)
    cliques.add_argument("--min-size", type=int, default=3)
    cliques.add_argument("--maximal", action="store_true",
                         help="report only maximal cliques")
    cliques.add_argument("--limit", type=int, default=100_000,
                         help="cap on collected cliques")
    cliques.add_argument("--verbose", action="store_true")
    cliques.set_defaults(handler=cmd_cliques)

    fsm = subparsers.add_parser("fsm", help="frequent subgraph mining")
    common(fsm)
    fsm.add_argument("--support", type=int, required=True,
                     help="MNI support threshold")
    fsm.add_argument("--max-edges", type=int, default=None)
    fsm.set_defaults(handler=cmd_fsm)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
