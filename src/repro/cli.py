"""Command-line interface: run the bundled mining applications on a graph.

Usage::

    python -m repro motifs  GRAPH --max-size 3
    python -m repro cliques GRAPH --max-size 4 [--maximal]
    python -m repro fsm     GRAPH --support 100 [--max-edges 3]
    python -m repro match   GRAPH QUERY [--guided | --exhaustive]
    python -m repro stats   GRAPH

``GRAPH`` is an edge-list file (see :func:`repro.graph.read_edge_list`) or
one of the built-in synthetic dataset names (``citeseer``, ``mico``,
``patents``, ``youtube``, ``sn``, ``instagram``); built-ins accept
``--scale`` to resize.  Results are printed as plain text.

``--num-workers`` partitions the exploration across N logical workers and
reports the metered distribution; ``--backend`` picks the execution runtime
that actually runs them (``serial``, ``thread``, or ``process`` — see
:mod:`repro.runtime`).  ``--backend process --num-workers N`` uses N OS
processes for a real multi-core speedup; results are identical across
backends and worker counts by construction.

``match`` retrieves every occurrence of a query pattern — a named shape
(``triangle``, ``square``, ``wedge``, ...) or a pattern edge-list file (see
:func:`repro.plan.read_pattern_file`).  ``--exhaustive`` (default) runs the
filter-process oracle; ``--guided`` compiles the query into a pattern-aware
exploration plan (:mod:`repro.plan`) that proposes only plan-compatible
candidates — identical matches, a fraction of the candidates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    MaximalCliqueFinding,
    MotifCounting,
    cliques_by_size,
    frequent_patterns,
    match_vertex_sets,
    motif_counts,
    run_matching,
)
from .core import ArabesqueConfig, BACKENDS, SERIAL_BACKEND, run_computation
from .datasets import DATASETS, dataset_statistics
from .graph import LabeledGraph, read_edge_list, strip_labels
from .plan import NAMED_SHAPES, compile_plan, resolve_query


def load_graph(spec: str, scale: float | None) -> LabeledGraph:
    """A dataset name or an edge-list path -> LabeledGraph."""
    if spec in DATASETS:
        factory = DATASETS[spec]
        return factory(scale=scale) if scale is not None else factory()
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"error: {spec!r} is neither a dataset name "
            f"({', '.join(sorted(DATASETS))}) nor a readable file"
        )
    return read_edge_list(path, name=path.stem)


def run_config(args: argparse.Namespace, **overrides) -> ArabesqueConfig:
    """Engine configuration from the shared CLI flags."""
    return ArabesqueConfig(
        num_workers=args.workers, backend=args.backend, **overrides
    )


def _print_run_summary(result) -> None:
    print(f"# steps={result.num_steps} processed={result.total_processed:,} "
          f"makespan={result.makespan():.4f}s "
          f"messages={result.metrics.total_messages:,}")


def cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    stats = dataset_statistics(graph)
    print(f"{'dataset':<16} {'V':>9} {'E':>11} {'labels':>6} {'avg deg':>8}")
    print(stats.row())
    return 0


def cmd_motifs(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    if not args.labeled:
        graph = strip_labels(graph)
    config = run_config(args, collect_outputs=False)
    result = run_computation(graph, MotifCounting(args.max_size), config)
    for pattern, count in sorted(
        motif_counts(result).items(),
        key=lambda kv: (kv[0].num_vertices, -kv[1]),
    ):
        edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
        print(f"motif v={pattern.num_vertices} edges=[{edges}] count={count:,}")
    _print_run_summary(result)
    return 0


def cmd_cliques(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    if args.maximal:
        app = MaximalCliqueFinding(max_size=args.max_size)
    else:
        app = CliqueFinding(max_size=args.max_size, min_size=args.min_size)
    config = run_config(args, output_limit=args.limit)
    result = run_computation(graph, app, config)
    for size, cliques in sorted(cliques_by_size(result).items()):
        print(f"size {size}: {len(cliques):,} cliques")
        if args.verbose:
            for clique in cliques[:10]:
                print(f"  {clique}")
    _print_run_summary(result)
    return 0


def cmd_fsm(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    config = run_config(args, collect_outputs=False)
    app = FrequentSubgraphMining(args.support, max_edges=args.max_edges)
    result = run_computation(graph, app, config)
    for pattern, support in sorted(
        frequent_patterns(result, args.support).items(),
        key=lambda kv: (kv[0].num_edges, -kv[1]),
    ):
        labels = "/".join(map(str, pattern.vertex_labels))
        edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
        print(f"pattern labels=[{labels}] edges=[{edges}] support={support}")
    _print_run_summary(result)
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.scale)
    if not args.labeled:
        graph = strip_labels(graph)
    induced = not args.monomorphic
    config = run_config(args, output_limit=args.limit)
    # One handler for the whole matching layer: unknown shapes, malformed
    # pattern files, and disconnected queries (PlanError from compile_plan
    # in guided mode, GraphMatching's validation in exhaustive mode) all
    # exit cleanly instead of dumping a traceback.
    try:
        query = resolve_query(args.query)
        if not args.labeled and (
            any(query.vertex_labels)
            or any(label for _, _, label in query.edges)
        ):
            # The graph's labels were just stripped to 0; a labeled query
            # would silently match nothing.
            raise ValueError(
                "query pattern carries labels but graph labels are "
                "stripped by default; pass --labeled to match them"
            )
        plan = None
        if args.guided:
            plan = compile_plan(query.canonical(), induced=induced)
            print(f"plan: {plan.describe()}")
        result = run_matching(
            graph, query, induced=induced, guided=args.guided,
            config=config, plan=plan,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    mode = "guided" if args.guided else "exhaustive"
    semantics = "induced" if induced else "monomorphic"
    print(
        f"query {args.query!r} ({semantics}, {mode}): "
        f"{result.num_outputs:,} matches, "
        f"{result.total_candidates:,} candidates generated"
    )
    if args.verbose:
        for match in match_vertex_sets(result)[:20]:
            print(f"  {match}")
    _print_run_summary(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arabesque reproduction: distributed graph mining",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("graph", help="edge-list file or dataset name")
        sub.add_argument("--scale", type=float, default=None,
                         help="scale factor for built-in datasets")
        sub.add_argument("--num-workers", "--workers", dest="workers",
                         type=int, default=1, metavar="N",
                         help="logical workers the exploration is "
                              "partitioned over (default 1); results never "
                              "depend on this")
        sub.add_argument("--backend", choices=BACKENDS,
                         default=SERIAL_BACKEND,
                         help="execution runtime for the worker tasks: "
                              "'serial' runs them in one loop, 'thread' on "
                              "a thread pool (GIL-bound on standard "
                              "CPython), 'process' on one OS process per "
                              "worker chunk for real multi-core speedup "
                              "(default: serial)")

    stats = subparsers.add_parser("stats", help="print dataset statistics")
    common(stats)
    stats.set_defaults(handler=cmd_stats)

    motifs = subparsers.add_parser("motifs", help="count motifs")
    common(motifs)
    motifs.add_argument("--max-size", type=int, default=3)
    motifs.add_argument("--labeled", action="store_true",
                        help="keep vertex labels (labeled motifs)")
    motifs.set_defaults(handler=cmd_motifs)

    cliques = subparsers.add_parser("cliques", help="enumerate cliques")
    common(cliques)
    cliques.add_argument("--max-size", type=int, default=4)
    cliques.add_argument("--min-size", type=int, default=3)
    cliques.add_argument("--maximal", action="store_true",
                         help="report only maximal cliques")
    cliques.add_argument("--limit", type=int, default=100_000,
                         help="cap on collected cliques")
    cliques.add_argument("--verbose", action="store_true")
    cliques.set_defaults(handler=cmd_cliques)

    match = subparsers.add_parser(
        "match", help="retrieve all occurrences of a query pattern"
    )
    common(match)
    match.add_argument(
        "query",
        help="named query shape "
             f"({', '.join(sorted(NAMED_SHAPES))}) or a pattern "
             "edge-list file ('u v [edge_label]' lines, optional "
             "'v <id> <label>' vertex-label lines)",
    )
    strategy = match.add_mutually_exclusive_group()
    strategy.add_argument(
        "--guided", dest="guided", action="store_true", default=False,
        help="compile the query into a pattern-aware exploration plan "
             "(matching order + symmetry breaking) and only generate "
             "plan-compatible candidates",
    )
    strategy.add_argument(
        "--exhaustive", dest="guided", action="store_false",
        help="exploration-agnostic filter-process matching (default; "
             "the oracle the guided mode is validated against)",
    )
    match.add_argument(
        "--monomorphic", action="store_true",
        help="edge-subset (monomorphism) semantics instead of "
             "vertex-induced occurrences",
    )
    match.add_argument(
        "--labeled", action="store_true",
        help="keep vertex labels (query labels must match graph labels)",
    )
    match.add_argument("--limit", type=int, default=100_000,
                       help="cap on collected matches (counts stay exact)")
    match.add_argument("--verbose", action="store_true",
                       help="print the first 20 matches")
    match.set_defaults(handler=cmd_match)

    fsm = subparsers.add_parser("fsm", help="frequent subgraph mining")
    common(fsm)
    fsm.add_argument("--support", type=int, required=True,
                     help="MNI support threshold")
    fsm.add_argument("--max-edges", type=int, default=None)
    fsm.set_defaults(handler=cmd_fsm)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
