"""Command-line interface: run the bundled mining applications on a graph.

Usage::

    python -m repro motifs          GRAPH --max-size 3 [--exhaustive]
    python -m repro cliques         GRAPH --max-size 4 [--maximal]
    python -m repro maximal-cliques GRAPH --max-size 5
    python -m repro fsm             GRAPH --support 100 [--max-edges 3] [--exhaustive]
    python -m repro match           GRAPH QUERY [--exhaustive]
    python -m repro stats           GRAPH
    python -m repro resume          GRAPH RUN_DIR
    python -m repro serve           --graphs GRAPH [GRAPH ...] [--port 8080]

``GRAPH`` is an edge-list file (see :func:`repro.graph.read_edge_list`) or
one of the built-in synthetic dataset names (``citeseer``, ``mico``,
``patents``, ``youtube``, ``sn``, ``instagram``); built-ins accept
``--scale`` to resize.  Results are printed as plain text.

Every subcommand is a thin shell over the session facade
(:class:`repro.session.Miner`): one ``Miner`` is opened per invocation and
the subcommand chains its options onto a fluent query.  The shared flags
map one-to-one — ``--num-workers`` → ``.workers()``, ``--backend`` →
``.backend()`` (``serial``, ``thread``, or ``process``; ``process`` uses
one OS process per worker chunk for real multi-core speedup), and
``--storage`` → ``.storage()`` (``odag``, ``list``, ``adaptive``, or the
out-of-core ``spill``; unset lets the facade pick).  Results are
identical across backends and worker counts by construction.
``--checkpoint-dir`` snapshots the run at every BSP barrier; ``resume``
restarts a crashed run from its last barrier (docs/checkpoint.md).

``match`` retrieves every occurrence of a query pattern — a named shape
(``triangle``, ``square``, ``wedge``, ...) or a pattern edge-list file (see
:func:`repro.plan.read_pattern_file`).  Plan-guided execution is the
default, mirroring the facade: the query is compiled into a pattern-aware
exploration plan (:mod:`repro.plan`) that proposes only plan-compatible
candidates.  ``--exhaustive`` opts out into the filter-process oracle —
identical matches, many more candidates.

``motifs`` and ``fsm`` are guided by default too: ``motifs`` compiles the
whole motif batch into one multi-query plan DAG (:mod:`repro.plan.dag`)
and answers the distribution in a single engine run; ``fsm`` batches each
level's surviving candidates into one DAG run.  Both accept
``--exhaustive`` for the identical-result oracle.
"""

from __future__ import annotations

import argparse
import sys

from .core import BACKENDS, SERIAL_BACKEND, STORAGE_MODES
from .datasets import DATASETS, UnknownDatasetError, dataset_statistics, resolve
from .graph import LabeledGraph
from .plan import NAMED_SHAPES
from .session import Miner, Query


def load_graph(spec: str, scale: float | None) -> LabeledGraph:
    """A dataset name or an edge-list path -> LabeledGraph.

    Thin exit-code shell over :func:`repro.datasets.resolve`, the one
    shared name/path dispatch (the service registry uses it too).
    """
    try:
        return resolve(spec, scale=scale)
    except UnknownDatasetError as exc:
        raise SystemExit(f"error: {exc}")


def open_session(args: argparse.Namespace) -> Miner:
    """The one shared loading path: CLI args -> a mining session.

    Every subcommand goes through here, so graph resolution (dataset name
    vs. file) and ``--scale`` handling live in exactly one place.
    """
    return Miner(load_graph(args.graph, args.scale))


def configure(query: Query, args: argparse.Namespace) -> Query:
    """Chain the shared CLI flags onto a facade query.

    Handles the flags every subcommand shares — workers, backend, storage
    — plus the per-command ones when present: ``--labeled`` (subcommands
    that default to label-stripped runs chain ``.unlabeled()`` unless the
    flag is given) and ``--limit``.
    """
    query.workers(args.workers).backend(args.backend)
    if args.storage is not None:
        query.storage(args.storage)
    if getattr(args, "checkpoint_dir", None) is not None:
        query.checkpoint(args.checkpoint_dir)
    if not getattr(args, "labeled", True):
        query.unlabeled()
    limit = getattr(args, "limit", None)
    if limit is not None:
        query.limit(limit)
    return query


def _print_clique_sizes(result, verbose: bool) -> None:
    for size, cliques in sorted(result.by_size().items()):
        kind = "maximal cliques" if result.maximal else "cliques"
        print(f"size {size}: {len(cliques):,} {kind}")
        if verbose:
            for clique in cliques[:10]:
                print(f"  {clique}")


def cmd_stats(args: argparse.Namespace) -> int:
    session = open_session(args)
    stats = dataset_statistics(session.graph)
    print(f"{'dataset':<16} {'V':>9} {'E':>11} {'labels':>6} {'avg deg':>8}")
    print(stats.row())
    return 0


def cmd_motifs(args: argparse.Namespace) -> int:
    session = open_session(args)
    # One handler for the whole distribution layer: guided + collect-style
    # flag conflicts exit cleanly with the facade's loud SessionError
    # instead of dumping a traceback (mirrors cmd_match).
    try:
        query = session.motifs(max_size=args.max_size)
        if not args.guided:
            query.exhaustive()
        configure(query, args)
        if args.limit is None:
            query.collect(False)
        result = query.run()
    except ValueError as exc:  # SessionError is a ValueError
        raise SystemExit(f"error: {exc}")
    mode = "guided" if result.guided else "exhaustive"
    if result.guided and result.dag is not None:
        print(f"dag: {result.dag.describe()}")
    print(f"motifs ({mode}): max size {args.max_size}")
    for pattern, count in sorted(
        result.counts().items(),
        key=lambda kv: (kv[0].num_vertices, -kv[1]),
    ):
        edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
        print(f"motif v={pattern.num_vertices} edges=[{edges}] count={count:,}")
    print(result.summary())
    return 0


def cmd_cliques(args: argparse.Namespace) -> int:
    session = open_session(args)
    if args.maximal:
        query = session.maximal_cliques(max_size=args.max_size)
    else:
        query = session.cliques(max_size=args.max_size, min_size=args.min_size)
    result = configure(query, args).run()
    _print_clique_sizes(result, args.verbose)
    print(result.summary())
    return 0


def cmd_maximal_cliques(args: argparse.Namespace) -> int:
    session = open_session(args)
    result = configure(session.maximal_cliques(max_size=args.max_size), args).run()
    _print_clique_sizes(result, args.verbose)
    print(result.summary())
    return 0


def cmd_fsm(args: argparse.Namespace) -> int:
    session = open_session(args)
    query = configure(
        session.fsm(args.support, max_edges=args.max_edges), args
    )
    if not args.guided:
        query.exhaustive()
    result = query.collect(False).run()
    mode = "guided" if result.guided else "exhaustive"
    print(
        f"fsm ({mode}): support >= {args.support}, "
        f"{len(result.patterns())} frequent patterns"
    )
    # repr tiebreak: identical output for identical tables regardless of
    # the strategy's table insertion order (guided vs exhaustive).
    for pattern, support in sorted(
        result.patterns().items(),
        key=lambda kv: (kv[0].num_edges, -kv[1], repr(kv[0])),
    ):
        labels = "/".join(map(str, pattern.vertex_labels))
        edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
        print(f"pattern labels=[{labels}] edges=[{edges}] support={support}")
    print(result.summary())
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    session = open_session(args)
    induced = not args.monomorphic
    # One handler for the whole matching layer: unknown shapes, malformed
    # pattern files, disconnected queries, and labeled queries against a
    # stripped graph all exit cleanly instead of dumping a traceback.
    try:
        if args.explain:
            print(
                session.explain(
                    args.query, induced=induced, labeled=args.labeled
                )
            )
        query = configure(session.match(args.query, induced=induced), args)
        if not args.guided:
            query.exhaustive()
        result = query.run()
        if result.guided:
            print(f"plan: {result.plan.describe()}")
    except ValueError as exc:  # SessionError is a ValueError
        raise SystemExit(f"error: {exc}")
    mode = "guided" if result.guided else "exhaustive"
    semantics = "induced" if induced else "monomorphic"
    print(
        f"query {args.query!r} ({semantics}, {mode}): "
        f"{result.num_matches:,} matches, "
        f"{result.raw.total_candidates:,} candidates generated"
    )
    if args.verbose:
        for match in result.vertex_sets()[:20]:
            print(f"  {match}")
    print(result.summary())
    return 0


def _resumed_view(computation, raw):
    """Wrap a resumed engine record in the workload-matched result view,
    so ``resume`` prints the same body lines as the original command."""
    from .apps import (
        CliqueFinding,
        FrequentSubgraphMining,
        MaximalCliqueFinding,
        MotifCounting,
    )
    from .apps.motifs import DagMotifCounting
    from .session.results import CliqueResult, FSMResult, MiningResult, MotifResult

    if isinstance(computation, MaximalCliqueFinding):
        return CliqueResult(raw, maximal=True)
    if isinstance(computation, CliqueFinding):
        return CliqueResult(raw)
    if isinstance(computation, DagMotifCounting):
        # Both motif strategies expose the identical aggregate surface.
        return MotifResult(raw, guided=True)
    if isinstance(computation, MotifCounting):
        return MotifResult(raw, guided=False)
    if isinstance(computation, FrequentSubgraphMining):
        return FSMResult(
            raw,
            support_threshold=computation.support_threshold,
            guided=False,
        )
    return MiningResult(raw)


def cmd_resume(args: argparse.Namespace) -> int:
    import dataclasses

    from .checkpoint import CheckpointError, load_latest

    session = open_session(args)
    # Semantics (storage mode, budgets, the plan) come from the snapshot;
    # only execution knobs are taken from the command line — results are
    # invariant to them by construction.
    try:
        payload = load_latest(args.run_dir)
        config = dataclasses.replace(
            payload["config"],
            backend=args.backend,
            num_workers=args.workers,
            checkpoint_dir=args.run_dir,
        )
        result = session.resume(args.run_dir, config)
    except (CheckpointError, OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    print(
        f"resumed from barrier {payload['step']} "
        f"({payload['processed_total']:,} embeddings already processed)"
    )
    view = _resumed_view(payload["computation"], result)
    if hasattr(view, "maximal"):  # clique views share the size printer
        _print_clique_sizes(view, verbose=False)
    elif hasattr(view, "counts"):
        for pattern, count in sorted(
            view.counts().items(),
            key=lambda kv: (kv[0].num_vertices, -kv[1]),
        ):
            edges = ",".join(f"{i}-{j}" for i, j, _ in pattern.edges)
            print(f"motif v={pattern.num_vertices} edges=[{edges}] count={count:,}")
    elif hasattr(view, "patterns"):
        print(
            f"fsm: support >= {view.support_threshold}, "
            f"{len(view.patterns())} frequent patterns"
        )
    print(view.summary())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from .service import MinerRegistry, QueryService, run_forever

    registry = MinerRegistry(
        memory_limit_nbytes=(
            None if args.memory_limit_mb is None
            else int(args.memory_limit_mb * (1 << 20))
        )
    )
    try:
        for spec in args.graphs:
            # Dataset names keep their name; file paths pool under their stem.
            name = spec if spec in DATASETS else Path(spec).stem
            registry.load(name, load_graph(spec, args.scale))
        service = QueryService(
            registry,
            max_concurrent=args.max_concurrent,
            max_pending=args.max_pending,
            default_deadline_seconds=(
                None if args.deadline_ms is None else args.deadline_ms / 1000.0
            ),
            default_max_embeddings=args.max_embeddings,
            checkpoint_root=args.checkpoint_root,
        )
    except ValueError as exc:  # ServiceError/SessionError family
        raise SystemExit(f"error: {exc}")
    try:
        asyncio.run(run_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arabesque reproduction: distributed graph mining",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("graph", help="edge-list file or dataset name")
        sub.add_argument("--scale", type=float, default=None,
                         help="scale factor for built-in datasets")
        sub.add_argument("--num-workers", "--workers", dest="workers",
                         type=int, default=1, metavar="N",
                         help="logical workers the exploration is "
                              "partitioned over (default 1); results never "
                              "depend on this")
        sub.add_argument("--backend", choices=BACKENDS,
                         default=SERIAL_BACKEND,
                         help="execution runtime for the worker tasks: "
                              "'serial' runs them in one loop, 'thread' on "
                              "a thread pool (GIL-bound on standard "
                              "CPython), 'process' on one OS process per "
                              "worker chunk for real multi-core speedup "
                              "(default: serial)")
        sub.add_argument("--storage", choices=STORAGE_MODES, default=None,
                         help="embedding storage strategy (default: let "
                              "the session pick — ODAG, except list for "
                              "plan-guided matches); 'spill' streams "
                              "embedding blocks to disk past a byte budget")
        sub.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="snapshot the run into DIR at every BSP "
                              "barrier; after a crash, 'repro resume GRAPH "
                              "DIR' restarts from the last barrier (see "
                              "docs/checkpoint.md)")

    stats = subparsers.add_parser("stats", help="print dataset statistics")
    common(stats)
    stats.set_defaults(handler=cmd_stats)

    motifs = subparsers.add_parser("motifs", help="count motifs")
    common(motifs)
    motifs.add_argument("--max-size", type=int, default=3)
    motifs.add_argument("--labeled", action="store_true",
                        help="keep vertex labels (labeled motifs)")
    motif_strategy = motifs.add_mutually_exclusive_group()
    motif_strategy.add_argument(
        "--guided", dest="guided", action="store_true", default=True,
        help="compile every motif candidate of the size range into ONE "
             "multi-query plan DAG (shared-prefix exploration, symmetry "
             "breaking per motif) and answer the whole distribution in "
             "one guided engine run (default)",
    )
    motif_strategy.add_argument(
        "--exhaustive", dest="guided", action="store_false",
        help="exploration-agnostic filter-process counting — the oracle "
             "the guided mode is validated against",
    )
    motifs.add_argument(
        "--limit", type=int, default=None,
        help="cap on collected outputs (exhaustive only — guided motifs "
             "aggregate the distribution and reject this loudly, exactly "
             "like the facade)",
    )
    motifs.set_defaults(handler=cmd_motifs)

    cliques = subparsers.add_parser("cliques", help="enumerate cliques")
    common(cliques)
    cliques.add_argument("--max-size", type=int, default=4)
    cliques.add_argument("--min-size", type=int, default=3)
    cliques.add_argument("--maximal", action="store_true",
                         help="report only maximal cliques")
    cliques.add_argument("--limit", type=int, default=100_000,
                         help="cap on collected cliques")
    cliques.add_argument("--verbose", action="store_true")
    cliques.set_defaults(handler=cmd_cliques)

    maximal = subparsers.add_parser(
        "maximal-cliques",
        help="enumerate maximal cliques (those contained in no larger one)",
    )
    common(maximal)
    maximal.add_argument("--max-size", type=int, default=None,
                         help="optional cap; cliques of exactly this size "
                              "are reported when maximal in the full graph")
    maximal.add_argument("--limit", type=int, default=100_000,
                         help="cap on collected cliques")
    maximal.add_argument("--verbose", action="store_true")
    maximal.set_defaults(handler=cmd_maximal_cliques)

    match = subparsers.add_parser(
        "match", help="retrieve all occurrences of a query pattern"
    )
    common(match)
    match.add_argument(
        "query",
        help="named query shape "
             f"({', '.join(sorted(NAMED_SHAPES))}) or a pattern "
             "edge-list file ('u v [edge_label]' lines, optional "
             "'v <id> <label>' vertex-label lines)",
    )
    strategy = match.add_mutually_exclusive_group()
    strategy.add_argument(
        "--guided", dest="guided", action="store_true", default=True,
        help="compile the query into a pattern-aware exploration plan "
             "(matching order + symmetry breaking) and only generate "
             "plan-compatible candidates (default)",
    )
    strategy.add_argument(
        "--exhaustive", dest="guided", action="store_false",
        help="exploration-agnostic filter-process matching — the oracle "
             "the guided mode is validated against",
    )
    match.add_argument(
        "--monomorphic", action="store_true",
        help="edge-subset (monomorphism) semantics instead of "
             "vertex-induced occurrences",
    )
    match.add_argument(
        "--labeled", action="store_true",
        help="keep vertex labels (query labels must match graph labels)",
    )
    match.add_argument("--limit", type=int, default=100_000,
                       help="cap on collected matches (counts stay exact)")
    match.add_argument("--verbose", action="store_true",
                       help="print the first 20 matches")
    match.add_argument(
        "--explain", action="store_true",
        help="print the cost-based planner's report before running: "
             "graph statistics, the chosen matching order with per-step "
             "cardinality estimates, and the comparison against the "
             "degree heuristic's order",
    )
    match.set_defaults(handler=cmd_match)

    fsm = subparsers.add_parser("fsm", help="frequent subgraph mining")
    common(fsm)
    fsm.add_argument("--support", type=int, required=True,
                     help="MNI support threshold")
    fsm.add_argument("--max-edges", type=int, default=None)
    fsm_strategy = fsm.add_mutually_exclusive_group()
    fsm_strategy.add_argument(
        "--guided", dest="guided", action="store_true", default=True,
        help="plan-guided FSM (default): grow candidate patterns "
             "level-wise and discover each one's embeddings through its "
             "compiled exploration plan, accumulating MNI domains from "
             "the guided matches",
    )
    fsm_strategy.add_argument(
        "--exhaustive", dest="guided", action="store_false",
        help="one exploration-agnostic edge-exploration run covering "
             "every pattern at once — the oracle the guided mode is "
             "validated against",
    )
    fsm.set_defaults(handler=cmd_fsm)

    resume = subparsers.add_parser(
        "resume",
        help="resume a crashed checkpointed run from its run directory",
    )
    resume.add_argument("graph", help="the SAME edge-list file or dataset "
                                      "name the checkpointed run used")
    resume.add_argument("run_dir", help="the --checkpoint-dir of the "
                                        "crashed run")
    resume.add_argument("--scale", type=float, default=None,
                        help="scale factor for built-in datasets (must "
                             "match the original run's)")
    resume.add_argument("--num-workers", "--workers", dest="workers",
                        type=int, default=1, metavar="N",
                        help="worker count for the resumed steps (an "
                             "execution knob — results never depend on it)")
    resume.add_argument("--backend", choices=BACKENDS,
                        default=SERIAL_BACKEND,
                        help="execution runtime for the resumed steps "
                             "(execution knob, default: serial)")
    resume.set_defaults(handler=cmd_resume)

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP query service (see docs/service.md)",
    )
    serve.add_argument(
        "--graphs", nargs="+", required=True, metavar="GRAPH",
        help="graphs to pool at startup: dataset names or edge-list "
             "files (files pool under their stem)",
    )
    serve.add_argument("--scale", type=float, default=None,
                       help="scale factor applied to built-in datasets")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--max-concurrent", type=int, default=4,
                       help="queries running at once (worker-pool width)")
    serve.add_argument("--max-pending", type=int, default=16,
                       help="queries allowed to wait for a slot before "
                            "the server answers 429")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-query deadline; a request's own "
                            "deadline_ms overrides it")
    serve.add_argument("--max-embeddings", type=int, default=None,
                       help="default per-query embedding budget; a "
                            "request's own max_embeddings overrides it")
    serve.add_argument("--memory-limit-mb", type=float, default=None,
                       help="bound on the pooled graphs' summed memory; "
                            "loading past it evicts LRU graphs")
    serve.add_argument("--checkpoint-root", default=None, metavar="DIR",
                       help="snapshot every cache-miss query's engine run "
                            "into a unique directory under DIR (resume "
                            "one with 'repro resume')")
    serve.set_defaults(handler=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
