"""Centralized clique enumeration — the Mace substitute (paper, section 6).

The paper benchmarks its Cliques application against Mace [36], a highly
optimized C enumerator.  Two classic algorithms fill that role here:

* :func:`enumerate_cliques` — ordered extension: a clique ``v1 < ... < vk``
  is extended only by common neighbors larger than ``vk``, so every clique
  is produced exactly once.  This lists *all* cliques up to a size cap,
  matching what the Arabesque Cliques application outputs.
* :func:`enumerate_maximal_cliques` — Bron–Kerbosch with pivoting [8] on a
  degeneracy outer order, the standard for sparse real-world graphs
  (Eppstein–Strash [15]).
"""

from __future__ import annotations

from typing import Iterator

from ..graph import LabeledGraph
from ..graph.bitset import from_bitset, iter_bitset


def enumerate_cliques(
    graph: LabeledGraph, max_size: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every clique (size >= 1) as a sorted vertex tuple.

    Cliques are emitted in lexicographic order of their vertex tuples;
    each exactly once.
    """

    def grow(clique: tuple[int, ...], candidates: list[int]) -> Iterator[tuple[int, ...]]:
        yield clique
        if max_size is not None and len(clique) >= max_size:
            return
        for index, v in enumerate(candidates):
            neighbor_bits = graph.neighbor_bits(v)
            narrowed = [
                u for u in candidates[index + 1 :] if (neighbor_bits >> u) & 1
            ]
            yield from grow(clique + (v,), narrowed)

    for v in graph.vertices():
        later_neighbors = [u for u in graph.neighbors(v) if u > v]
        yield from grow((v,), later_neighbors)


def count_cliques_by_size(
    graph: LabeledGraph, max_size: int | None = None
) -> dict[int, int]:
    """Clique counts keyed by size (the Table 2/3 "Cliques" numbers)."""
    counts: dict[int, int] = {}
    for clique in enumerate_cliques(graph, max_size):
        counts[len(clique)] = counts.get(len(clique), 0) + 1
    return counts


def degeneracy_order(graph: LabeledGraph) -> list[int]:
    """Vertices in degeneracy (smallest-last) order via bucket peeling."""
    n = graph.num_vertices
    degrees = [graph.degree(v) for v in range(n)]
    max_degree = max(degrees, default=0)
    buckets: list[set[int]] = [set() for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degrees[v]].add(v)
    removed = [False] * n
    order: list[int] = []
    cursor = 0
    for _ in range(n):
        while cursor <= max_degree and not buckets[cursor]:
            cursor += 1
        v = min(buckets[cursor])  # deterministic tie-break
        buckets[cursor].discard(v)
        removed[v] = True
        order.append(v)
        for u in graph.neighbors(v):
            if not removed[u]:
                buckets[degrees[u]].discard(u)
                degrees[u] -= 1
                buckets[degrees[u]].add(u)
                if degrees[u] < cursor:
                    cursor = degrees[u]
    return order


def enumerate_maximal_cliques(graph: LabeledGraph) -> Iterator[frozenset[int]]:
    """Bron–Kerbosch with pivoting, outer loop in degeneracy order.

    Candidate/excluded sets are big-int bitsets: narrowing to a vertex's
    neighborhood is one ``&`` per recursion instead of a set
    intersection, the pivot scan counts overlap with ``bit_count``.
    """

    def pivot_expand(
        clique: list[int], candidates: int, excluded: int
    ) -> Iterator[frozenset[int]]:
        if not candidates and not excluded:
            yield frozenset(clique)
            return
        pivot = max(
            iter_bitset(candidates | excluded),
            key=lambda u: (candidates & graph.neighbor_bits(u)).bit_count(),
        )
        for v in from_bitset(candidates & ~graph.neighbor_bits(pivot)):
            neighbor_bits = graph.neighbor_bits(v)
            clique.append(v)
            yield from pivot_expand(
                clique, candidates & neighbor_bits, excluded & neighbor_bits
            )
            clique.pop()
            candidates &= ~(1 << v)
            excluded |= 1 << v

    order = degeneracy_order(graph)
    position = {v: i for i, v in enumerate(order)}
    for v in order:
        later = 0
        earlier = 0
        position_v = position[v]
        for u in graph.neighbors(v):
            if position[u] > position_v:
                later |= 1 << u
            else:
                earlier |= 1 << u
        yield from pivot_expand([v], later, earlier)


def count_maximal_cliques(graph: LabeledGraph) -> int:
    """Number of maximal cliques."""
    return sum(1 for _ in enumerate_maximal_cliques(graph))
