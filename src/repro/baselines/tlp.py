"""TLP — "think like a pattern": GRAMI distributed by pattern (section 3.2).

The paper derives its TLP baseline from GRAMI with "few relatively
straightforward changes ... patterns are partitioned across a set of
distributed workers".  This module does the same on top of
:mod:`repro.baselines.grami`: each level's candidate patterns are dealt to
workers round-robin, every worker evaluates its share, the frequent set is
broadcast, and the next level's candidates are generated.

What the experiment shows (Figure 7): TLP cannot scale beyond the number of
frequent patterns — "irrespective of the size of the cluster, only a few
workers (equal to the number of these frequent patterns) will be used" —
and skewed per-pattern costs overload whichever worker owns the popular
pattern.  Both effects fall straight out of the per-worker work metering
here: a level's critical path is the busiest worker's VF2 work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bsp.metrics import RunMetrics
from ..core.pattern import Pattern
from ..graph import LabeledGraph
from .grami import (
    GramiResult,
    extend_pattern,
    graph_label_triples,
    mni_support_lazy,
    single_edge_patterns,
)


@dataclass
class TlpResult:
    """Frequent patterns plus the distribution metrics of the run."""

    frequent: dict[Pattern, int] = field(default_factory=dict)
    metrics: RunMetrics | None = None
    levels: int = 0
    #: Patterns evaluated per level (the parallelism ceiling).
    candidates_per_level: list[int] = field(default_factory=list)


def run_tlp_fsm(
    graph: LabeledGraph,
    threshold: int,
    max_edges: int | None = None,
    num_workers: int = 1,
) -> TlpResult:
    """Distributed pattern-centric FSM with per-worker work metering."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")

    result = TlpResult(metrics=RunMetrics(num_workers=num_workers))
    triples = graph_label_triples(graph)
    candidates = single_edge_patterns(graph)
    level = 1
    while candidates and (max_edges is None or level <= max_edges):
        step = result.metrics.new_superstep()
        result.candidates_per_level.append(len(candidates))
        frequent_now: list[Pattern] = []
        for index, pattern in enumerate(candidates):
            worker_id = index % num_workers
            evaluation = mni_support_lazy(graph, pattern, threshold)
            step.add_work(worker_id, evaluation.work)
            if evaluation.frequent:
                result.frequent[pattern] = evaluation.support
                frequent_now.append(pattern)
                # The frequent pattern is broadcast to all workers so every
                # one of them can extend it next level.
                step.broadcast_messages += 1
                step.broadcast_bytes += pattern.wire_size()
        result.levels = level
        if not frequent_now:
            break
        next_candidates: set[Pattern] = set()
        for pattern in frequent_now:
            next_candidates.update(extend_pattern(pattern, triples))
        candidates = sorted(next_candidates, key=lambda p: (p.vertex_labels, p.edges))
        level += 1
    return result


def tlp_agrees_with_grami(tlp: TlpResult, grami: GramiResult) -> bool:
    """Distribution must not change the answer (used by tests)."""
    return tlp.frequent == grami.frequent
