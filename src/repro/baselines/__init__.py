"""Baselines: the paradigms and centralized systems the paper compares to."""

from .bron_kerbosch import (
    count_cliques_by_size,
    count_maximal_cliques,
    degeneracy_order,
    enumerate_cliques,
    enumerate_maximal_cliques,
)
from .esu import count_motifs, count_motifs_up_to, enumerate_connected_subgraphs
from .grami import (
    GramiResult,
    PatternEvaluation,
    exact_mni_support,
    extend_pattern,
    find_frequent_embeddings,
    graph_label_triples,
    mni_support_lazy,
    run_grami,
    single_edge_patterns,
)
from .tlp import TlpResult, run_tlp_fsm, tlp_agrees_with_grami
from .tlv import TlvResult, run_tlv_fsm

__all__ = [
    "GramiResult",
    "PatternEvaluation",
    "TlpResult",
    "TlvResult",
    "count_cliques_by_size",
    "count_maximal_cliques",
    "count_motifs",
    "count_motifs_up_to",
    "degeneracy_order",
    "enumerate_cliques",
    "enumerate_connected_subgraphs",
    "enumerate_maximal_cliques",
    "exact_mni_support",
    "extend_pattern",
    "find_frequent_embeddings",
    "graph_label_triples",
    "mni_support_lazy",
    "run_grami",
    "run_tlp_fsm",
    "run_tlv_fsm",
    "single_edge_patterns",
    "tlp_agrees_with_grami",
]
