"""Centralized pattern-growth FSM — the GRAMI substitute (paper, section 6).

GRAMI [14] is the state of the art for centralized single-graph FSM and the
seed of the paper's TLP baseline.  Its defining trait: state is kept *per
pattern*, embeddings are "re-calculated on the fly, stopping as soon as a
sufficient number of embeddings to pass the frequency threshold is found" —
it answers "is this pattern frequent?" without materializing the embedding
set (solving "a simpler problem" than Arabesque's FSM, as section 6.2
notes).

The implementation here follows that architecture:

* level-wise pattern growth: frequent k-edge patterns are extended by one
  edge (to a new vertex or between existing vertices), constrained by the
  label triples actually present in the graph;
* per-pattern MNI evaluation with **lazy search**
  (:func:`mni_support_lazy`): VF2 match enumeration that stops as soon as
  every pattern vertex has ``threshold`` distinct images;
* the VFLib role (paper Table 2 pairs "Grami+VFLib"):
  :func:`find_frequent_embeddings` re-enumerates the full embedding sets of
  the frequent patterns afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pattern import Pattern
from ..graph import LabeledGraph
from ..isomorphism import SubgraphMatcher


@dataclass
class PatternEvaluation:
    """Outcome of one pattern's support evaluation."""

    pattern: Pattern
    support: int
    frequent: bool
    #: VF2 candidate tests spent (the TLP work unit).
    work: int


@dataclass
class GramiResult:
    """Everything a GRAMI run produces."""

    frequent: dict[Pattern, int] = field(default_factory=dict)
    #: All evaluations, level by level (diagnostics and TLP metering).
    evaluations: list[list[PatternEvaluation]] = field(default_factory=list)
    levels: int = 0

    @property
    def total_work(self) -> int:
        return sum(e.work for level in self.evaluations for e in level)


def graph_label_triples(graph: LabeledGraph) -> set[tuple[int, int, int]]:
    """Distinct ``(vertex label, edge label, vertex label)`` triples, both
    orientations — the alphabet available for pattern extension."""
    triples: set[tuple[int, int, int]] = set()
    for eid, u, v in graph.edge_iter():
        lu, lv = graph.vertex_label(u), graph.vertex_label(v)
        le = graph.edge_label(eid)
        triples.add((lu, le, lv))
        triples.add((lv, le, lu))
    return triples


def single_edge_patterns(graph: LabeledGraph) -> list[Pattern]:
    """Level-1 candidates: one canonical pattern per label triple class."""
    seen: set[Pattern] = set()
    for lu, le, lv in graph_label_triples(graph):
        pattern = Pattern((lu, lv), ((0, 1, le),)).canonical()
        seen.add(pattern)
    return sorted(seen, key=lambda p: (p.vertex_labels, p.edges))


def extend_pattern(
    pattern: Pattern, triples: set[tuple[int, int, int]]
) -> list[Pattern]:
    """All one-edge extensions of ``pattern`` consistent with the graph's
    label triples, canonicalized and deduplicated."""
    extensions: set[Pattern] = set()
    k = pattern.num_vertices
    existing = {(i, j) for i, j, _ in pattern.edges}
    edge_labels = {le for _, le, _ in triples}
    # (a) attach a new vertex to position i.
    for i in range(k):
        anchor_label = pattern.vertex_labels[i]
        for lu, le, lv in triples:
            if lu != anchor_label:
                continue
            new_labels = pattern.vertex_labels + (lv,)
            new_edges = tuple(sorted(pattern.edges + ((i, k, le),)))
            extensions.add(Pattern(new_labels, new_edges).canonical())
    # (b) close an edge between two existing positions.
    for i in range(k):
        for j in range(i + 1, k):
            if (i, j) in existing:
                continue
            li, lj = pattern.vertex_labels[i], pattern.vertex_labels[j]
            for le in edge_labels:
                if (li, le, lj) not in triples:
                    continue
                new_edges = tuple(sorted(pattern.edges + ((i, j, le),)))
                extensions.add(Pattern(pattern.vertex_labels, new_edges).canonical())
    return sorted(extensions, key=lambda p: (p.vertex_labels, p.edges))


def mni_support_lazy(
    graph: LabeledGraph,
    pattern: Pattern,
    threshold: int,
    max_matches: int | None = None,
) -> PatternEvaluation:
    """Lazy MNI evaluation: enumerate VF2 matches only until every pattern
    vertex has ``threshold`` distinct images (GRAMI's key optimization)."""
    matcher = SubgraphMatcher(pattern.vertex_labels, pattern.edge_dict(), graph)
    domains: list[set[int]] = [set() for _ in range(pattern.num_vertices)]
    needy = pattern.num_vertices
    matches = 0
    for mapping in matcher.match_iter():
        matches += 1
        for position, vertex in enumerate(mapping):
            domain = domains[position]
            if len(domain) < threshold:
                domain.add(vertex)
                if len(domain) == threshold:
                    needy -= 1
        if needy == 0:
            return PatternEvaluation(pattern, threshold, True, matcher.work)
        if max_matches is not None and matches >= max_matches:
            break
    support = min((len(d) for d in domains), default=0)
    return PatternEvaluation(pattern, support, support >= threshold, matcher.work)


def run_grami(
    graph: LabeledGraph,
    threshold: int,
    max_edges: int | None = None,
) -> GramiResult:
    """Level-wise FSM: evaluate, keep frequent, extend, repeat."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    result = GramiResult()
    triples = graph_label_triples(graph)
    candidates = single_edge_patterns(graph)
    level = 1
    while candidates and (max_edges is None or level <= max_edges):
        evaluations = [
            mni_support_lazy(graph, pattern, threshold) for pattern in candidates
        ]
        result.evaluations.append(evaluations)
        frequent_now = [e.pattern for e in evaluations if e.frequent]
        for evaluation in evaluations:
            if evaluation.frequent:
                result.frequent[evaluation.pattern] = evaluation.support
        result.levels = level
        if not frequent_now:
            break
        next_candidates: set[Pattern] = set()
        for pattern in frequent_now:
            next_candidates.update(extend_pattern(pattern, triples))
        candidates = sorted(
            next_candidates, key=lambda p: (p.vertex_labels, p.edges)
        )
        level += 1
    return result


def find_frequent_embeddings(
    graph: LabeledGraph, frequent: dict[Pattern, int]
) -> dict[Pattern, set[frozenset[int]]]:
    """The VFLib role: full embedding discovery for the frequent patterns.

    Returns distinct embeddings as frozensets of *vertices* per pattern
    (matching how VFLib reports subgraph occurrences).
    """
    found: dict[Pattern, set[frozenset[int]]] = {}
    for pattern in frequent:
        matcher = SubgraphMatcher(pattern.vertex_labels, pattern.edge_dict(), graph)
        found[pattern] = {frozenset(mapping) for mapping in matcher.match_iter()}
    return found


def exact_mni_support(
    graph: LabeledGraph, pattern: Pattern, induced: bool = False
) -> int:
    """Non-lazy MNI (full enumeration) — the oracle used in tests.

    ``induced=True`` restricts to induced isomorphisms, matching the
    vertex-induced embedding semantics of the TLV baseline and the motifs
    application; the default monomorphism semantics matches edge-based FSM.
    """
    matcher = SubgraphMatcher(
        pattern.vertex_labels, pattern.edge_dict(), graph, induced=induced
    )
    domains: list[set[int]] = [set() for _ in range(pattern.num_vertices)]
    for mapping in matcher.match_iter():
        for position, vertex in enumerate(mapping):
            domains[position].add(vertex)
    return min((len(d) for d in domains), default=0)
