"""TLV — "think like a vertex": embedding exploration on a Pregel layer.

The paper's TLV baseline (section 3.2) keeps computation and state at graph
vertices: each vertex holds local embeddings and pushes them to "border"
vertices that know how to expand them; a global visited-set provides dedup.
Its two failure modes — which Figure 7 quantifies — are built into the
paradigm:

* **message explosion**: every new embedding is replicated to all of its
  member vertices ("the total messages exchanged for this tiny graph is 120
  million, versus 137 thousand ... by Arabesque");
* **hotspots**: "highly connected vertices must take on a disproportionate
  fraction of embeddings to expand" — with hash partitioning, whichever
  worker owns a hub vertex owns its load.

This implementation runs on the BSP substrate (:mod:`repro.bsp`), with
graph vertices hash-partitioned across workers.  The exploration itself is
generic over a :class:`~repro.core.computation.Computation`-like filter and
a per-pattern frequency threshold (the FSM instantiation the paper uses);
canonicality (Algorithm 2) provides the same coordination-free dedup as the
Arabesque layer, and a per-owner seen-set removes the identical duplicates
that multiple proposers create — the "extended duplication of state" the
paper calls out.

Message protocol (three supersteps per embedding size, keeping sizes
aligned with aggregate publication):

* ``("cand", words)``  -> dedup owner: seen-set check, φ, domain mapping;
* next superstep: α using the now-published aggregates, then
  ``("expand", words, u)`` to each member vertex's worker;
* ``("expand", words, u)``: u proposes canonical extensions from its own
  adjacency and sends new ``cand`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bsp import BspContext, BspEngine, Worker, dict_merge_aggregator
from ..bsp.metrics import RunMetrics
from ..core.canonical import is_canonical_vertex_extension
from ..core.embedding import VertexInducedEmbedding
from ..core.pattern import Pattern
from ..graph import LabeledGraph
from .grami import exact_mni_support
from ..apps.support import Domain

AGG_NAME = "tlv-domains"


@dataclass
class TlvResult:
    """Frequent patterns found plus run metrics."""

    frequent: dict[Pattern, int] = field(default_factory=dict)
    metrics: RunMetrics | None = None
    embeddings_processed: int = 0


class _TlvWorker(Worker):
    """One worker owning the graph vertices ``v % num_workers == id``."""

    def __init__(self, graph: LabeledGraph, threshold: int, max_size: int):
        self.graph = graph
        self.threshold = threshold
        self.max_size = max_size
        self.seen: set[tuple[int, ...]] = set()
        self.pending_expand: list[tuple[int, ...]] = []
        self.processed = 0

    def setup(self, worker_id: int, num_workers: int) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers

    # -- helpers ---------------------------------------------------------
    def _owner_of_embedding(self, words: tuple[int, ...]) -> int:
        return hash(words) % self.num_workers

    def _owner_of_vertex(self, v: int) -> int:
        return v % self.num_workers

    def _pattern_support(self, ctx: BspContext, pattern: Pattern) -> int | None:
        aggregates = ctx.get_aggregate(AGG_NAME)
        canonical, mapping = pattern.canonical_mapping()
        domain = aggregates.get(canonical)
        if domain is None:
            return None
        return domain.support(canonical.orbits())

    # -- protocol ---------------------------------------------------------
    def compute(self, ctx: BspContext, messages) -> None:
        graph = self.graph
        if ctx.superstep == 0:
            for v in range(self.worker_id, graph.num_vertices, self.num_workers):
                ctx.send(self._owner_of_embedding((v,)), ("cand", (v,)))
            ctx.vote_to_halt()
            return

        # Phase A: α + expand-forward for embeddings accepted last round.
        for words in self.pending_expand:
            pattern = VertexInducedEmbedding(graph, words).pattern()
            support = self._pattern_support(ctx, pattern)
            ctx.add_work(1)
            if support is None or support < self.threshold:
                continue
            if len(words) >= self.max_size:
                continue
            for u in words:
                ctx.send(self._owner_of_vertex(u), ("expand", words, u))
        self.pending_expand = []

        for message in messages:
            kind = message[0]
            if kind == "tick":
                continue
            if kind == "cand":
                words = message[1]
                ctx.add_work(1)
                if words in self.seen:
                    continue
                self.seen.add(words)
                self.processed += 1
                embedding = VertexInducedEmbedding(graph, words)
                quick = embedding.pattern()
                canonical, mapping = quick.canonical_mapping()
                domain = Domain.from_embedding(embedding).remap_positions(mapping)
                ctx.aggregate(AGG_NAME, (canonical, domain))
                self.pending_expand.append(words)
            else:
                _, words, u = message
                # Hotspot accounting: expanding at u costs deg(u) work.
                ctx.add_work(graph.degree(u))
                for w in graph.neighbors(u):
                    if w in words:
                        continue
                    if not is_canonical_vertex_extension(graph, words, w):
                        continue
                    ctx.send(
                        self._owner_of_embedding(words + (w,)),
                        ("cand", words + (w,)),
                    )
        if self.pending_expand:
            # Wake ourselves next superstep to run the α + expand phase.
            ctx.send(self.worker_id, ("tick",))
        ctx.vote_to_halt()


def run_tlv_fsm(
    graph: LabeledGraph,
    threshold: int,
    max_size: int,
    num_workers: int = 1,
) -> TlvResult:
    """Run the TLV FSM baseline; returns frequent patterns and metrics.

    ``max_size`` caps embedding size in vertices (TLV explores vertex-
    induced embeddings, the natural unit of a vertex-centric paradigm).
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    workers = [_TlvWorker(graph, threshold, max_size) for _ in range(num_workers)]
    engine = BspEngine(
        workers,
        aggregators={AGG_NAME: dict_merge_aggregator(
            lambda old, new: Domain.merge_all([old, new])
        )},
        max_supersteps=6 * (max_size + 2),
    )
    metrics = engine.run()
    # Collect final frequent patterns from the union of all aggregate
    # snapshots: re-derive supports per pattern exactly (the aggregator only
    # holds the last superstep), mirroring how the paper's TLV reports.
    frequent: dict[Pattern, int] = {}
    seen_patterns: set[Pattern] = set()
    for worker in workers:
        for words in worker.seen:
            pattern = VertexInducedEmbedding(graph, words).pattern().canonical()
            seen_patterns.add(pattern)
    for pattern in seen_patterns:
        support = exact_mni_support(graph, pattern, induced=True)
        if support >= threshold:
            frequent[pattern] = support
    return TlvResult(
        frequent=frequent,
        metrics=metrics,
        embeddings_processed=sum(w.processed for w in workers),
    )
