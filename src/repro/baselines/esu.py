"""Centralized motif counting — the G-Tries substitute (paper, section 6).

The paper benchmarks Motifs against G-Tries [31].  Here we use ESU (the
FANMOD algorithm), the standard exact enumerator of connected vertex-induced
subgraphs: every connected k-set is generated exactly once by growing from
its minimum vertex with an exclusive-neighborhood extension set.  Each
enumerated subgraph is classified by canonical pattern using the same
labeler the Arabesque layer uses, making the two pipelines' outputs directly
comparable (and their agreement a strong cross-check, exercised by the test
suite).
"""

from __future__ import annotations

from typing import Iterator

from ..core.canonical import canonicalize_vertex_set
from ..core.embedding import VertexInducedEmbedding
from ..core.pattern import Pattern
from ..graph import LabeledGraph


def enumerate_connected_subgraphs(
    graph: LabeledGraph, size: int
) -> Iterator[tuple[int, ...]]:
    """ESU: yield every connected vertex-induced subgraph of ``size``
    vertices exactly once, as a sorted vertex tuple."""
    if size < 1:
        return

    def exclusive_neighbors(w: int, subgraph: set[int], closed: set[int]) -> list[int]:
        return [u for u in graph.neighbors(w) if u not in closed and u not in subgraph]

    def extend(
        subgraph: set[int],
        extension: list[int],
        root: int,
        closed: set[int],
    ) -> Iterator[tuple[int, ...]]:
        if len(subgraph) == size:
            yield tuple(sorted(subgraph))
            return
        ext = list(extension)
        while ext:
            w = ext.pop()
            exclusive = [
                u for u in exclusive_neighbors(w, subgraph, closed) if u > root
            ]
            subgraph.add(w)
            new_closed = closed | set(exclusive)
            yield from extend(subgraph, ext + exclusive, root, new_closed)
            subgraph.discard(w)

    for v in graph.vertices():
        initial = [u for u in graph.neighbors(v) if u > v]
        yield from extend({v}, initial, v, set(initial) | {v})


def count_motifs(graph: LabeledGraph, size: int) -> dict[Pattern, int]:
    """Motif census: canonical pattern -> number of induced embeddings.

    The classification path mirrors Arabesque's two-level scheme: a
    linear-time quick pattern per subgraph, then one cached canonicalization
    per distinct quick pattern.
    """
    counts: dict[Pattern, int] = {}
    quick_cache: dict[Pattern, Pattern] = {}
    for members in enumerate_connected_subgraphs(graph, size):
        words = canonicalize_vertex_set(graph, members)
        quick = VertexInducedEmbedding(graph, words).pattern()
        canonical = quick_cache.get(quick)
        if canonical is None:
            canonical = quick.canonical()
            quick_cache[quick] = canonical
        counts[canonical] = counts.get(canonical, 0) + 1
    return counts


def count_motifs_up_to(graph: LabeledGraph, max_size: int, min_size: int = 3) -> dict[Pattern, int]:
    """Census across sizes ``min_size..max_size`` (Figure 1's series)."""
    combined: dict[Pattern, int] = {}
    for size in range(min_size, max_size + 1):
        combined.update(count_motifs(graph, size))
    return combined
