"""Analysis helpers: graph statistics, run reports, scalability sweeps.

Utilities downstream users (and the bundled benchmarks/examples) need
around the core engine: quick structural statistics of an input graph,
human-readable summaries of a :class:`~repro.core.results.RunResult`, and
the worker-count sweep that produces the paper's speedup curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .bsp.cost_model import CostModel, speedup_curve
from .core.computation import Computation
from .core.config import ArabesqueConfig
from .core.engine import run_computation
from .core.results import RunResult
from .graph import LabeledGraph


# ----------------------------------------------------------------------
# Graph statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphProfile:
    """Structural summary of an input graph."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    average_degree: float
    max_degree: int
    degree_p99: int
    triangles: int
    global_clustering: float
    connected_components: int

    def lines(self) -> list[str]:
        return [
            f"graph:          {self.name}",
            f"vertices:       {self.num_vertices:,}",
            f"edges:          {self.num_edges:,}",
            f"labels:         {self.num_labels}",
            f"avg degree:     {self.average_degree:.2f}",
            f"max degree:     {self.max_degree:,} (p99 {self.degree_p99:,})",
            f"triangles:      {self.triangles:,}",
            f"clustering:     {self.global_clustering:.4f}",
            f"components:     {self.connected_components:,}",
        ]


def count_triangles(graph: LabeledGraph) -> int:
    """Exact triangle count by ordered neighbor intersection, O(sum deg^1.5)."""
    total = 0
    for v in graph.vertices():
        later = [u for u in graph.neighbors(v) if u > v]
        later_set = frozenset(later)
        for u in later:
            total += sum(1 for w in graph.neighbors(u) if w > u and w in later_set)
    return total


def count_wedges(graph: LabeledGraph) -> int:
    """Paths of length two (open + closed): sum over vertices of C(deg, 2)."""
    return sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in graph.vertices()
    )


def profile_graph(graph: LabeledGraph) -> GraphProfile:
    """Compute a :class:`GraphProfile`."""
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    triangles = count_triangles(graph)
    wedges = count_wedges(graph)
    clustering = 3.0 * triangles / wedges if wedges else 0.0
    p99_index = max(int(0.99 * len(degrees)) - 1, 0) if degrees else 0
    return GraphProfile(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_labels=graph.num_vertex_labels,
        average_degree=graph.average_degree(),
        max_degree=degrees[-1] if degrees else 0,
        degree_p99=degrees[p99_index] if degrees else 0,
        triangles=triangles,
        global_clustering=clustering,
        connected_components=len(graph.connected_components()),
    )


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------
def run_report(result: RunResult, cost_model: CostModel | None = None) -> str:
    """Multi-line human-readable summary of a finished run."""
    lines = [
        f"exploration steps:      {result.num_steps}",
        f"candidates generated:   {result.total_candidates:,}",
        f"embeddings processed:   {result.total_processed:,}",
        f"outputs:                {result.num_outputs:,}",
        f"quick patterns:         {result.quick_patterns:,}",
        f"canonical patterns:     {result.canonical_patterns:,}",
        f"isomorphism runs:       {result.isomorphism_runs:,}",
        f"peak store bytes:       {result.peak_storage_bytes:,}",
        f"wall seconds:           {result.wall_seconds:.3f}",
    ]
    if result.metrics is not None:
        lines += [
            f"workers:                {result.metrics.num_workers}",
            f"messages:               {result.metrics.total_messages:,}",
            f"p2p bytes:              {result.metrics.total_bytes:,}",
            f"broadcast bytes:        {result.metrics.total_broadcast_bytes:,}",
            f"simulated makespan:     {result.makespan(cost_model):.4f}s",
        ]
    header = "per-step: step  expanded  pruned(α)  candidates  canonical  processed  stored"
    lines.append(header)
    for stats in result.steps:
        lines.append(
            f"          {stats.step:>4} {stats.expanded_embeddings:>9,} "
            f"{stats.aggregation_pruned:>10,} {stats.candidates_generated:>11,} "
            f"{stats.canonical_candidates:>10,} {stats.processed_embeddings:>10,} "
            f"{stats.stored_embeddings:>7,}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Scalability sweeps (the Figure 8 machinery, reusable)
# ----------------------------------------------------------------------
@dataclass
class ScalabilitySweep:
    """Makespans and speedups of one workload across worker counts."""

    makespans: dict[int, float] = field(default_factory=dict)
    results: dict[int, RunResult] = field(default_factory=dict)

    def speedups(self, baseline_workers: int | None = None) -> dict[int, float]:
        return speedup_curve(self.makespans, baseline_workers)

    def parallel_efficiency(self) -> dict[int, float]:
        """Speedup relative to 1 worker divided by worker count."""
        if 1 not in self.makespans:
            raise ValueError("sweep must include the 1-worker configuration")
        curve = speedup_curve(self.makespans, baseline_workers=1)
        return {workers: curve[workers] / workers for workers in curve}


def scalability_sweep(
    graph: LabeledGraph,
    computation_factory: Callable[[], Computation],
    worker_counts: tuple[int, ...] = (1, 5, 10, 15, 20),
    cost_model: CostModel | None = None,
) -> ScalabilitySweep:
    """Run one workload at several simulated worker counts.

    A fresh computation is built per configuration (computations hold
    per-run caches), and the same cost model prices every run.
    """
    model = cost_model or CostModel()
    sweep = ScalabilitySweep()
    for workers in worker_counts:
        config = ArabesqueConfig(num_workers=workers, collect_outputs=False)
        result = run_computation(graph, computation_factory(), config)
        sweep.results[workers] = result
        sweep.makespans[workers] = result.makespan(model)
    return sweep
