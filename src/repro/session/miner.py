"""The :class:`Miner` session facade — one front door to the whole system.

The paper's pitch is a *single* API that covers wildly different mining
workloads (Figure 3); this module is that API for the reproduction.  A
``Miner`` wraps one loaded graph and hands out chainable
:class:`~repro.session.query.Query` objects::

    from repro.session import Miner

    miner = Miner(graph)
    motifs  = miner.motifs(max_size=4).unlabeled().run()
    squares = miner.match("square").workers(8).backend("process").run()
    rules   = miner.fsm(support=100, max_edges=3).collect(False).run()
    dense   = miner.maximal_cliques(max_size=5).limit(1000).run()

Besides the fluent surface, the session caches everything that is
per-graph rather than per-query, so repeated queries skip re-setup:

* the **step-0 universe** (all vertices / all edges), computed once per
  exploration mode and injected into every engine run;
* the **label-stripped graph variant**, built once for the first
  ``.unlabeled()`` query;
* **compiled matching plans**, keyed by ``(canonical pattern, induced)``
  so re-matching a pattern never recompiles it;
* **compiled multi-query plan DAGs**, keyed by ``(canonical pattern
  batch, induced)`` — guided motifs compile one DAG per (graph variant,
  size range) and guided FSM one per level batch, so repeated
  ``.motifs()``/``.fsm()`` runs recompile nothing (FSM's per-run domain
  whitelists are overlaid on the cached structure without recompiling
  orders or symmetry).

:meth:`Miner.cache_info` exposes hit/build counters; the test suite
asserts that a reused session demonstrably skips plan and DAG
recompilation and step-0 re-setup.

The session is **thread-safe**: every cache's check-and-set (and every
counter bump) happens under one session lock, so concurrent queries
against a shared ``Miner`` — the query service runs many per registry
entry — never compile the same plan twice or tear the counters.
Compilation itself runs under the lock too; that serializes concurrent
*first* compilations but keeps the "at most one build per key" guarantee
exact (asserted by a threaded stress test).  Engine runs happen outside
the lock, so queries still overlap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.computation import Computation
from ..core.config import ArabesqueConfig
from ..core.engine import run_computation
from ..core.extension import initial_candidates
from ..core.pattern import Pattern
from ..core.results import RunResult
from ..graph import LabeledGraph
from ..graph.generators import strip_labels
from ..plan.dag import PlanDAG, build_plan_dag, has_mask_bundle
from ..plan.planner import MatchingPlan, compile_plan
from ..plan.stats import GraphCatalog, build_catalog

from .query import (
    CliqueQuery,
    ComputeQuery,
    FSMQuery,
    MatchQuery,
    MotifQuery,
    Query,
    SessionError,
)


@dataclass
class SessionCacheInfo:
    """Counters for the session's per-graph caches (observability +
    the reuse assertions in the test suite)."""

    #: Engine runs executed through this session.
    runs: int = 0
    #: Step-0 universes computed (at most one per exploration mode).
    universe_builds: int = 0
    #: Runs that reused an already-computed universe.
    universe_hits: int = 0
    #: Matching plans compiled (one per distinct (pattern, semantics)).
    plan_compilations: int = 0
    #: Plan lookups served from the session cache.
    plan_hits: int = 0
    #: Multi-query plan DAGs compiled (one per distinct canonical
    #: pattern batch + semantics: a motif size range, an FSM level).
    dag_compilations: int = 0
    #: DAG lookups served from the session cache.
    dag_hits: int = 0
    #: Cached DAGs whose fused-kernel structural mask bundle
    #: (:func:`repro.plan.dag.mask_bundle`) is currently warm for one of
    #: the session's graph variants — i.e. a repeated query's worker
    #: steppers will read precomputed masks instead of rebuilding them.
    #: Computed at snapshot time (bundles are a process-wide weak memo,
    #: not session state).
    warm_mask_bundles: int = 0
    #: Label-stripped graph variants built (0 or 1).
    strip_builds: int = 0
    #: Statistics catalogs built (at most one per graph variant) — the
    #: cost-based planner's per-graph input, cached like the step-0
    #: universe.
    catalog_builds: int = 0
    #: Catalog lookups served from the session cache.
    catalog_hits: int = 0


class Miner:
    """A mining session over one loaded graph.

    Each workload method returns a chainable query; nothing executes
    until ``.run()`` / ``.count()`` / ``.stream()``.  The session owns
    the caches described in the module docstring, so issuing many
    queries against one ``Miner`` is cheaper than calling the engine
    helpers repeatedly.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        if not isinstance(graph, LabeledGraph):
            raise SessionError(
                f"Miner needs a LabeledGraph (got {type(graph).__name__}); "
                "load one via repro.graph.read_edge_list or repro.datasets"
            )
        self.graph = graph
        self._unlabeled: LabeledGraph | None = None
        self._universes: dict[str, tuple[int, ...]] = {}
        #: Plan/DAG caches key on the graph variant too (the ``labeled``
        #: flag): the cost-based order choice reads the variant's
        #: statistics catalog, so the same pattern may compile to
        #: different (equally correct) orders per variant.
        self._plans: dict[tuple[Pattern, bool, bool], MatchingPlan] = {}
        self._dags: dict[tuple[tuple[Pattern, ...], bool, bool], PlanDAG] = {}
        self._catalogs: dict[bool, GraphCatalog] = {}
        self._info = SessionCacheInfo()
        #: Guards every cache's check-and-set and every counter bump, so
        #: concurrent queries on one session (the query service) never
        #: duplicate a compilation or tear ``cache_info()``.  RLock: a
        #: guided-FSM dag_provider callback re-enters via _dag_for.
        self._lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Miner({self.graph!r})"

    # ------------------------------------------------------------------
    # Workload front doors
    # ------------------------------------------------------------------
    def motifs(self, max_size: int = 3, *, min_size: int = 3) -> MotifQuery:
        """Motif frequency distribution up to ``max_size`` vertices.

        DAG-guided execution is the default: every canonical motif
        candidate of the size range is compiled into one prefix-sharing
        multi-query plan DAG (cached on this session) and the whole
        distribution is answered in one guided engine run.  Chain
        ``.exhaustive()`` for the exploration-agnostic oracle, and
        ``.unlabeled()`` for classic (structure-only) motifs on a
        labeled graph.
        """
        return MotifQuery(self, max_size, min_size=min_size)

    def match(
        self, query: "Pattern | str", *, induced: bool = True
    ) -> MatchQuery:
        """Retrieve every occurrence of ``query`` — a :class:`Pattern`,
        a named shape (``"triangle"``, ``"square"``, ...), or a pattern
        edge-list file path.

        Plan-guided execution is the default; chain ``.exhaustive()``
        for the filter-process oracle.  ``induced=False`` switches from
        vertex-induced occurrences to monomorphisms.
        """
        return MatchQuery(self, query, induced=induced)

    def explain(
        self,
        query: "Pattern | str",
        *,
        induced: bool = True,
        labeled: bool = True,
    ) -> str:
        """A human-readable plan report for ``query`` without running it.

        Shows the graph's statistics catalog summary, the matching
        order the cost-based planner chose, its per-step cardinality
        estimates, and how it compares to the degree heuristic's order
        (including *why* one won).  The same report backs the CLI's
        ``match --explain``.
        """
        from ..plan.cost import choose_order
        from ..plan.shapes import resolve_query

        if isinstance(query, str):
            query = resolve_query(query)
        pattern = query.canonical()
        catalog = self._catalog_for(labeled)
        choice = choose_order(pattern, catalog)
        plan = self._plan_for(pattern, induced, labeled)
        lines = [
            f"graph: {catalog.describe()}",
            f"plan: {plan.describe()}",
            choice.describe(),
        ]
        return "\n".join(lines)

    def fsm(self, support: int, *, max_edges: int | None = None) -> FSMQuery:
        """Frequent subgraph mining with MNI support threshold ``support``.

        Plan-guided execution is the default: each level's surviving
        candidates are batched into one multi-query plan DAG (cached on
        this session by canonical batch) and evaluated in a single
        guided engine run per level, with MNI domains demuxed per leaf;
        chain ``.exhaustive()`` for the single-run edge-exploration
        oracle.
        """
        return FSMQuery(self, support, max_edges=max_edges)

    def cliques(
        self, max_size: int | None = None, *, min_size: int = 1
    ) -> CliqueQuery:
        """Enumerate all cliques up to ``max_size`` vertices."""
        return CliqueQuery(self, max_size, min_size=min_size)

    def maximal_cliques(self, max_size: int | None = None) -> CliqueQuery:
        """Enumerate maximal cliques (optionally capped at ``max_size``)."""
        return CliqueQuery(self, max_size, maximal=True)

    def compute(self, computation: Computation) -> ComputeQuery:
        """Run an arbitrary :class:`~repro.core.Computation` with the
        session's cached graph state and the fluent option surface."""
        return ComputeQuery(self, computation)

    def resume(
        self, run_dir: str, config: ArabesqueConfig | None = None
    ) -> RunResult:
        """Resume a crashed checkpointed run from ``run_dir`` on this
        session's graph.

        Queries chained with ``.checkpoint(run_dir)`` snapshot at every
        BSP barrier; after a crash, ``miner.resume(run_dir)`` restarts
        from the last barrier and returns the completed
        :class:`~repro.core.results.RunResult`, byte-identical in
        ``canonical_signature`` to the uninterrupted run.  The snapshot
        remembers whether it ran on the labeled graph or the stripped
        variant (``.unlabeled()``); both are tried, so the caller only
        needs the same :class:`Miner` dataset.  An unrelated graph — or
        a ``config`` that changes run semantics — raises the loud
        mismatch errors from :mod:`repro.checkpoint`.  ``config``, when
        given, may override execution knobs only (backend, workers,
        deadline, spill budget, checkpoint cadence).
        """
        from ..checkpoint import CheckpointGraphMismatch, resume_run

        try:
            return resume_run(str(run_dir), self.graph, config=config)
        except CheckpointGraphMismatch:
            stripped = self._graph_variant(False)
            return resume_run(str(run_dir), stripped, config=config)

    # ------------------------------------------------------------------
    # Session caches
    # ------------------------------------------------------------------
    def cache_info(self) -> SessionCacheInfo:
        """A snapshot of the session's cache counters."""
        with self._lock:
            info = SessionCacheInfo(**vars(self._info))
            info.warm_mask_bundles = sum(
                1
                for dag in self._dags.values()
                if has_mask_bundle(dag, self.graph)
                or (
                    self._unlabeled is not None
                    and has_mask_bundle(dag, self._unlabeled)
                )
            )
            return info

    def _graph_variant(self, labeled: bool) -> LabeledGraph:
        if labeled:
            return self.graph
        with self._lock:
            if self._unlabeled is None:
                self._unlabeled = strip_labels(self.graph)
                self._info.strip_builds += 1
            return self._unlabeled

    def _catalog_for(self, labeled: bool = True) -> GraphCatalog:
        """Build (or fetch) the graph variant's statistics catalog —
        the cost-based planner's input, cached like the step-0
        universe."""
        graph = self._graph_variant(labeled)
        with self._lock:
            catalog = self._catalogs.get(labeled)
            if catalog is None:
                catalog = build_catalog(graph)
                self._catalogs[labeled] = catalog
                self._info.catalog_builds += 1
            else:
                self._info.catalog_hits += 1
            return catalog

    def _plan_for(
        self, pattern: Pattern, induced: bool, labeled: bool = True
    ) -> MatchingPlan:
        """Compile (or fetch) the plan for a canonical pattern.

        Compilation is cost-based: the graph variant's cached catalog
        prices candidate matching orders and the cheapest wins (the
        degree heuristic keeps every tie) — order choice affects only
        candidate counts, never results.
        """
        key = (pattern, induced, labeled)
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                plan = compile_plan(
                    pattern,
                    induced=induced,
                    catalog=self._catalog_for(labeled),
                )
                self._plans[key] = plan
                self._info.plan_compilations += 1
            else:
                self._info.plan_hits += 1
            return plan

    def _dag_for(
        self, patterns: tuple[Pattern, ...], induced: bool, labeled: bool = True
    ) -> PlanDAG:
        """Compile (or fetch) the multi-query DAG for a canonical batch.

        Keys on the exact batch tuple + semantics + graph variant:
        guided motifs reuse one DAG per (graph variant, size range)
        across repeated runs, and guided FSM one per level batch —
        per-run domain whitelists are overlaid by the caller
        (:func:`repro.plan.dag.restrict_dag`) without touching the
        cached structure.  Compilation reads the variant's catalog, so
        labeled batches get the jointly-costed harmonized order search.
        """
        key = (tuple(patterns), induced, labeled)
        with self._lock:
            dag = self._dags.get(key)
            if dag is None:
                dag = build_plan_dag(
                    key[0],
                    induced=induced,
                    catalog=self._catalog_for(labeled),
                )
                self._dags[key] = dag
                self._info.dag_compilations += 1
            else:
                self._info.dag_hits += 1
            return dag

    def _universe_for(self, mode: str) -> tuple[int, ...]:
        """Step-0 candidates for ``mode`` — label-independent, so the
        labeled and stripped variants share one entry per mode."""
        with self._lock:
            universe = self._universes.get(mode)
            if universe is None:
                universe = tuple(initial_candidates(self.graph, mode))
                self._universes[mode] = universe
                self._info.universe_builds += 1
            else:
                self._info.universe_hits += 1
            return universe

    def _run(
        self,
        graph: LabeledGraph,
        computation: Computation,
        config: ArabesqueConfig,
    ) -> RunResult:
        """Execute one engine run with the session's cached universe.

        Guided runs (``config.plan`` set) draw step 0 from the plan's
        own pool, so no universe is built or counted for them.  The run
        itself happens outside the session lock so concurrent queries
        overlap; only the cache lookups and counters serialize."""
        with self._lock:
            self._info.runs += 1
        universe = (
            None
            if config.plan is not None
            else self._universe_for(computation.exploration_mode)
        )
        return run_computation(graph, computation, config, universe=universe)

    def _guided_fsm(
        self,
        graph: LabeledGraph,
        support: int,
        max_edges: int | None,
        config: ArabesqueConfig,
    ):
        """Run plan-guided FSM with the session's caches wired in: the
        DAG cache serves (and counts) every level-batch compilation, and
        the run counter meters each per-level engine run.  No universe is
        needed — guided runs draw step 0 from each DAG's own root pools."""
        from ..apps.fsm import run_guided_fsm

        labeled = graph is self.graph
        result = run_guided_fsm(
            graph,
            support,
            max_edges=max_edges,
            config=config,
            dag_provider=lambda patterns: self._dag_for(
                patterns, False, labeled
            ),
            catalog=self._catalog_for(labeled),
        )
        with self._lock:
            self._info.runs += result.engine_runs
        return result

    def _guided_motifs(
        self,
        graph: LabeledGraph,
        max_size: int,
        min_size: int,
        config: ArabesqueConfig,
    ):
        """Run DAG-guided motifs with the session's DAG cache wired in.

        The whole distribution is one engine run over one cached
        multi-query DAG; no universe is involved — the DAG's root pools
        are its own step 0."""
        from ..apps.motifs import run_guided_motifs

        labeled = graph is self.graph
        result = run_guided_motifs(
            graph,
            max_size,
            min_size=min_size,
            config=config,
            dag_provider=lambda patterns: self._dag_for(
                patterns, True, labeled
            ),
        )
        with self._lock:
            self._info.runs += result.engine_runs
        return result


__all__ = [
    "Miner",
    "Query",
    "SessionCacheInfo",
    "SessionError",
]
