"""Unified fluent mining API: one session facade over engine, plan, runtime.

This package is the system's front door.  :class:`Miner` wraps a loaded
graph; its workload methods (``motifs``, ``match``, ``fsm``, ``cliques``,
``maximal_cliques``, ``compute``) return chainable :class:`Query` objects
whose options (``backend``, ``workers``, ``storage``, ``limit``,
``collect``, ``unlabeled``, ``exhaustive``/``guided``/``plan``) are
validated loudly at build time; ``.run()`` yields typed result views and
``.stream()`` an iterator.  Plan-capable queries (``match``, ``fsm``)
compile :class:`~repro.plan.MatchingPlan` objects transparently (guided
execution is the default, ``.exhaustive()`` opts out) and the session
caches plans — including guided FSM's per-candidate plans — the step-0
universe, and the stripped graph variant across queries.

The CLI (:mod:`repro.cli`) and every bundled example are built on this
facade; the older per-app helpers (``run_matching``,
``single_motif_count``) survive as thin deprecated wrappers around it.
"""

from .miner import Miner, SessionCacheInfo
from .query import (
    CliqueQuery,
    ComputeQuery,
    FSMQuery,
    MatchQuery,
    MotifQuery,
    Query,
    SessionError,
)
from .results import (
    CliqueResult,
    FSMResult,
    MatchResult,
    MiningResult,
    MotifResult,
)

__all__ = [
    "CliqueQuery",
    "CliqueResult",
    "ComputeQuery",
    "FSMQuery",
    "FSMResult",
    "MatchQuery",
    "MatchResult",
    "Miner",
    "MiningResult",
    "MotifQuery",
    "MotifResult",
    "Query",
    "SessionCacheInfo",
    "SessionError",
]
