"""Typed per-workload result views over :class:`~repro.core.results.RunResult`.

Every facade query returns one of these instead of the raw engine record:
the raw result stays reachable as ``.raw`` (with its full metrics surface),
while the view adds the accessors that workload's consumers actually want —
``MotifResult.counts()``, ``MatchResult.vertex_sets()``,
``FSMResult.patterns()``, ``CliqueResult.by_size()`` — so callers stop
re-importing the right post-processing helper for each application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.pattern import Pattern
from ..core.results import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..apps.fsm import GuidedFSMResult
    from ..plan.dag import PlanDAG
    from ..plan.planner import MatchingPlan


@dataclass(frozen=True)
class MiningResult:
    """Base view: one finished facade run wrapping the engine's record."""

    #: The untouched engine result — metrics, per-step stats, aggregates.
    raw: RunResult

    # -- pass-through conveniences ------------------------------------
    @property
    def num_steps(self) -> int:
        return self.raw.num_steps

    @property
    def num_outputs(self) -> int:
        return self.raw.num_outputs

    @property
    def outputs(self) -> list:
        return self.raw.outputs

    @property
    def total_candidates(self) -> int:
        return self.raw.total_candidates

    @property
    def total_processed(self) -> int:
        return self.raw.total_processed

    def makespan(self) -> float:
        return self.raw.makespan()

    def signature(self, ignore_output_order: bool = False) -> bytes:
        """The run's :meth:`~repro.core.results.RunResult.canonical_signature`
        — the byte-identity the facade is validated against."""
        return self.raw.canonical_signature(ignore_output_order)

    def summary(self) -> str:
        """One-line run summary (the CLI's footer)."""
        raw = self.raw
        return (
            f"# steps={raw.num_steps} processed={raw.total_processed:,} "
            f"makespan={raw.makespan():.4f}s "
            f"messages={raw.metrics.total_messages:,}"
        )


@dataclass(frozen=True)
class MotifResult(MiningResult):
    """Motif-distribution view: canonical pattern -> embedding count.

    Both strategies land here with the identical ``output_aggregates``
    surface: the exhaustive single-run oracle wraps its engine record
    directly, the DAG-guided path wraps its one multi-query engine run
    (the compiled DAG rides along as ``.dag`` for observability).
    """

    #: Whether the multi-query DAG path ran (False = exhaustive oracle).
    guided: bool = True
    #: The compiled plan DAG the guided run executed (None on the
    #: exhaustive path, and when no motif candidate of the requested
    #: size range exists in the graph).
    dag: "PlanDAG | None" = None

    def counts(self) -> dict[Pattern, int]:
        """Canonical motif pattern -> number of vertex-induced embeddings."""
        from ..apps.motifs import motif_counts

        return motif_counts(self.raw)

    def by_size(self) -> dict[int, dict[Pattern, int]]:
        """Motif counts grouped by motif order (Figure 1's series)."""
        from ..apps.motifs import motif_counts_by_size

        return motif_counts_by_size(self.raw)


@dataclass(frozen=True)
class MatchResult(MiningResult):
    """Pattern-matching view: the query, the strategy, and the matches."""

    #: The (canonical) query pattern this run matched.
    query: Pattern = None  # type: ignore[assignment]
    #: Vertex-induced (True) or monomorphic (False) semantics.
    induced: bool = True
    #: Whether the plan-guided fast path ran (False = exhaustive oracle).
    guided: bool = True
    #: The compiled plan the run executed (None on the exhaustive path).
    plan: "MatchingPlan | None" = None

    @property
    def num_matches(self) -> int:
        return self.raw.num_outputs

    def vertex_sets(self) -> list[tuple[int, ...]]:
        """Matches as a sorted list of sorted vertex tuples — the
        order-insensitive view guided and exhaustive runs agree on."""
        from ..apps.matching import match_vertex_sets

        return match_vertex_sets(self.raw)


@dataclass(frozen=True)
class FSMResult(MiningResult):
    """Frequent-subgraph view: canonical pattern -> MNI support.

    Both strategies land here: the exhaustive single-run path wraps its
    engine record directly, the plan-guided path wraps the combined
    record of its per-candidate runs (same ``final_aggregates`` surface:
    canonical pattern -> merged :class:`~repro.apps.support.Domain`), so
    ``patterns()`` and ``.raw`` metrics work identically for both.
    """

    #: The θ threshold the query mined with.
    support_threshold: int = 1
    #: Whether the plan-guided per-candidate path ran (False = the
    #: exhaustive edge-exploration oracle).
    guided: bool = True
    #: Level-by-level accounting of the guided run (None on the
    #: exhaustive path): candidates, prunes, per-level candidate counts.
    guided_details: "GuidedFSMResult | None" = None

    def patterns(self, support_threshold: int | None = None) -> dict[Pattern, int]:
        """Frequent canonical patterns with their MNI support.

        ``support_threshold`` defaults to the query's own θ; pass a
        *higher* value to post-filter without re-mining.  Lower values
        are rejected: the run's aggregates only cover patterns that
        survived mining at θ, so filtering below it would silently drop
        every pattern whose ancestors were pruned as infrequent.
        """
        from ..apps.fsm import frequent_patterns

        threshold = (
            self.support_threshold
            if support_threshold is None
            else support_threshold
        )
        if threshold < self.support_threshold:
            raise ValueError(
                f"this run mined with support >= {self.support_threshold}; "
                f"patterns(support_threshold={threshold}) would be "
                "incomplete — re-mine with the lower threshold instead"
            )
        return frequent_patterns(self.raw, threshold)


@dataclass(frozen=True)
class CliqueResult(MiningResult):
    """Clique-enumeration view: cliques grouped by size."""

    #: Whether only maximal cliques were emitted.
    maximal: bool = False

    def by_size(self) -> dict[int, list[tuple[int, ...]]]:
        """Clique size -> sorted list of member-vertex tuples."""
        from ..apps.cliques import cliques_by_size

        return cliques_by_size(self.raw)
