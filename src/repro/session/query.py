"""Chainable query objects built by :class:`~repro.session.Miner`.

A query is a declarative description of one mining run: the workload
(fixed by the :class:`Miner` method that created it) plus execution
options chained fluently::

    Miner(graph).motifs(max_size=4).unlabeled().workers(8).backend("process").run()
    Miner(graph).match("square").exhaustive().limit(1000).run()

Every option validates its argument **at call time** — unknown backend or
storage strings, conflicting strategy choices (``.exhaustive()`` plus a
precompiled ``.plan()``), or nonsensical values raise a loud
:class:`SessionError` before anything runs.  ``.run()`` returns the
workload's typed result view (:mod:`repro.session.results`);
``.count()`` returns just the exact output count (collection disabled);
``.stream()`` returns an iterator over the workload's natural items.

Plan-capable queries default to **guided** execution with
``.exhaustive()`` as the opt-out into the filter-process oracle:
:meth:`Miner.match` compiles its query into one
:class:`~repro.plan.MatchingPlan` (cached on the session),
:meth:`Miner.motifs` compiles the whole motif batch into one multi-query
:class:`~repro.plan.PlanDAG` answering the distribution in a single run
(:func:`repro.apps.motifs.run_guided_motifs`), and :meth:`Miner.fsm`
batches each level's candidates into one DAG run through the same
session DAG cache, accumulating MNI domains demuxed per leaf
(:func:`repro.apps.fsm.run_guided_fsm`).  Guided queries also default to
list embedding storage — the plan's symmetry restrictions already make
every stored path unique, so ODAG's spurious-path re-validation is pure
overhead there (measured in ``benchmarks/bench_planner_speedup.py``); an
explicit ``.storage()`` or ``.config()`` always wins.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Any, Iterator

from ..core.budget import CancelFlag
from ..core.computation import Computation
from ..core.config import ArabesqueConfig, BACKENDS
from ..core.pattern import Pattern
from ..core.storage import LIST_STORAGE, STORAGE_MODES
from ..plan.planner import MatchingPlan

from .results import (
    CliqueResult,
    FSMResult,
    MatchResult,
    MiningResult,
    MotifResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .miner import Miner


class SessionError(ValueError):
    """A facade query was built or combined incorrectly."""


class Query:
    """Base chainable query: shared execution options + run/count/stream.

    Subclasses fix the workload (which computation runs and which result
    view wraps the outcome); this class owns everything the workloads
    share — worker count, backend, storage, output handling, and the
    labeled/unlabeled graph choice.
    """

    #: Human name used in error messages.
    workload = "mining"
    #: Whether ``.stream()`` iterates the run's collected outputs (and
    #: therefore conflicts with ``.collect(False)``).  Workloads whose
    #: stream comes from aggregates (motifs, FSM) override this.
    _stream_needs_outputs = True

    def __init__(self, miner: "Miner") -> None:
        self._miner = miner
        self._backend: str | None = None
        self._workers: int | None = None
        self._storage: str | None = None
        self._limit: int | None = None
        self._collect: bool | None = None
        self._labeled = True
        self._base_config: ArabesqueConfig | None = None
        self._deadline_seconds: float | None = None
        self._max_embeddings: int | None = None
        self._checkpoint_dir: str | None = None
        self._cancel: CancelFlag | None = None

    # ------------------------------------------------------------------
    # Chainable execution options (validated eagerly)
    # ------------------------------------------------------------------
    def backend(self, name: str) -> "Query":
        """Execution runtime for the worker step tasks."""
        if name not in BACKENDS:
            raise SessionError(
                f"unknown backend {name!r} (choose from "
                f"{', '.join(BACKENDS)})"
            )
        self._backend = name
        return self

    def workers(self, count: int) -> "Query":
        """Logical workers the exploration is partitioned over."""
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise SessionError(
                f"workers() needs an integer >= 1, got {count!r}"
            )
        self._workers = count
        return self

    def storage(self, mode: str) -> "Query":
        """Embedding storage strategy ("odag", "list", or "adaptive")."""
        if mode not in STORAGE_MODES:
            raise SessionError(
                f"unknown storage mode {mode!r} (choose from "
                f"{', '.join(STORAGE_MODES)})"
            )
        self._storage = mode
        return self

    def limit(self, count: int) -> "Query":
        """Cap on collected outputs (exact counts are never truncated)."""
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise SessionError(
                f"limit() needs an integer >= 0, got {count!r}"
            )
        if self._collect is False:
            raise SessionError(
                "limit() caps collected outputs, but collect(False) "
                "disabled collection for this query"
            )
        self._limit = count
        return self

    def collect(self, flag: bool = True) -> "Query":
        """Keep (or drop) individual outputs; counts stay exact either way."""
        if not flag and self._limit is not None:
            raise SessionError(
                "collect(False) conflicts with the limit() already set on "
                "this query — a cap on outputs that are not collected"
            )
        self._collect = bool(flag)
        return self

    def unlabeled(self) -> "Query":
        """Run on the session's label-stripped graph variant (cached)."""
        self._labeled = False
        return self

    def deadline(self, seconds: float) -> "Query":
        """Cooperative wall-clock budget for the run: exceeding it raises
        a loud :class:`~repro.core.budget.BudgetExceeded` at the next
        BSP barrier (or mid-step probe) instead of running forever.  The
        query service arms this on every admitted request."""
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) \
                or not seconds > 0:
            raise SessionError(
                f"deadline() needs a positive number of seconds, "
                f"got {seconds!r}"
            )
        self._deadline_seconds = float(seconds)
        return self

    def max_embeddings(self, count: int) -> "Query":
        """Cooperative cap on processed embeddings (checked at every BSP
        barrier, deterministic across backends); exceeding it raises a
        loud :class:`~repro.core.budget.BudgetExceeded`."""
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise SessionError(
                f"max_embeddings() needs an integer >= 1, got {count!r}"
            )
        self._max_embeddings = count
        return self

    def checkpoint(self, run_dir: "str | os.PathLike") -> "Query":
        """Snapshot the run into ``run_dir`` at every BSP barrier, so a
        crash can be resumed from the last barrier via
        :meth:`Miner.resume` (or ``repro.checkpoint.resume_run``).  See
        docs/checkpoint.md for the format and resume semantics."""
        if not isinstance(run_dir, (str, os.PathLike)) or not str(run_dir):
            raise SessionError(
                f"checkpoint() needs a non-empty directory path, "
                f"got {run_dir!r}"
            )
        self._checkpoint_dir = str(run_dir)
        return self

    def cancellation(self, flag: CancelFlag) -> "Query":
        """Arm a :class:`~repro.core.budget.CancelFlag`: setting it from
        another thread makes the run raise a loud
        :class:`~repro.core.budget.RunCancelled` at the next mid-step
        probe or BSP barrier.  The query service arms one per request to
        abort runs whose client disconnected."""
        if not isinstance(flag, CancelFlag):
            raise SessionError(
                "cancellation() needs a repro.core.CancelFlag "
                f"(got {type(flag).__name__})"
            )
        self._cancel = flag
        return self

    def config(self, config: ArabesqueConfig) -> "Query":
        """Use ``config`` as the base configuration; chained options
        override individual fields on top of it."""
        if not isinstance(config, ArabesqueConfig):
            raise SessionError(
                "config() needs an ArabesqueConfig "
                f"(got {type(config).__name__})"
            )
        self._base_config = config
        return self

    # Pattern-strategy options exist on every query so misuse fails with
    # a message instead of an AttributeError; only the plan-capable
    # queries (MatchQuery, FSMQuery, MotifQuery) override.
    def guided(self) -> "Query":
        raise SessionError(
            f"{self.workload} queries have no guided/exhaustive choice — "
            "only plan-capable queries (Miner.match, Miner.fsm, "
            "Miner.motifs) compile exploration plans"
        )

    def exhaustive(self) -> "Query":
        raise SessionError(
            f"{self.workload} queries always run exhaustively — only "
            "plan-capable queries (Miner.match, Miner.fsm, Miner.motifs) "
            "have an exhaustive() opt-out"
        )

    def plan(self, plan: MatchingPlan) -> "Query":
        raise SessionError(
            f"{self.workload} queries cannot take a precompiled plan — "
            "only pattern queries (Miner.match) accept one (guided FSM "
            "and guided motifs compile their own multi-query plan DAGs)"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MiningResult:
        """Execute the query and return its typed result view."""
        graph = self._miner._graph_variant(self._labeled)
        self._validate(graph)
        config = self._build_config()
        raw = self._miner._run(graph, self._computation(), config)
        return self._wrap(raw)

    def count(self) -> int:
        """Execute without collecting outputs; return the exact count.

        The collection default (and any ``limit()``, which only caps
        *collected* outputs — counts are never truncated) is overridden
        only for this call: a later ``.run()`` on the same query still
        collects with its cap, unless the query itself chained
        ``.collect(False)``.
        """
        saved_collect, saved_limit = self._collect, self._limit
        if saved_collect is None:
            self._collect = False
            self._limit = None
        try:
            return self.run().raw.num_outputs
        finally:
            self._collect, self._limit = saved_collect, saved_limit

    def stream(self) -> Iterator[Any]:
        """Execute and iterate the workload's natural output items."""
        if self._stream_needs_outputs and self._effective_collect() is False:
            raise SessionError(
                f"stream() iterates the run's outputs, but this "
                f"{self.workload} query has collect_outputs disabled — "
                "drop collect(False) to stream"
            )
        result = self.run()
        return iter(self._stream_items(result))

    # ------------------------------------------------------------------
    # Internals / subclass hooks
    # ------------------------------------------------------------------
    def _effective_collect(self) -> bool:
        if self._collect is not None:
            return self._collect
        if self._base_config is not None:
            return self._base_config.collect_outputs
        return ArabesqueConfig.collect_outputs

    def _default_storage(self) -> str | None:
        """Workload's auto storage mode; None keeps the config default."""
        return None

    def _build_config(self) -> ArabesqueConfig:
        base = self._base_config or ArabesqueConfig()
        if base.plan is not None and not isinstance(self, _PatternShaped):
            raise SessionError(
                f"the base config carries a plan, but {self.workload} "
                "queries never take one — only Miner.match accepts a "
                "precompiled MatchingPlan (guided FSM and guided motifs "
                "compile their own multi-query plan DAGs)"
            )
        overrides: dict[str, Any] = {}
        if self._workers is not None:
            overrides["num_workers"] = self._workers
        if self._backend is not None:
            overrides["backend"] = self._backend
        if self._storage is not None:
            overrides["storage"] = self._storage
        elif self._base_config is None:
            auto = self._default_storage()
            if auto is not None:
                overrides["storage"] = auto
        if self._collect is not None:
            overrides["collect_outputs"] = self._collect
        if self._limit is not None:
            overrides["output_limit"] = self._limit
        if self._deadline_seconds is not None:
            overrides["deadline_seconds"] = self._deadline_seconds
        if self._max_embeddings is not None:
            overrides["max_embeddings"] = self._max_embeddings
        if self._checkpoint_dir is not None:
            overrides["checkpoint_dir"] = self._checkpoint_dir
        if self._cancel is not None:
            overrides["cancel"] = self._cancel
        if self._limit is not None and not self._effective_collect():
            raise SessionError(
                "limit() caps collected outputs, but the base config has "
                "collect_outputs=False — enable collect() or drop limit()"
            )
        return dataclasses.replace(base, **overrides) if overrides else base

    def _validate(self, graph) -> None:
        """Cross-option validation hook; runs right before execution."""

    def _computation(self) -> Computation:
        raise NotImplementedError

    def _wrap(self, raw) -> MiningResult:
        return MiningResult(raw)

    def _stream_items(self, result: MiningResult) -> Any:
        return result.raw.outputs


class _PatternShaped:
    """Marker: queries that may carry a MatchingPlan in their config."""


class _GuidedAggregateQuery(Query):
    """Shared strategy surface for aggregate plan-capable workloads.

    FSM and motifs both answer with an *aggregate* (a pattern table, a
    distribution) rather than per-embedding outputs, and both default to
    guided execution over session-cached plan DAGs.  This base owns the
    control flow they share — guided/exhaustive selection, the loud
    rejections of ``.collect(True)``/``.limit()``/``.count()`` and the
    ``config(output_limit=...)`` spelling under guided execution, the
    list-storage default, and the guided ``run()`` dispatch — while each
    workload supplies its own error wording (class attributes below) and
    its guided driver (``_run_guided``).
    """

    #: Workload-specific error texts (each must point at .exhaustive()).
    _guided_option_error: str
    _collect_error: str
    _limit_error: str
    _count_error: str
    _config_cap_error: str

    def __init__(self, miner: "Miner") -> None:
        super().__init__(miner)
        self._guided: bool | None = None  # None = default (guided)

    # -- strategy options ---------------------------------------------
    def guided(self) -> "_GuidedAggregateQuery":
        """Run the plan-guided path (the default)."""
        if self._collect is True or self._limit is not None:
            raise SessionError(self._guided_option_error)
        self._guided = True
        return self

    def exhaustive(self) -> "_GuidedAggregateQuery":
        """Opt out of guided execution into the exploration-agnostic
        oracle covering the whole workload in one run."""
        self._guided = False
        return self

    @property
    def is_guided(self) -> bool:
        return self._guided if self._guided is not None else True

    # -- option interactions ------------------------------------------
    def collect(self, flag: bool = True) -> "_GuidedAggregateQuery":
        if flag and self._guided is not False:
            raise SessionError(self._collect_error)
        super().collect(flag)
        return self

    def limit(self, count: int) -> "_GuidedAggregateQuery":
        if self._guided is not False:
            raise SessionError(self._limit_error)
        super().limit(count)
        return self

    def count(self) -> int:
        if self.is_guided:
            raise SessionError(self._count_error)
        return super().count()

    def _default_storage(self) -> str | None:
        # Guided runs store only plan-accepted symmetry-unique paths, so
        # list storage wins for the same reason it does for matches.
        return LIST_STORAGE if self.is_guided else None

    # -- execution ------------------------------------------------------
    def run(self) -> MiningResult:
        if not self.is_guided:
            return super().run()
        if self._base_config is not None and self._base_config.output_limit is not None:
            # Mirror the .limit() rejection for the config() spelling —
            # a capped output collection only makes sense exhaustively.
            # (A bare collect_outputs=True cannot be rejected the same
            # way: it is the dataclass default, so intent is invisible;
            # the guided drivers run with collection off regardless.)
            raise SessionError(self._config_cap_error)
        graph = self._miner._graph_variant(self._labeled)
        self._validate(graph)
        return self._run_guided(graph, self._build_config())

    def _run_guided(self, graph, config: ArabesqueConfig) -> MiningResult:
        """Execute the workload's guided driver with the built config."""
        raise NotImplementedError


class MotifQuery(_GuidedAggregateQuery):
    """Motif frequency distribution up to ``max_size`` vertices.

    DAG-guided execution is the default, mirroring :class:`MatchQuery`
    and :class:`FSMQuery`: every canonical motif candidate of the size
    range is compiled into ONE multi-query plan DAG (cached on the
    session) and the whole distribution is answered in a single guided
    engine run.  ``.exhaustive()`` opts out into the
    exploration-agnostic oracle.  Neither strategy materializes
    per-embedding outputs — the distribution is an aggregate — so
    ``.collect(True)``/``.limit()``/``.count()`` require ``.exhaustive()``
    (where they keep their engine-level meaning), exactly like guided
    FSM.
    """

    workload = "motifs"
    _stream_needs_outputs = False  # streams the aggregated distribution

    _guided_option_error = (
        "guided motifs aggregate the distribution, not per-embedding "
        "outputs — collect()/limit() need the exhaustive() path"
    )
    _collect_error = (
        "guided motifs (the default) aggregate the distribution, not "
        "per-embedding outputs — chain .exhaustive() before .collect()"
    )
    _limit_error = (
        "guided motifs (the default) produce a distribution table, not "
        "collected outputs — chain .exhaustive() before .limit()"
    )
    _count_error = (
        "guided motifs do not materialize per-embedding outputs to "
        "count — read the distribution via .run().counts(), or chain "
        ".exhaustive() for the raw output count"
    )
    _config_cap_error = (
        "the base config caps collected outputs (output_limit), but "
        "guided motifs (the default) aggregate the distribution, not "
        "per-embedding outputs — chain .exhaustive() to collect outputs"
    )

    def __init__(self, miner: "Miner", max_size: int, min_size: int = 3) -> None:
        super().__init__(miner)
        from ..apps.motifs import MotifCounting

        MotifCounting(max_size, min_size=min_size)  # eager arg validation
        self._max_size = max_size
        self._min_size = min_size

    def _run_guided(self, graph, config: ArabesqueConfig) -> "MotifResult":
        guided = self._miner._guided_motifs(
            graph, self._max_size, self._min_size, config
        )
        return MotifResult(guided.run, guided=True, dag=guided.dag)

    def _computation(self) -> Computation:
        from ..apps.motifs import MotifCounting

        return MotifCounting(self._max_size, min_size=self._min_size)

    def _wrap(self, raw) -> MotifResult:
        return MotifResult(raw, guided=False)

    def _stream_items(self, result: MotifResult) -> Any:
        return sorted(
            result.counts().items(),
            key=lambda kv: (kv[0].num_vertices, -kv[1], repr(kv[0])),
        )


class CliqueQuery(Query):
    """Clique (or maximal-clique) enumeration."""

    workload = "cliques"

    def __init__(
        self,
        miner: "Miner",
        max_size: int | None,
        min_size: int = 1,
        maximal: bool = False,
    ) -> None:
        super().__init__(miner)
        from ..apps.cliques import CliqueFinding
        from ..apps.maximal_cliques import MaximalCliqueFinding

        if maximal:
            MaximalCliqueFinding(max_size=max_size)  # eager arg validation
        else:
            CliqueFinding(max_size=max_size, min_size=min_size)
        self._max_size = max_size
        self._min_size = min_size
        self._maximal = maximal

    def _computation(self) -> Computation:
        from ..apps.cliques import CliqueFinding
        from ..apps.maximal_cliques import MaximalCliqueFinding

        if self._maximal:
            return MaximalCliqueFinding(max_size=self._max_size)
        return CliqueFinding(max_size=self._max_size, min_size=self._min_size)

    def _wrap(self, raw) -> CliqueResult:
        return CliqueResult(raw, maximal=self._maximal)


class FSMQuery(_GuidedAggregateQuery):
    """Frequent subgraph mining with MNI support.

    Plan-guided execution is the default, mirroring :class:`MatchQuery`:
    candidate patterns are grown level-wise, each level's batch is
    compiled into one multi-query plan DAG (session-cached), and MNI
    domains are accumulated straight from the guided matches, demuxed
    per accepting leaf.  ``.exhaustive()`` opts out into the single-run
    edge-exploration oracle — the only mode that materializes
    per-embedding outputs, so ``.collect(True)``/``.limit()``/
    ``.count()`` require it.
    """

    workload = "fsm"
    _stream_needs_outputs = False  # streams the frequent-pattern table

    _guided_option_error = (
        "guided FSM accumulates MNI domains, not per-embedding outputs "
        "— collect()/limit() need the exhaustive() path"
    )
    _collect_error = (
        "guided FSM (the default) accumulates MNI domains, not "
        "per-embedding outputs — chain .exhaustive() before .collect() "
        "to materialize frequent embeddings"
    )
    _limit_error = (
        "guided FSM (the default) produces a pattern table, not "
        "collected outputs — chain .exhaustive() before .limit()"
    )
    _count_error = (
        "guided FSM does not materialize frequent embeddings to count — "
        "use len(result.patterns()) for the pattern count, or chain "
        ".exhaustive() for the embedding count"
    )
    _config_cap_error = (
        "the base config caps collected outputs (output_limit), but "
        "guided FSM (the default) accumulates MNI domains, not "
        "per-embedding outputs — chain .exhaustive() to collect "
        "frequent embeddings"
    )

    def __init__(
        self, miner: "Miner", support: int, max_edges: int | None = None
    ) -> None:
        super().__init__(miner)
        from ..apps.fsm import FrequentSubgraphMining

        FrequentSubgraphMining(support, max_edges=max_edges)  # eager check
        self._support = support
        self._max_edges = max_edges

    def _run_guided(self, graph, config: ArabesqueConfig) -> "FSMResult":
        guided = self._miner._guided_fsm(
            graph, self._support, self._max_edges, config
        )
        return FSMResult(
            guided.combined,
            support_threshold=self._support,
            guided=True,
            guided_details=guided,
        )

    def _computation(self) -> Computation:
        from ..apps.fsm import FrequentSubgraphMining

        return FrequentSubgraphMining(self._support, max_edges=self._max_edges)

    def _wrap(self, raw) -> FSMResult:
        return FSMResult(raw, support_threshold=self._support, guided=False)

    def _stream_items(self, result: FSMResult) -> Any:
        return sorted(
            result.patterns().items(),
            key=lambda kv: (kv[0].num_edges, -kv[1], repr(kv[0])),
        )


class MatchQuery(Query, _PatternShaped):
    """Retrieve every occurrence of a fixed query pattern.

    Guided execution (plan compiled and cached on the session) is the
    default; ``.exhaustive()`` opts out into the filter-process oracle.
    """

    workload = "match"

    def __init__(
        self, miner: "Miner", query: "Pattern | str", induced: bool = True
    ) -> None:
        super().__init__(miner)
        if isinstance(query, str):
            from ..plan.shapes import resolve_query

            query = resolve_query(query)
        if not isinstance(query, Pattern):
            raise SessionError(
                "match() needs a Pattern, a named shape, or a pattern-file "
                f"path (got {type(query).__name__})"
            )
        if query.num_vertices == 0:
            raise SessionError("query pattern must not be empty")
        if not query.is_connected():
            raise SessionError("query pattern must be connected")
        self._query = query.canonical()
        self._induced = bool(induced)
        self._guided: bool | None = None  # None = default (guided)
        self._plan: MatchingPlan | None = None

    # -- strategy options ---------------------------------------------
    def guided(self) -> "MatchQuery":
        """Run the plan-guided fast path (the default)."""
        self._guided = True
        return self

    def exhaustive(self) -> "MatchQuery":
        """Opt out of guided execution: run the filter-process oracle."""
        if self._plan is not None:
            raise SessionError(
                "exhaustive() conflicts with the precompiled plan() already "
                "set on this query — plans only drive guided matching"
            )
        self._guided = False
        return self

    def plan(self, plan: MatchingPlan) -> "MatchQuery":
        """Reuse a precompiled plan instead of compiling (implies guided)."""
        if not isinstance(plan, MatchingPlan):
            raise SessionError(
                f"plan() needs a repro.plan.MatchingPlan "
                f"(got {type(plan).__name__})"
            )
        if self._guided is False:
            raise SessionError(
                "plan() conflicts with exhaustive() already set on this "
                "query — plans only drive guided matching"
            )
        if plan.induced != self._induced:
            raise SessionError(
                f"precompiled plan has induced={plan.induced}, "
                f"but induced={self._induced} was requested"
            )
        if plan.pattern != self._query:
            raise SessionError(
                "precompiled plan was built from a different query pattern"
            )
        self._plan = plan
        return self

    # -- execution ------------------------------------------------------
    @property
    def is_guided(self) -> bool:
        return self._guided if self._guided is not None else True

    def _default_storage(self) -> str | None:
        # Guided matches store only symmetry-unique plan paths, so ODAG's
        # spurious-path re-validation buys nothing; list storage measured
        # faster in benchmarks/bench_planner_speedup.py.
        return LIST_STORAGE if self.is_guided else None

    def _validate(self, graph) -> None:
        if not self._labeled and (
            any(self._query.vertex_labels)
            or any(label for _, _, label in self._query.edges)
        ):
            raise SessionError(
                "query pattern carries labels but the graph's labels are "
                "stripped — it would silently match nothing; match on the "
                "labeled graph instead (drop unlabeled(); from the CLI, "
                "pass --labeled)"
            )

    def _resolved_plan(self) -> MatchingPlan:
        if self._plan is None:
            self._plan = self._miner._plan_for(
                self._query, self._induced, self._labeled
            )
        return self._plan

    def _build_config(self) -> ArabesqueConfig:
        config = super()._build_config()
        if self.is_guided:
            return dataclasses.replace(config, plan=self._resolved_plan())
        if config.plan is not None:
            return dataclasses.replace(config, plan=None)
        return config

    def _computation(self) -> Computation:
        from ..apps.matching import GraphMatching, GuidedMatching

        if self.is_guided:
            return GuidedMatching(self._resolved_plan())
        return GraphMatching(self._query, induced=self._induced)

    def _wrap(self, raw) -> MatchResult:
        return MatchResult(
            raw,
            query=self._query,
            induced=self._induced,
            guided=self.is_guided,
            plan=self._resolved_plan() if self.is_guided else None,
        )

    def _stream_items(self, result: MatchResult) -> Any:
        return result.vertex_sets()


class ComputeQuery(Query):
    """Escape hatch: run an arbitrary user :class:`Computation` with the
    session's cached graph state and the fluent option surface."""

    workload = "compute"

    def __init__(self, miner: "Miner", computation: Computation) -> None:
        super().__init__(miner)
        if not isinstance(computation, Computation):
            raise SessionError(
                "compute() needs a repro.core.Computation instance "
                f"(got {type(computation).__name__})"
            )
        self._user_computation = computation

    def _computation(self) -> Computation:
        return self._user_computation
