"""Pure worker step tasks — the unit of work every backend schedules.

One *step task* is what a single logical worker does during one exploration
step of Algorithm 1: read its rank-range share of the previous step's
global store, apply the aggregation filter/process, generate and
canonicality-check extensions, run the user filter/process, and write
survivors to a worker-local store.

The task is a **pure function** of an immutable :class:`StepContext` and a
``worker_id``: it touches no engine state, and every effect it has — the
local store, aggregation partials, emitted outputs, counters, phase
timings, and newly canonicalized patterns — travels back in a
:class:`~repro.core.results.WorkerDelta` that the engine merges at the step
barrier.  Purity is what lets the three execution backends
(:mod:`repro.runtime`) run tasks sequentially, on threads, or in separate
processes while producing byte-identical results:

* no shared mutable state ⇒ no ordering hazards — merging deltas in
  worker-id order reproduces the serial schedule exactly;
* everything in the context and the delta is picklable ⇒ the process
  backend can ship tasks across process boundaries;
* the computation object is shallow-copied per task ⇒ the per-task context
  binding (``bind_context``) never races between threads.

When the context carries a guided :class:`~repro.plan.MatchingPlan`, the
expansion swaps its two hot pieces for ONE fused kernel
(:func:`repro.plan.guided.guided_survivors`): the candidate pool is the
plan's anchor neighborhood bitset (``&``-ed with the step whitelist when
one is set) instead of the whole frontier, and the per-candidate
label/adjacency/symmetry acceptance test collapses into the same chain
of big-int ``&`` ops, decoded to sorted id order once per embedding —
the plan's ordering restrictions already guarantee each occurrence is
generated exactly once, so no canonicality check is needed.  A multi-query
:class:`~repro.plan.PlanDAG` generalizes the same fusion from one step to
a *set of active DAG nodes* per embedding
(:meth:`repro.plan.dag.DagStepper.step`): per live trie node the pool —
the deduplicated union of the surviving patterns' next anchor
neighborhoods — and the shared structural check collapse into one ``&``
chain over the DAG's precomputed mask bundle (with a degree-adaptive
row-iteration fallback for tiny pools), per-member residual checks run
on the decoded survivors, and the extended embedding is stored once no
matter how many patterns it advances — emission happens once per
accepting leaf inside the computation.  Everything else (stores,
aggregation, deltas, backends) is unchanged, which is what keeps guided
runs byte-identical across backends and worker counts too.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from ..core.aggregation import LocalAggregation
from ..core.budget import (
    BudgetExceeded,
    CancelFlag,
    DEADLINE_BUDGET,
    DEADLINE_CHECK_INTERVAL,
    RunCancelled,
)
from ..core.canonical import extension_checker, full_checker
from ..core.computation import Computation, ComputationContext
from ..core.embedding import make_embedding
from ..core.extension import extensions
from ..core.pattern import Pattern, PatternCanonicalizer
from ..core.results import StepStats, WorkerDelta
from ..core.storage import (
    DEFAULT_SPILL_BUDGET_NBYTES,
    EmbeddingStore,
    LIST_STORAGE,
    ListStore,
    OdagStore,
    SPILL_STORAGE,
    SpillListStore,
)
from ..plan.dag import PlanDAG, bound_stepper
from ..plan.guided import (
    guided_extension_check,
    guided_survivors,
    plan_checker,
)
from ..plan.planner import MatchingPlan


@dataclass(frozen=True)
class StepContext:
    """Immutable snapshot of everything one exploration step's tasks read.

    Built once per step by the engine and shared (or shipped) to every
    worker task.  Nothing in here is mutated during the step — the previous
    step's global store and published aggregates are read-only, and the
    pattern cache is a snapshot of the engine's master canonicalizer.
    """

    step: int
    graph: Any
    #: Initialized computation; tasks shallow-copy it before binding their
    #: per-task context, so the original is never written to.
    computation: Computation
    mode: str
    num_workers: int
    storage: str
    incremental_canonicality: bool
    profile_phases: bool
    collect_outputs: bool
    output_limit: int | None
    two_level_aggregation: bool
    #: Guided exploration plan — a single :class:`MatchingPlan` or a
    #: multi-query :class:`PlanDAG`; ``None`` selects the exhaustive path.
    plan: MatchingPlan | PlanDAG | None = None
    #: Master quick-pattern -> (canonical, mapping) cache snapshot.
    pattern_cache: dict[Pattern, tuple[Pattern, tuple[int, ...]]] = field(
        default_factory=dict
    )
    #: Previous step's published aggregates (``readAggregate`` source).
    published_aggregates: dict[Hashable, Any] = field(default_factory=dict)
    #: Step 0 only: the step-0 candidate pool, computed once by the
    #: engine — the expansion of the "undefined" embedding (exhaustive),
    #: or the plan's own pool (label index / whitelist / DAG root-pool
    #: union) on guided runs.
    universe: tuple[int, ...] | None = None
    #: Steps >= 1: the merged global store of the previous step (set I).
    global_store: EmbeddingStore | None = None
    #: Monotonic instant the run's deadline budget expires (``None`` = no
    #: deadline).  Tasks probe it every
    #: :data:`~repro.core.budget.DEADLINE_CHECK_INTERVAL` embeddings so a
    #: single pathological step fails fast instead of only at the next
    #: barrier; ``time.monotonic`` is the system-wide ``CLOCK_MONOTONIC``
    #: on Linux, so the instant is comparable inside the process
    #: backend's forked workers too.
    deadline_at: float | None = None
    #: Spill-mode only: the run's spill root where this step's worker
    #: stores write their segments, and the per-store byte budget.
    spill_dir: str | None = None
    spill_budget_nbytes: int = DEFAULT_SPILL_BUDGET_NBYTES
    #: Cooperative cancellation flag, probed alongside the deadline.
    #: Shared with serial/thread workers; the process backend's pickled
    #: copies are inert (barrier-granularity cancel there — see
    #: :class:`~repro.core.budget.CancelFlag`).
    cancel: CancelFlag | None = None


class WorkerTaskContext(ComputationContext):
    """Framework functions bound while one task runs one step.

    All writes land in task-local buffers (the delta and the local
    aggregations); reads come from the immutable step context.
    """

    def __init__(
        self,
        context: StepContext,
        delta: WorkerDelta,
        local_agg: LocalAggregation,
        local_out: LocalAggregation,
        canonicalizer: PatternCanonicalizer,
    ) -> None:
        self._context = context
        self._delta = delta
        self._local_agg = local_agg
        self._local_out = local_out
        self._canonicalizer = canonicalizer

    def output(self, value: Any) -> None:
        self._delta.num_outputs += 1
        if self._context.collect_outputs:
            limit = self._context.output_limit
            if limit is None or len(self._delta.outputs) < limit:
                self._delta.outputs.append(value)

    def map(self, key: Hashable, value: Any) -> None:
        self._local_agg.map(key, value)

    def map_output(self, key: Hashable, value: Any) -> None:
        self._local_out.map(key, value)

    def read_aggregate(self, key: Hashable) -> Any:
        if isinstance(key, Pattern):
            key = self._canonicalizer.canonicalize(key)[0]
        return self._context.published_aggregates.get(key)

    def note_domain_hits(self, count: int) -> None:
        # Guided domain accumulation (plan-guided FSM) reports how many
        # per-vertex images it recorded; the counter merges at the step
        # barrier like every other StepStats field, so the tally is
        # backend- and worker-count-invariant.
        self._delta.counters.domain_hits += count


def _probe_interrupts(
    deadline_at: float | None,
    cancel: CancelFlag | None,
    count: int,
) -> None:
    """Periodic in-step probe (every DEADLINE_CHECK_INTERVAL embeddings)
    of the two cooperative interrupts — the deadline budget and external
    cancellation — so one pathological step cannot run minutes past its
    cutoff before reaching the barrier.  The task sees only the expiry
    instant; the engine re-raises deadline trips with the run-level limit
    filled in."""
    if count % DEADLINE_CHECK_INTERVAL != 0:
        return
    if cancel is not None and cancel.is_set():
        raise RunCancelled("run cancelled mid-step")
    if deadline_at is not None and time.monotonic() > deadline_at:
        raise BudgetExceeded(DEADLINE_BUDGET)


def _make_extension_checker(mode: str, incremental: bool, plan=None):
    """The acceptance predicate for one-word extensions.

    Exhaustive mode uses the canonicality check (Algorithm 2); guided mode
    uses the plan's per-step constraint check, whose symmetry restrictions
    subsume canonicality's dedup role.  Multi-query DAGs never reach this
    helper — the expansion pass builds a per-task :class:`DagStepper`
    whose check accepts a candidate when any surviving member plan does.
    """
    if plan is not None:
        return plan_checker(plan)
    if incremental:
        return extension_checker(mode)
    full = full_checker(mode)

    def from_scratch(graph, parent_words, word):
        return full(graph, parent_words + (word,))

    return from_scratch


def run_step_task(context: StepContext, worker_id: int) -> WorkerDelta:
    """Execute one worker's share of one exploration step; return its delta.

    Pure: same ``(context, worker_id)`` always yields the same delta, and
    nothing outside the returned delta is modified.
    """
    computation = copy.copy(context.computation)
    canonicalizer = PatternCanonicalizer(
        context.two_level_aggregation, seed_cache=context.pattern_cache
    )
    local_agg = LocalAggregation(computation.reduce, canonicalizer)
    local_out = LocalAggregation(computation.reduce_output, canonicalizer)
    store: EmbeddingStore
    if context.storage == LIST_STORAGE:
        store = ListStore()
    elif context.storage == SPILL_STORAGE:
        # Per-(step, worker) segment tag so every task in the step can
        # share the run's spill root without filename collisions.
        store = SpillListStore(
            directory=context.spill_dir,
            budget_nbytes=context.spill_budget_nbytes,
            tag=f"s{context.step}w{worker_id}",
        )
    else:
        store = OdagStore()
    delta = WorkerDelta(
        worker_id=worker_id,
        local_store=store,
        counters=StepStats(step=context.step),
    )
    task_context = WorkerTaskContext(
        context, delta, local_agg, local_out, canonicalizer
    )
    computation.bind_context(task_context)
    try:
        if context.step == 0:
            _initial_pass(context, worker_id, computation, canonicalizer, store, delta)
        else:
            _expansion_pass(
                context, worker_id, computation, canonicalizer, store, delta
            )
    finally:
        computation.bind_context(None)
    delta.agg_partials = local_agg.merged_partials()
    delta.out_partials = local_out.merged_partials()
    delta.pattern_requests = canonicalizer.requests
    delta.isomorphism_runs = canonicalizer.isomorphism_runs
    delta.new_pattern_entries = canonicalizer.new_entries()
    return delta


def run_step_chunk(
    context: StepContext, worker_ids: Sequence[int]
) -> list[WorkerDelta]:
    """Run several workers' tasks back to back (per-worker chunking).

    The process backend hands each pool process one chunk so a step costs
    one task message per process instead of one per logical worker.
    """
    return [run_step_task(context, worker_id) for worker_id in worker_ids]


# ----------------------------------------------------------------------
# The two passes (Algorithm 1, split by step number)
# ----------------------------------------------------------------------
def _initial_pass(
    context: StepContext,
    worker_id: int,
    computation: Computation,
    canonicalizer: PatternCanonicalizer,
    store: EmbeddingStore,
    delta: WorkerDelta,
) -> None:
    """Step 0: expand the "undefined" embedding — all vertices/edges."""
    graph = context.graph
    mode = context.mode
    profile = context.profile_phases
    stats = delta.counters
    phase_seconds = delta.phase_seconds
    plan = context.plan
    # Guided runs draw step 0 from the plan's own pool (label index,
    # whitelist, or DAG root-pool union); the engine computes it once per
    # run and ships it through the universe channel, sorted and identical
    # for every worker, so the rank-range partition stays deterministic.
    universe = context.universe
    assert universe is not None, "step-0 context must carry the universe"
    if isinstance(plan, PlanDAG):
        # Shared with the computation's own hooks (same task copy):
        # step-0 checks group by distinct root node instead of scanning
        # every member per word.
        stepper = bound_stepper(computation, plan, graph)

        def check_word(plan, graph, parent_words, word):
            return stepper.check(graph, parent_words, word)

    else:
        check_word = guided_extension_check
    total = len(universe)
    num_workers = context.num_workers
    start = total * worker_id // num_workers
    end = total * (worker_id + 1) // num_workers
    deadline_at = context.deadline_at
    cancel = context.cancel
    work = 0
    for index in range(start, end):
        _probe_interrupts(deadline_at, cancel, index - start)
        word = universe[index]
        stats.candidates_generated += 1
        if plan is not None and not check_word(plan, graph, (), word):
            continue
        stats.canonical_candidates += 1  # single words are canonical
        work += 1
        embedding = make_embedding(graph, mode, (word,))
        if not computation.filter(embedding):
            continue
        stats.processed_embeddings += 1
        if profile:
            t0 = time.perf_counter()
            computation.process(embedding)
            _add_phase(phase_seconds, "P", time.perf_counter() - t0)
        else:
            computation.process(embedding)
        if computation.termination_filter(embedding):
            continue
        if profile:
            t0 = time.perf_counter()
        canonical_pattern, _ = canonicalizer.canonicalize(embedding.pattern())
        store.add(canonical_pattern, embedding.words)
        if profile:
            _add_phase(phase_seconds, "W", time.perf_counter() - t0)
    delta.work_units += work


def _expansion_pass(
    context: StepContext,
    worker_id: int,
    computation: Computation,
    canonicalizer: PatternCanonicalizer,
    store: EmbeddingStore,
    delta: WorkerDelta,
) -> None:
    """Steps >= 1: read a share of set I, apply α/β, expand, φ/π, write."""
    graph = context.graph
    mode = context.mode
    plan = context.plan
    if isinstance(plan, PlanDAG):
        # One stepper per task, shared with the computation's own hooks
        # (process/termination run on the same task copy): its
        # survivor-walk memo is private to this pure task.  Expansion
        # runs the fused whole-pool kernel (DagStepper.step): per live
        # trie node one bitset ``&`` chain over the DAG's precomputed
        # mask bundle, with a degree-adaptive row-iteration fallback —
        # counter-for-counter equal to generate-then-check.  The
        # per-candidate check stays bound for the ODAG prefix filter.
        stepper = bound_stepper(computation, plan, graph)
        check_extension = stepper.check
        generate = None
        fused = stepper.step
    else:
        check_extension = _make_extension_checker(
            mode, context.incremental_canonicality, plan
        )
        if plan is None:
            def generate(words: tuple[int, ...]):
                return extensions(graph, mode, words)
        else:
            # Guided runs use the fused bitset kernel: pool generation
            # AND the per-candidate plan check collapse into one chain
            # of ``&`` ops per embedding (plan_checker stays in use for
            # the ODAG prefix filter above).
            generate = None

            def fused(words: tuple[int, ...]):
                return guided_survivors(plan, graph, words)
    profile = context.profile_phases
    # List-format stores (plain or spilled) hold exact embeddings under
    # their true canonical pattern; only ODAG paths can be spurious.
    verify_pattern = context.storage not in (LIST_STORAGE, SPILL_STORAGE)
    stats = delta.counters
    phase_seconds = delta.phase_seconds
    global_store = context.global_store
    assert global_store is not None, "expansion context must carry set I"
    work = 0

    def prefix_ok(words: tuple[int, ...]) -> bool:
        """Spurious-path filter for ODAG extraction: the incremental
        acceptance check (Algorithm 2 canonicality, or the plan's
        constraint check in guided mode) plus φ on the prefix (both
        anti-monotone, so failing prefixes prune whole subtrees —
        section 5.2)."""
        if not check_extension(graph, words[:-1], words[-1]):
            return False
        return computation.filter(make_embedding(graph, mode, words))

    iterator = global_store.extract_partition(
        worker_id, context.num_workers, prefix_ok
    )
    deadline_at = context.deadline_at
    cancel = context.cancel
    probe_count = 0
    while True:
        _probe_interrupts(deadline_at, cancel, probe_count)
        probe_count += 1
        if profile:
            t0 = time.perf_counter()
            item = next(iterator, None)
            _add_phase(phase_seconds, "R", time.perf_counter() - t0)
        else:
            item = next(iterator, None)
        if item is None:
            break
        store_pattern, words = item
        work += 1
        embedding = make_embedding(graph, mode, words)
        if verify_pattern:
            # A path through pattern B's ODAG can spell out a perfectly
            # valid canonical embedding of pattern A (it passes the
            # canonicality check and φ) — but the real copy lives in
            # A's ODAG, so extracting it here would duplicate it.  The
            # extracted embedding is genuine for THIS ODAG only if its
            # canonical pattern matches the ODAG's key.
            extracted_pattern, _ = canonicalizer.canonicalize(embedding.pattern())
            if extracted_pattern != store_pattern:
                stats.spurious_discarded += 1
                continue
        stats.expanded_embeddings += 1
        if not computation.aggregation_filter(embedding):
            stats.aggregation_pruned += 1
            continue
        computation.aggregation_process(embedding)

        if generate is None:
            # Fused guided kernel (single-plan or DAG): candidate
            # generation and the acceptance check happen inside one
            # bitset intersection chain; the returned words are already
            # the survivors, so the loop below skips the per-word check
            # entirely.
            if profile:
                t0 = time.perf_counter()
                num_candidates, candidate_words = fused(words)
                _add_phase(phase_seconds, "G", time.perf_counter() - t0)
            else:
                num_candidates, candidate_words = fused(words)
            stats.candidates_generated += num_candidates
            work += num_candidates
            stats.canonical_candidates += len(candidate_words)
        elif profile:
            t0 = time.perf_counter()
            candidate_words = generate(words)
            _add_phase(phase_seconds, "G", time.perf_counter() - t0)
        else:
            candidate_words = generate(words)

        for word in candidate_words:
            if generate is not None:
                stats.candidates_generated += 1
                work += 1
                if profile:
                    t0 = time.perf_counter()
                    canonical = check_extension(graph, words, word)
                    _add_phase(phase_seconds, "C", time.perf_counter() - t0)
                else:
                    canonical = check_extension(graph, words, word)
                if not canonical:
                    continue
                stats.canonical_candidates += 1
            child = embedding.extend(word)
            if not computation.filter(child):
                continue
            stats.processed_embeddings += 1
            if profile:
                t0 = time.perf_counter()
                computation.process(child)
                _add_phase(phase_seconds, "P", time.perf_counter() - t0)
            else:
                computation.process(child)
            if computation.termination_filter(child):
                continue
            if profile:
                t0 = time.perf_counter()
                canonical_pattern, _ = canonicalizer.canonicalize(child.pattern())
                _add_phase(phase_seconds, "P", time.perf_counter() - t0)
                t0 = time.perf_counter()
                store.add(canonical_pattern, child.words)
                _add_phase(phase_seconds, "W", time.perf_counter() - t0)
            else:
                canonical_pattern, _ = canonicalizer.canonicalize(child.pattern())
                store.add(canonical_pattern, child.words)
    delta.work_units += work


def _add_phase(phase_seconds: dict[str, float], phase: str, seconds: float) -> None:
    phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
