"""Process backend: real multi-core execution via multiprocessing.

This is the backend that makes ``num_workers`` change wall-clock time, not
just the metered simulation — the paper's Figure 8 scalability claim made
physical.  Per step it runs the worker tasks across a pool of OS processes
with **per-worker chunking**: the logical workers are split into one
contiguous chunk per process, so a step costs one task message (and one
delta batch) per process rather than per worker.

Data movement mirrors the real system's communication pattern:

* **broadcast of the global state** — on platforms with ``fork`` (Linux),
  the step context (graph, previous step's store, published aggregates) is
  inherited copy-on-write by forking the pool at each step barrier, which
  ships the graph zero times; on spawn-only platforms it is pickled once
  per pool process via the initializer;
* **the shuffle** — each process pickles its workers' deltas (local
  stores, aggregation partials, outputs) back to the engine, which merges
  them exactly as it merges serial deltas.

Requirements: the computation and its aggregation values must be picklable
(all bundled applications are).  Results are byte-identical to the serial
backend for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading

from ..core.config import PROCESS_BACKEND
from ..core.results import WorkerDelta
from .base import ExecutionBackend
from .tasks import StepContext, run_step_chunk

#: Step context a forked pool process inherits copy-on-write.  Guarded by
#: _FORK_LOCK for the set -> fork window only: once the pool has forked,
#: every child owns its COW snapshot and the parent slot can be cleared,
#: so concurrent engines (e.g. a threaded parameter sweep, each with its
#: own ProcessBackend) serialize only their forks, not their steps.
_FORK_CONTEXT: StepContext | None = None
_FORK_LOCK = threading.Lock()
#: Step context a spawned pool process unpickles in its initializer.
_SPAWN_CONTEXT: StepContext | None = None


def _fork_chunk(worker_ids: list[int]) -> list[WorkerDelta]:
    assert _FORK_CONTEXT is not None, "fork pool started without a step context"
    return run_step_chunk(_FORK_CONTEXT, worker_ids)


def _spawn_init(context_bytes: bytes) -> None:
    global _SPAWN_CONTEXT
    _SPAWN_CONTEXT = pickle.loads(context_bytes)


def _spawn_chunk(worker_ids: list[int]) -> list[WorkerDelta]:
    assert _SPAWN_CONTEXT is not None, "spawn pool started without a step context"
    return run_step_chunk(_SPAWN_CONTEXT, worker_ids)


def _chunk_worker_ids(num_workers: int, num_chunks: int) -> list[list[int]]:
    """Contiguous near-equal chunks of worker ids, one per pool process."""
    chunks = []
    for chunk in range(num_chunks):
        start = num_workers * chunk // num_chunks
        end = num_workers * (chunk + 1) // num_chunks
        if end > start:
            chunks.append(list(range(start, end)))
    return chunks


class ProcessBackend(ExecutionBackend):
    """Run worker tasks across OS processes (fork when available)."""

    name = PROCESS_BACKEND

    def __init__(self, processes: int | None = None) -> None:
        #: Pool size; ``None`` = min(num_workers, CPU count), at least 2 so
        #: a 4-worker run on a small machine still overlaps with the merge.
        self.processes = processes
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )

    def _pool_size(self, num_workers: int) -> int:
        if self.processes is not None:
            return min(self.processes, num_workers)
        cpus = os.cpu_count() or 1
        return min(num_workers, max(cpus, 2))

    def run_step(self, context: StepContext) -> list[WorkerDelta]:
        global _FORK_CONTEXT
        num_workers = context.num_workers
        processes = self._pool_size(num_workers)
        if num_workers == 1 or processes == 1:
            return self._run_serially(context)
        chunks = _chunk_worker_ids(num_workers, processes)
        if self._mp.get_start_method() == "fork":
            # The pool forks inside the lock, snapshotting the context
            # copy-on-write; children then read their own snapshot, so the
            # parent slot is cleared before the (long) map runs.
            with _FORK_LOCK:
                _FORK_CONTEXT = context
                try:
                    pool = self._mp.Pool(processes=len(chunks))
                finally:
                    _FORK_CONTEXT = None
            with pool:
                per_chunk = pool.map(_fork_chunk, chunks)
        else:  # pragma: no cover - exercised only on spawn-only platforms
            context_bytes = pickle.dumps(context)
            with self._mp.Pool(
                processes=len(chunks),
                initializer=_spawn_init,
                initargs=(context_bytes,),
            ) as pool:
                per_chunk = pool.map(_spawn_chunk, chunks)
        deltas = [delta for chunk_deltas in per_chunk for delta in chunk_deltas]
        deltas.sort(key=lambda delta: delta.worker_id)
        return deltas
