"""Serial backend: one in-process loop over the worker tasks (default).

Exactly the pre-runtime behavior — workers execute sequentially and
deterministically — but expressed through the same pure-task interface as
the parallel backends, so it doubles as the reference implementation the
cross-backend determinism tests compare against.
"""

from __future__ import annotations

from ..core.config import SERIAL_BACKEND
from ..core.results import WorkerDelta
from .base import ExecutionBackend
from .tasks import StepContext


class SerialBackend(ExecutionBackend):
    """Run every worker task on the calling thread, in worker-id order."""

    name = SERIAL_BACKEND

    def run_step(self, context: StepContext) -> list[WorkerDelta]:
        return self._run_serially(context)
