"""Pluggable execution runtime: how worker step tasks actually run.

The Arabesque engine (:mod:`repro.core.engine`) expresses each exploration
step as ``num_workers`` pure tasks over an immutable
:class:`~repro.runtime.tasks.StepContext`; this package decides how those
tasks execute:

* :class:`SerialBackend` — one in-process loop (default; the reference);
* :class:`ThreadBackend` — a thread pool (concurrency; parallelism on
  GIL-free builds);
* :class:`ProcessBackend` — multiprocessing with per-worker chunking
  (real multi-core speedup).

Select one via ``ArabesqueConfig(backend="serial"|"thread"|"process")`` or
the CLI's ``--backend`` flag.  The determinism invariant — identical
explored set, outputs, and aggregates across all backends and worker
counts — is enforced by construction (pure tasks, worker-id-ordered delta
merge) and checked by ``tests/test_properties.py``.
"""

from .base import ExecutionBackend, make_backend
from .process import ProcessBackend
from .serial import SerialBackend
from .tasks import StepContext, WorkerTaskContext, run_step_chunk, run_step_task
from .threads import ThreadBackend

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "StepContext",
    "ThreadBackend",
    "WorkerTaskContext",
    "make_backend",
    "run_step_chunk",
    "run_step_task",
]
