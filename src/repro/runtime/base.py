"""The pluggable execution-backend interface.

A backend answers one question: *how do the per-worker step tasks of one
exploration step actually execute?*  The engine builds an immutable
:class:`~repro.runtime.tasks.StepContext`, hands it to the backend, and
gets back one :class:`~repro.core.results.WorkerDelta` per logical worker,
ordered by worker id.  Everything else — partitioning, merging, metering —
is backend-independent, which is what guarantees the determinism invariant:
identical explored set, outputs, and aggregates for every backend at every
worker count.

Backends own whatever execution resources they need (thread pools, process
pools) and release them in :meth:`ExecutionBackend.close`; the engine
closes a backend it created itself when the run finishes.
"""

from __future__ import annotations

from ..core.config import (
    ArabesqueConfig,
    BACKENDS,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    THREAD_BACKEND,
)
from ..core.results import WorkerDelta
from .tasks import StepContext, run_step_task


class ExecutionBackend:
    """Runs one exploration step's worker tasks and returns their deltas."""

    #: Configuration name (one of :data:`repro.core.config.BACKENDS`).
    name: str = ""

    def run_step(self, context: StepContext) -> list[WorkerDelta]:
        """Execute ``run_step_task(context, w)`` for every worker ``w``.

        Must return exactly ``context.num_workers`` deltas sorted by
        ``worker_id`` — the engine merges them in that order to reproduce
        the serial schedule.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pools and other execution resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared helper --------------------------------------------------
    @staticmethod
    def _run_serially(context: StepContext) -> list[WorkerDelta]:
        return [
            run_step_task(context, worker_id)
            for worker_id in range(context.num_workers)
        ]


def make_backend(config: ArabesqueConfig) -> ExecutionBackend:
    """Build the backend selected by ``config.backend``."""
    from .process import ProcessBackend
    from .serial import SerialBackend
    from .threads import ThreadBackend

    if config.backend == SERIAL_BACKEND:
        return SerialBackend()
    if config.backend == THREAD_BACKEND:
        return ThreadBackend()
    if config.backend == PROCESS_BACKEND:
        return ProcessBackend(processes=config.backend_processes)
    raise ValueError(
        f"unknown backend {config.backend!r} (choose from {BACKENDS})"
    )
