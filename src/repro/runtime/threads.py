"""Thread backend: worker tasks on a shared thread pool.

Tasks are pure and bind their framework context to a per-task shallow copy
of the computation, so threads share nothing mutable and the merged result
is identical to the serial backend's.  On the standard CPython build the
GIL serializes the pure-Python hot loops, so expect concurrency (useful
when user functions release the GIL — I/O, numpy, C extensions) rather
than CPU-bound speedup; on free-threaded builds the same code scales to
real parallelism.  Use the process backend for guaranteed multi-core
scaling.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..core.config import THREAD_BACKEND
from ..core.results import WorkerDelta
from .base import ExecutionBackend
from .tasks import StepContext, run_step_task


class ThreadBackend(ExecutionBackend):
    """Run worker tasks on a lazily created, reusable thread pool."""

    name = THREAD_BACKEND

    def __init__(self, max_threads: int | None = None) -> None:
        self._max_threads = max_threads
        self._pool: ThreadPoolExecutor | None = None

    def run_step(self, context: StepContext) -> list[WorkerDelta]:
        num_workers = context.num_workers
        if num_workers == 1:
            return self._run_serially(context)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_threads or num_workers,
                thread_name_prefix="repro-worker",
            )
        # Executor.map preserves submission order, so deltas come back
        # sorted by worker id no matter which thread finished first.
        return list(
            self._pool.map(
                lambda worker_id: run_step_task(context, worker_id),
                range(num_workers),
            )
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
