"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bsp.cost_model import CostModel
from .storage import ADAPTIVE_STORAGE, LIST_STORAGE, ODAG_STORAGE


@dataclass
class ArabesqueConfig:
    """Tunable knobs of one exploration run.

    The defaults match the paper's system: ODAG storage, two-level pattern
    aggregation, incremental canonicality checking.  The alternative values
    exist for the ablation experiments (Figures 10 and 11) and for the
    simulated-scalability sweeps (``num_workers``).
    """

    #: Logical workers the exploration is partitioned over.  Workers run
    #: sequentially in-process; distribution is simulated (DESIGN.md,
    #: substitution 1).
    num_workers: int = 1
    #: ``"odag"`` (paper default), ``"list"`` (Figure 10 ablation), or
    #: ``"adaptive"`` — ship whichever format is smaller per step
    #: (section 6.3's sparse-graph fallback, used by the paper's
    #: Instagram runs).
    storage: str = ODAG_STORAGE
    #: Two-level pattern aggregation (section 5.4); False canonicalizes
    #: every mapped pattern individually (Figure 11 ablation).
    two_level_aggregation: bool = True
    #: Incremental canonicality checks (Algorithm 2); False re-checks the
    #: whole word sequence per candidate (ablation bench).
    incremental_canonicality: bool = True
    #: Safety bound on exploration steps; exceeded = misbehaving filter.
    max_exploration_steps: int = 100
    #: Keep outputs in memory.  Large runs can set a cap (counts stay exact).
    collect_outputs: bool = True
    output_limit: int | None = None
    #: Record per-phase wall-clock (Figure 12); off by default because the
    #: fine-grained timers roughly double candidate cost.
    profile_phases: bool = False
    #: Simulated-cluster constants used when reporting makespans.
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.storage not in (ODAG_STORAGE, LIST_STORAGE, ADAPTIVE_STORAGE):
            raise ValueError(f"unknown storage mode {self.storage!r}")
        if self.max_exploration_steps < 1:
            raise ValueError("max_exploration_steps must be >= 1")
