"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..bsp.cost_model import CostModel
from .budget import CancelFlag
from .storage import DEFAULT_SPILL_BUDGET_NBYTES, ODAG_STORAGE, STORAGE_MODES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> core)
    from ..plan.dag import PlanDAG
    from ..plan.planner import MatchingPlan

#: Execution-backend configuration values (see :mod:`repro.runtime`).
SERIAL_BACKEND = "serial"
THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"
BACKENDS = (SERIAL_BACKEND, THREAD_BACKEND, PROCESS_BACKEND)


@dataclass
class ArabesqueConfig:
    """Tunable knobs of one exploration run.

    The defaults match the paper's system: ODAG storage, two-level pattern
    aggregation, incremental canonicality checking.  The alternative values
    exist for the ablation experiments (Figures 10 and 11) and for the
    simulated-scalability sweeps (``num_workers``).
    """

    #: Logical workers the exploration is partitioned over.  The partition
    #: is identical for every backend; what changes is whether the workers'
    #: step tasks run sequentially or truly in parallel (``backend``).
    num_workers: int = 1
    #: Execution backend running the per-worker step tasks: ``"serial"``
    #: (one in-process loop, the default), ``"thread"`` (a thread pool —
    #: correct everywhere, but CPU-bound speedup only on GIL-free builds),
    #: or ``"process"`` (multiprocessing with per-worker chunking — real
    #: multi-core speedup; requires a picklable Computation).  Results are
    #: identical across backends by construction.
    backend: str = SERIAL_BACKEND
    #: Process-backend pool size; ``None`` means
    #: ``min(num_workers, max(cpu_count, 2))`` — capped at the CPU count,
    #: but never below 2 processes so multi-worker runs overlap compute
    #: with the engine-side merge even on small machines.
    backend_processes: int | None = None
    #: ``"odag"`` (paper default), ``"list"`` (Figure 10 ablation), or
    #: ``"adaptive"`` — ship whichever format is smaller per step
    #: (section 6.3's sparse-graph fallback, used by the paper's
    #: Instagram runs).
    storage: str = ODAG_STORAGE
    #: Two-level pattern aggregation (section 5.4); False canonicalizes
    #: every mapped pattern individually (Figure 11 ablation).
    two_level_aggregation: bool = True
    #: Incremental canonicality checks (Algorithm 2); False re-checks the
    #: whole word sequence per candidate (ablation bench).
    incremental_canonicality: bool = True
    #: Guided exploration plan (:func:`repro.plan.compile_plan`) or a
    #: multi-query plan DAG (:func:`repro.plan.build_plan_dag`).  When
    #: set, worker step tasks generate candidates from the plan's anchors
    #: and validate them against the plan's per-step constraints —
    #: symmetry-breaking restrictions replace the embedding canonicality
    #: check entirely; a DAG advances a whole pattern batch at once,
    #: sharing prefix exploration.  Requires a vertex-exploration
    #: computation whose user functions understand plan-ordered words
    #: (e.g. :class:`repro.apps.matching.GuidedMatching` or the DAG
    #: computations in :mod:`repro.apps.motifs`/:mod:`repro.apps.fsm`);
    #: ``None`` (default) keeps the exhaustive extend-everywhere path.
    plan: "MatchingPlan | PlanDAG | None" = None
    #: Safety bound on exploration steps; exceeded = misbehaving filter.
    max_exploration_steps: int = 100
    #: Cooperative wall-clock budget for the whole run, in seconds.  The
    #: engine checks it at every BSP step barrier (and worker tasks probe
    #: it periodically inside a step), raising a loud
    #: :class:`~repro.core.budget.BudgetExceeded` when elapsed time passes
    #: the allowance — the query service maps that to a 4xx so one
    #: pathological query fails fast instead of starving the pool.
    #: ``None`` (default) runs without a deadline.  An armed-but-untripped
    #: deadline never changes results.
    deadline_seconds: float | None = None
    #: Cooperative cap on *processed* embeddings summed over steps (the
    #: paper's "embeddings analyzed" figure).  Enforced at the step
    #: barrier on the merged counters, so the trip point is deterministic
    #: across backends and worker counts; tripping raises
    #: :class:`~repro.core.budget.BudgetExceeded`.  ``None`` = unbounded.
    max_embeddings: int | None = None
    #: Cooperative external cancellation (:class:`~repro.core.budget.CancelFlag`).
    #: The engine checks it at every BSP barrier and worker tasks probe it
    #: alongside the deadline probe, raising
    #: :class:`~repro.core.budget.RunCancelled` — how the query service
    #: stops a run whose client disconnected.  ``None`` = not cancellable.
    cancel: CancelFlag | None = None
    #: Directory for BSP-barrier checkpoints (see :mod:`repro.checkpoint`).
    #: When set, the engine writes a versioned, checksummed snapshot of the
    #: run's barrier state after each store merge, atomically
    #: (write-then-rename), so a killed run resumes from its last barrier
    #: instead of restarting.  ``None`` (default) = no checkpointing.
    checkpoint_dir: str | None = None
    #: Snapshots retained in ``checkpoint_dir`` (older ones are deleted
    #: after each successful write).
    checkpoint_keep: int = 2
    #: Snapshot every Nth barrier (1 = every barrier).  Coarser cadence
    #: trades re-execution distance for snapshot overhead.
    checkpoint_every: int = 1
    #: In-memory byte budget of ``"spill"`` storage before a worker's (or
    #: the merged global) store spills a sorted segment to disk; measured
    #: under the list wire model so it is comparable to reported
    #: ``storage_bytes``.
    spill_budget_nbytes: int = DEFAULT_SPILL_BUDGET_NBYTES
    #: Parent directory for the run's spill root (``None`` = system temp).
    #: The engine creates a private subdirectory per run and removes it
    #: when the run finishes.
    spill_dir: str | None = None
    #: Keep outputs in memory.  Large runs can set a cap (counts stay exact).
    collect_outputs: bool = True
    output_limit: int | None = None
    #: Record per-phase wall-clock (Figure 12); off by default because the
    #: fine-grained timers roughly double candidate cost.
    profile_phases: bool = False
    #: Simulated-cluster constants used when reporting makespans.
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.storage not in STORAGE_MODES:
            raise ValueError(
                f"unknown storage mode {self.storage!r} "
                f"(choose from {STORAGE_MODES})"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (choose from {BACKENDS})"
            )
        if self.backend_processes is not None and self.backend_processes < 1:
            raise ValueError("backend_processes must be >= 1 when given")
        if self.plan is not None:
            from ..plan.dag import PlanDAG
            from ..plan.planner import MatchingPlan

            if not isinstance(self.plan, (MatchingPlan, PlanDAG)):
                raise ValueError(
                    "plan must be a repro.plan.MatchingPlan or a "
                    f"multi-query repro.plan.PlanDAG "
                    f"(got {type(self.plan).__name__})"
                )
        if self.max_exploration_steps < 1:
            raise ValueError("max_exploration_steps must be >= 1")
        if self.deadline_seconds is not None and not self.deadline_seconds > 0:
            raise ValueError(
                f"deadline_seconds must be positive when given "
                f"(got {self.deadline_seconds!r})"
            )
        if self.max_embeddings is not None and self.max_embeddings < 1:
            raise ValueError(
                f"max_embeddings must be >= 1 when given "
                f"(got {self.max_embeddings!r})"
            )
        if self.cancel is not None and not isinstance(self.cancel, CancelFlag):
            raise ValueError(
                "cancel must be a repro.core.budget.CancelFlag "
                f"(got {type(self.cancel).__name__})"
            )
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.spill_budget_nbytes < 1:
            raise ValueError("spill_budget_nbytes must be >= 1")
