"""Aggregation framework with two-level pattern aggregation (sections 4.1, 5.4).

Arabesque applications aggregate values across embeddings with a
MapReduce-like model: ``map(key, value)`` routes a value to a reducer,
``reduce(key, values)`` folds them, ``readAggregate(key)`` reads the result
in the *next* exploration step.  Output aggregation (``mapOutput`` /
``reduceOutput``) accumulates over the whole run and is folded once at the
end.

When the key is a :class:`~repro.core.pattern.Pattern` the reducer identity
is the pattern's *isomorphism class* — mapping each embedding's pattern to a
canonical form would mean one graph-isomorphism computation per candidate
embedding.  Two-level aggregation avoids that:

1. **level 1 (local, cheap)** — values are grouped by *quick pattern* (the
   linear-time visit-order pattern) and reduced locally;
2. **level 2 (global, rare)** — each distinct quick pattern is canonicalized
   once (cached), its reduced value is *remapped* from quick-pattern vertex
   positions to canonical positions, and sent to the canonical reducer.

Values that are position-indexed (FSM domains) implement
``remap_positions(mapping)``; plain values (counts) pass through unchanged.

Reducers must be **associative on reduced values**: the framework reduces
locally, merges partials across quick patterns, and merges again across
workers, so ``reduce`` sees partial results as inputs.  All aggregations in
the paper (domain union, count sum) have this property.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from .pattern import Pattern, PatternCanonicalizer

ReduceFn = Callable[[Hashable, list], Any]


def remap_value(value: Any, mapping: tuple[int, ...]) -> Any:
    """Translate a position-indexed value to canonical pattern positions."""
    remap = getattr(value, "remap_positions", None)
    if callable(remap):
        return remap(mapping)
    return value


class AggregationChannel:
    """Global (cross-worker, cross-step) state of one named aggregation.

    Non-persistent channels publish each step's merged values for
    ``readAggregate`` during the following step.  Persistent channels
    (output aggregation) fold every step's partials into a running
    accumulation that :meth:`finalize` returns at the end of the run.
    """

    def __init__(self, name: str, reduce_fn: ReduceFn, persistent: bool = False):
        self.name = name
        self.reduce_fn = reduce_fn
        self.persistent = persistent
        self._published: dict[Hashable, Any] = {}
        self._accumulated: dict[Hashable, Any] = {}
        self._latest: dict[Hashable, Any] = {}

    def read(self, key: Hashable) -> Any:
        """Value published for ``key`` by the previous step (None if absent)."""
        return self._published.get(key)

    def published(self) -> dict[Hashable, Any]:
        """All values published by the previous step."""
        return dict(self._published)

    def step_barrier(self, merged: dict[Hashable, Any]) -> None:
        """Install this step's merged values (superstep flip)."""
        if self.persistent:
            for key, value in merged.items():
                if key in self._accumulated:
                    self._accumulated[key] = self.reduce_fn(
                        key, [self._accumulated[key], value]
                    )
                else:
                    self._accumulated[key] = value
        else:
            self._published = merged
            self._latest.update(merged)

    def latest(self) -> dict[Hashable, Any]:
        """Per-key value from the *last step that produced the key*.

        Non-persistent channels replace their published values wholesale at
        every step barrier, so a key mapped at step i and never again is
        invisible to ``readAggregate`` from step i+2 on — but its step-i
        value is still the key's final channel state for the run.  This view
        keeps exactly that: each key maps to the merged value of the most
        recent step that produced it, never reduced *across* steps (which
        would violate per-step channel semantics).  It is what
        :attr:`~repro.core.results.RunResult.final_aggregates` reports.
        """
        return dict(self._latest)

    def finalize(self) -> dict[Hashable, Any]:
        """Final values of a persistent channel (empty for per-step ones)."""
        return dict(self._accumulated)

    def restore(
        self,
        published: dict[Hashable, Any],
        latest: dict[Hashable, Any],
    ) -> None:
        """Reinstall a non-persistent channel's barrier state (checkpoint
        resume): what the snapshotted step published for the next step's
        ``readAggregate``, and the per-key latest view."""
        self._published = dict(published)
        self._latest = dict(latest)

    def restore_accumulated(self, accumulated: dict[Hashable, Any]) -> None:
        """Reinstall a persistent channel's running accumulation
        (checkpoint resume)."""
        self._accumulated = dict(accumulated)


class LocalAggregation:
    """One worker's map-side buffer for one channel during one step.

    Accepts either the :class:`AggregationChannel` itself or just its reduce
    function — worker tasks run without any reference to global channel
    state (see :mod:`repro.runtime.tasks`), so they pass the bare reducer.
    """

    def __init__(
        self,
        channel: AggregationChannel | ReduceFn,
        canonicalizer: PatternCanonicalizer,
    ) -> None:
        self._reduce_fn: ReduceFn = (
            channel.reduce_fn if isinstance(channel, AggregationChannel) else channel
        )
        self._canonicalizer = canonicalizer
        self._buffer: dict[Hashable, list] = {}

    def map(self, key: Hashable, value: Any) -> None:
        """Buffer ``value`` under ``key`` (quick patterns stay quick here
        when two-level aggregation is on; are canonicalized immediately —
        one isomorphism run per call — when it is off)."""
        if isinstance(key, Pattern) and not self._canonicalizer.two_level:
            canonical, mapping = self._canonicalizer.canonicalize(key)
            key = canonical
            value = remap_value(value, mapping)
        self._buffer.setdefault(key, []).append(value)

    def is_empty(self) -> bool:
        return not self._buffer

    def merged_partials(self) -> dict[Hashable, Any]:
        """Level-1 reduce: fold the buffer into per-final-key partials.

        Quick-pattern keys are reduced locally first, then canonicalized
        once each and their reduced value remapped — the whole point of
        two-level aggregation (Table 4's reduction factor).
        """
        reduce_fn = self._reduce_fn
        partials: dict[Hashable, Any] = {}
        for key, values in self._buffer.items():
            reduced = reduce_fn(key, values) if len(values) > 1 else values[0]
            if isinstance(key, Pattern) and self._canonicalizer.two_level:
                canonical, mapping = self._canonicalizer.canonicalize(key)
                final_key = canonical
                reduced = remap_value(reduced, mapping)
            else:
                final_key = key
            if final_key in partials:
                partials[final_key] = reduce_fn(final_key, [partials[final_key], reduced])
            else:
                partials[final_key] = reduced
        return partials


def merge_partials(
    channel: AggregationChannel,
    per_worker_partials: list[dict[Hashable, Any]],
) -> dict[Hashable, Any]:
    """Reduce-side merge of all workers' partials (the shuffle's receive end)."""
    collected: dict[Hashable, list] = {}
    for partials in per_worker_partials:
        for key, value in partials.items():
            collected.setdefault(key, []).append(value)
    merged: dict[Hashable, Any] = {}
    for key, values in collected.items():
        merged[key] = channel.reduce_fn(key, values) if len(values) > 1 else values[0]
    return merged
