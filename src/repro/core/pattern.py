"""Patterns, quick patterns, and canonical patterns (paper sections 2, 5.4).

A *pattern* is a template graph; embeddings with isomorphic patterns must be
aggregated together.  Mapping a pattern to a canonical representative
"entails solving the graph isomorphism problem" (section 5.4), which
Arabesque does with bliss; here the substitute is
:mod:`repro.isomorphism.canonical_label`.

The classes below distinguish the two roles a pattern plays:

* **quick pattern** — built in linear time from an embedding's visit order
  (:meth:`repro.core.embedding.Embedding.pattern`); different visit orders
  of automorphic embeddings give different quick patterns;
* **canonical pattern** — the unique representative of the isomorphism
  class, computed once per distinct quick pattern and cached
  (:func:`canonicalize_pattern`).  This caching IS the second level of
  two-level pattern aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..isomorphism import canonical_form, vertex_orbits


@dataclass(frozen=True)
class Pattern:
    """A small labeled template graph with dense vertex ids ``0..k-1``.

    ``edges`` holds ``(i, j, edge_label)`` triples with ``i < j``, sorted.
    Equality and hashing are structural (NOT up to isomorphism) — use
    :meth:`canonical` to compare isomorphism classes.
    """

    vertex_labels: tuple[int, ...]
    edges: tuple[tuple[int, int, int], ...]

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_labels)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edge_dict(self) -> dict[tuple[int, int], int]:
        """Edges as the ``(i, j) -> label`` dict the isomorphism layer uses."""
        return {(i, j): label for i, j, label in self.edges}

    def canonical(self) -> "Pattern":
        """The canonical representative of this pattern's isomorphism class."""
        return canonicalize_pattern(self)[0]

    def canonical_mapping(self) -> tuple["Pattern", tuple[int, ...]]:
        """Canonical pattern plus the position map.

        Returns ``(canonical, mapping)`` where ``mapping[i]`` is the
        canonical position of this pattern's vertex ``i`` — needed to
        translate position-indexed aggregation values (e.g. FSM domains)
        when folding quick patterns into canonical reducers.
        """
        return canonicalize_pattern(self)

    def is_canonical(self) -> bool:
        """Whether this pattern already is its canonical representative."""
        return self.canonical() == self

    def orbits(self) -> tuple[int, ...]:
        """Automorphism orbit id per vertex (see
        :func:`repro.isomorphism.vertex_orbits`)."""
        return pattern_orbits(self)

    def is_connected(self) -> bool:
        """Whether the pattern graph is connected (empty patterns are not).

        Connected-exploration engines (both the exhaustive filter-process
        path and the guided planner) can only discover occurrences of
        connected patterns, so query validation starts here.
        """
        if self.num_vertices == 0:
            return False
        adjacency: dict[int, list[int]] = {v: [] for v in range(self.num_vertices)}
        for i, j, _ in self.edges:
            adjacency[i].append(j)
            adjacency[j].append(i)
        seen = {0}
        stack = [0]
        while stack:
            for neighbor in adjacency[stack.pop()]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == self.num_vertices

    def wire_size(self) -> int:
        """Wire size: labels row + one triple per edge (4 bytes per int)."""
        return 4 + 4 * len(self.vertex_labels) + 12 * len(self.edges)

    def __repr__(self) -> str:
        return f"Pattern(labels={self.vertex_labels}, edges={self.edges})"


@lru_cache(maxsize=65536)
def canonicalize_pattern(pattern: Pattern) -> tuple[Pattern, tuple[int, ...]]:
    """Canonical pattern and position mapping for ``pattern`` (cached).

    The cache makes repeated canonicalization of the same quick pattern
    O(1); the engine-level :class:`PatternCanonicalizer` wraps this with
    statistics for the Table 4 / Figure 11 experiments.
    """
    certificate, ordering = canonical_form(
        pattern.num_vertices, pattern.vertex_labels, pattern.edge_dict()
    )
    num, labels_row, edge_rows = certificate
    canonical = Pattern(tuple(labels_row), tuple(edge_rows))
    mapping = [0] * pattern.num_vertices
    for position, vertex in enumerate(ordering):
        mapping[vertex] = position
    return canonical, tuple(mapping)


@lru_cache(maxsize=65536)
def pattern_orbits(pattern: Pattern) -> tuple[int, ...]:
    """Cached automorphism orbits of ``pattern``."""
    return tuple(
        vertex_orbits(pattern.num_vertices, pattern.vertex_labels, pattern.edge_dict())
    )


class PatternCanonicalizer:
    """Statistics-carrying wrapper around pattern canonicalization.

    One instance per engine run.  Counts how many embeddings requested a
    pattern, how many *distinct quick patterns* were seen, and how many
    *canonical* patterns they collapse to — the three rows of the paper's
    Table 4.  With ``two_level=False`` it bypasses the quick-pattern cache
    and runs a fresh graph-isomorphism canonicalization per request, which
    is the ablation of Figure 11.

    The execution runtime gives each worker task its own canonicalizer
    *seeded* with the engine's master cache snapshot (``seed_cache``, held
    by reference and never written — all workers of a step share one
    snapshot with zero copying); the entries a worker discovers on top of
    the seed land in its own overlay dict and travel back in its
    :class:`~repro.core.results.WorkerDelta` (:meth:`new_entries`), to be
    folded into the master at the step barrier (:meth:`absorb`).
    """

    def __init__(
        self,
        two_level: bool = True,
        seed_cache: dict[Pattern, tuple[Pattern, tuple[int, ...]]] | None = None,
    ) -> None:
        self.two_level = two_level
        self.requests = 0
        self.isomorphism_runs = 0
        #: Read-only seed shared with the engine (empty for the master).
        self._seed: dict[Pattern, tuple[Pattern, tuple[int, ...]]] = (
            seed_cache if seed_cache is not None else {}
        )
        #: Entries discovered by THIS instance (the write overlay).
        self._cache: dict[Pattern, tuple[Pattern, tuple[int, ...]]] = {}

    def canonicalize(self, quick: Pattern) -> tuple[Pattern, tuple[int, ...]]:
        """Canonical pattern + position map for a quick pattern."""
        self.requests += 1
        if self.two_level:
            cached = self._cache.get(quick)
            if cached is None:
                cached = self._seed.get(quick)
            if cached is not None:
                return cached
            self.isomorphism_runs += 1
            result = _uncached_canonicalize(quick)
            self._cache[quick] = result
            return result
        self.isomorphism_runs += 1
        return _uncached_canonicalize(quick)

    @property
    def quick_patterns_seen(self) -> int:
        """Distinct quick patterns this run encountered."""
        return len(self._cache) + len(self._seed)

    def canonical_patterns_seen(self) -> int:
        """Distinct canonical patterns the quick patterns collapse to."""
        return len(
            {canonical for canonical, _ in self._cache.values()}
            | {canonical for canonical, _ in self._seed.values()}
        )

    # -- worker-task protocol (see repro.runtime) ----------------------
    def cache_snapshot(self) -> dict[Pattern, tuple[Pattern, tuple[int, ...]]]:
        """Copy of the quick -> canonical cache, for seeding worker tasks.

        One copy per step (made by the engine), shared by reference with
        every worker task of that step.
        """
        if not self._seed:
            return dict(self._cache)
        return {**self._seed, **self._cache}

    def new_entries(self) -> dict[Pattern, tuple[Pattern, tuple[int, ...]]]:
        """Entries discovered by this instance beyond its seed (no copy)."""
        return self._cache

    def absorb(
        self,
        new_entries: dict[Pattern, tuple[Pattern, tuple[int, ...]]],
        requests: int,
        isomorphism_runs: int,
    ) -> None:
        """Fold one worker task's canonicalization delta into this master.

        ``isomorphism_runs`` counts computations actually performed: when
        several workers of one step independently meet the same new quick
        pattern, each really runs the isomorphism (exactly as distributed
        workers would), so for ``num_workers > 1`` the run total can exceed
        the distinct-quick-pattern count.  With one worker the numbers
        match the shared-cache engine of old.  ``quick_patterns_seen`` /
        ``canonical_patterns_seen`` stay worker-count-invariant.
        """
        self._cache.update(new_entries)
        self.requests += requests
        self.isomorphism_runs += isomorphism_runs


def _uncached_canonicalize(pattern: Pattern) -> tuple[Pattern, tuple[int, ...]]:
    """Run the full isomorphism-based canonicalization, bypassing caches."""
    certificate, ordering = canonical_form(
        pattern.num_vertices, pattern.vertex_labels, pattern.edge_dict()
    )
    num, labels_row, edge_rows = certificate
    canonical = Pattern(tuple(labels_row), tuple(edge_rows))
    mapping = [0] * pattern.num_vertices
    for position, vertex in enumerate(ordering):
        mapping[vertex] = position
    return canonical, tuple(mapping)
