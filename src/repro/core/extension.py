"""Candidate extension generation (Algorithm 1's expansion step).

"The system computes candidates by adding one incident edge or vertex to e,
depending on whether it runs in edge-based or vertex-based exploration mode"
(paper, section 3.1).  In the first exploration step the candidate set is
every vertex (or edge) of the input graph.

Candidates are deduplicated within one parent (a vertex adjacent to several
members is generated once); deduplication *across* parents is the job of the
canonicality check, not of this module.
"""

from __future__ import annotations

from typing import Iterable

from ..graph import LabeledGraph
from ..graph.bitset import from_bitset, iter_bitset, to_bitset
from .embedding import EDGE_EXPLORATION, VERTEX_EXPLORATION


def vertex_extensions(graph: LabeledGraph, words: tuple[int, ...]) -> list[int]:
    """Distinct neighboring vertices of the embedding, sorted ascending.

    One ``|`` per member over the neighbor bitsets, one subtraction of
    the member bits, one ascending decode — bitsets decode in id order,
    so exploration stays deterministic across runs and worker counts,
    which the tests rely on for cross-validation.
    """
    candidates = 0
    for v in words:
        candidates |= graph.neighbor_bits(v)
    candidates &= ~to_bitset(words)
    return list(from_bitset(candidates))


def edge_extensions(graph: LabeledGraph, words: tuple[int, ...]) -> list[int]:
    """Distinct incident edges not already in the embedding, sorted."""
    span = 0
    for eid in words:
        u, v = graph.edge_endpoints(eid)
        span |= (1 << u) | (1 << v)
    candidates = 0
    for v in iter_bitset(span):
        candidates |= graph.incident_bits(v)
    candidates &= ~to_bitset(words)
    return list(from_bitset(candidates))


def extensions(graph: LabeledGraph, mode: str, words: tuple[int, ...]) -> list[int]:
    """Mode-dispatched extension generation."""
    if mode == VERTEX_EXPLORATION:
        return vertex_extensions(graph, words)
    if mode == EDGE_EXPLORATION:
        return edge_extensions(graph, words)
    raise ValueError(f"unknown exploration mode {mode!r}")


def initial_candidates(graph: LabeledGraph, mode: str) -> Iterable[int]:
    """Expansion of the "undefined" embedding: all vertices or all edges."""
    if mode == VERTEX_EXPLORATION:
        return graph.vertices()
    if mode == EDGE_EXPLORATION:
        return graph.edges()
    raise ValueError(f"unknown exploration mode {mode!r}")
