"""The Arabesque user API (paper, Figure 3).

Applications subclass :class:`Computation` and override the two mandatory
functions — ``filter`` (the paper's φ) and ``process`` (π) — plus any of the
optional ones: ``aggregation_filter`` (α), ``aggregation_process`` (β),
``reduce``, ``reduce_output``, and ``termination_filter``.  The framework
functions ``output``, ``map``, ``read_aggregate``, and ``map_output`` are
provided and may be called from inside the user functions.

Required semantic properties (section 3.1), which the engine relies on and
the test suite checks for the bundled applications:

* **automorphism invariance** — every user function returns the same result
  for automorphic embeddings;
* **anti-monotonicity** of ``filter`` and ``aggregation_filter`` — once an
  embedding is rejected, all of its extensions would be rejected too.

Because the execution runtime (:mod:`repro.runtime`) may run worker step
tasks on threads or separate processes, user functions should not rely on
mutating instance state to communicate between embeddings — use ``map``/
``map_output`` for cross-embedding state.  Internal memo caches keyed by
deterministic values (as in :class:`repro.apps.matching.GraphMatching`)
are fine: they only trade recomputation for memory.  For the process
backend, the computation and its aggregation values must be picklable.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..graph import LabeledGraph
from .embedding import Embedding, VERTEX_EXPLORATION
from .pattern import Pattern


class ComputationContext:
    """Engine-side callbacks the framework functions delegate to.

    Bound to the computation once per worker step task; user code never
    constructs one.  The execution runtime binds each task's context to a
    *shallow copy* of the computation (see
    :func:`repro.runtime.tasks.run_step_task`), so concurrent tasks — on
    threads or processes — never share a binding.
    """

    def output(self, value: Any) -> None:
        raise NotImplementedError

    def map(self, key: Hashable, value: Any) -> None:
        raise NotImplementedError

    def map_output(self, key: Hashable, value: Any) -> None:
        raise NotImplementedError

    def read_aggregate(self, key: Hashable) -> Any:
        raise NotImplementedError

    def note_domain_hits(self, count: int) -> None:
        """Record ``count`` per-vertex domain images (observability only:
        contexts that do not meter them may keep this no-op default)."""


class Computation:
    """Base class for Arabesque applications.

    Class attribute ``exploration_mode`` selects vertex-based or edge-based
    exploration ("the application can decide between edge-based or
    vertex-based exploration during initialization", section 3.1).
    """

    #: ``VERTEX_EXPLORATION`` or ``EDGE_EXPLORATION``.
    exploration_mode: str = VERTEX_EXPLORATION

    #: Whether this computation understands plan-guided exploration
    #: (``config.plan`` set): words follow the plan's matching order and
    #: only plan-compatible candidates are generated.  The engine refuses
    #: to pair a plan with computations that have not opted in — guided
    #: generation silently changes what an unaware computation explores
    #: (e.g. a motif census would quietly lose every non-query shape).
    plan_compatible: bool = False

    def __init__(self) -> None:
        self.graph: LabeledGraph | None = None
        self._context: ComputationContext | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def init(self, graph: LabeledGraph, config: Any) -> None:
        """Called once before exploration starts; override for setup."""
        self.graph = graph

    # ------------------------------------------------------------------
    # Mandatory user functions (φ and π)
    # ------------------------------------------------------------------
    def filter(self, embedding: Embedding) -> bool:
        """φ: should this candidate embedding be processed?  Must be
        anti-monotone."""
        return True

    def process(self, embedding: Embedding) -> None:
        """π: examine an accepted embedding; may call ``output``/``map``."""

    # ------------------------------------------------------------------
    # Optional user functions (α, β, reducers, termination)
    # ------------------------------------------------------------------
    def aggregation_filter(self, embedding: Embedding) -> bool:
        """α: re-filter an embedding one step after its generation, when
        the aggregates of its generation step are readable.  Must be
        anti-monotone."""
        return True

    def aggregation_process(self, embedding: Embedding) -> None:
        """β: produce output for an embedding that survived α."""

    def reduce(self, key: Hashable, values: list) -> Any:
        """Fold the values mapped to ``key`` this step (must be associative
        on reduced values; see :mod:`repro.core.aggregation`)."""
        raise NotImplementedError(
            f"{type(self).__name__} calls map() but does not define reduce()"
        )

    def reduce_output(self, key: Hashable, values: list) -> Any:
        """Fold output-aggregation values (associative, run-scoped)."""
        raise NotImplementedError(
            f"{type(self).__name__} calls map_output() but does not define "
            "reduce_output()"
        )

    def termination_filter(self, embedding: Embedding) -> bool:
        """Return True to stop extending ``embedding`` after processing it —
        an optimization that skips the final all-filtered exploration step
        (section 4.1)."""
        return False

    # ------------------------------------------------------------------
    # Framework-provided functions (engine-bound)
    # ------------------------------------------------------------------
    def output(self, value: Any) -> None:
        """Emit a result to the run's output collection."""
        self._require_context().output(value)

    def map(self, key: Hashable, value: Any) -> None:
        """Send ``value`` to the reducer for ``key`` (pattern keys get
        two-level aggregation automatically)."""
        self._require_context().map(key, value)

    def map_output(self, key: Hashable, value: Any) -> None:
        """Send ``value`` to output aggregation (reduced at end of run)."""
        self._require_context().map_output(key, value)

    def read_aggregate(self, key: Hashable) -> Any:
        """Read the value aggregated for ``key`` in the previous step."""
        return self._require_context().read_aggregate(key)

    def note_domain_hits(self, count: int) -> None:
        """Report per-vertex domain images just recorded (one per
        (match, pattern position)); the runtime sums them into
        :attr:`~repro.core.results.StepStats.domain_hits`."""
        self._require_context().note_domain_hits(count)

    # ------------------------------------------------------------------
    # Convenience helpers
    # ------------------------------------------------------------------
    @staticmethod
    def pattern(embedding: Embedding) -> Pattern:
        """The quick pattern of an embedding (the paper's ``pattern(e)``)."""
        return embedding.pattern()

    def _require_context(self) -> ComputationContext:
        if self._context is None:
            raise RuntimeError(
                "framework functions are only available while the engine is "
                "running this computation"
            )
        return self._context

    def bind_context(self, context: ComputationContext | None) -> None:
        """Runtime hook: attach/detach one step task's context.

        Called on the task's shallow copy of the computation, never on the
        engine's template instance — each concurrent task owns its binding.
        """
        self._context = context
