"""Embeddings — the unit of exploration in the "think like an embedding" model.

An *embedding* is a connected subgraph of the input graph, an instance of a
more general *pattern* (paper, Figure 2).  Arabesque represents an embedding
as "the list of its vertices sorted by the order in which they have been
visited" (section 5.1) — for vertex-induced embeddings the vertex list
uniquely identifies the subgraph; for edge-induced embeddings the analogous
list of edge ids does.

We call that list the embedding's **words** (the original codebase uses the
same term).  Words are plain int tuples: the engine's hot loops operate on
them directly, and the :class:`Embedding` objects handed to user code are
thin views over ``(graph, words)``.

Two concrete classes mirror the two exploration modes of section 3.1:

* :class:`VertexInducedEmbedding` — words are vertex ids; the edge set is
  *induced* (every input-graph edge between member vertices belongs to the
  embedding);
* :class:`EdgeInducedEmbedding` — words are edge ids; the vertex set is the
  endpoints, and only the listed edges belong to the embedding.
"""

from __future__ import annotations

from ..graph import LabeledGraph
from .pattern import Pattern

#: Exploration-mode constants (paper: "edge-based or vertex-based
#: exploration mode", section 3.1).
VERTEX_EXPLORATION = "vertex"
EDGE_EXPLORATION = "edge"


class Embedding:
    """Common interface of both embedding kinds.

    Instances are immutable and hashable on their words, which — per the
    canonicality machinery — uniquely identify the subgraph within one
    exploration mode.
    """

    __slots__ = ("graph", "words")

    mode: str = ""

    def __init__(self, graph: LabeledGraph, words: tuple[int, ...] = ()) -> None:
        self.graph = graph
        self.words = tuple(words)

    # -- structure ------------------------------------------------------
    @property
    def vertices(self) -> tuple[int, ...]:
        """Member vertex ids in visit order."""
        raise NotImplementedError

    @property
    def edges(self) -> tuple[int, ...]:
        """Member edge ids (sorted for vertex-induced, visit order for
        edge-induced)."""
        raise NotImplementedError

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def size(self) -> int:
        """Number of words — the exploration depth that produced this."""
        return len(self.words)

    def vertex_set(self) -> frozenset[int]:
        """Member vertices as a frozenset."""
        return frozenset(self.vertices)

    def extend(self, word: int) -> "Embedding":
        """New embedding with ``word`` appended (same graph, same mode)."""
        return type(self)(self.graph, self.words + (word,))

    def pattern(self) -> Pattern:
        """The *quick pattern* of this embedding (paper, section 5.4).

        Obtained in linear time by relabeling member vertices with their
        visit positions; NOT canonical — automorphic embeddings visited in
        different orders may produce different quick patterns (that is the
        point: canonicalization is deferred to two-level aggregation).
        """
        raise NotImplementedError

    # -- dunder ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Embedding):
            return NotImplemented
        return self.mode == other.mode and self.words == other.words

    def __hash__(self) -> int:
        return hash((self.mode, self.words))

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self.words!r}"


class VertexInducedEmbedding(Embedding):
    """Embedding defined by a vertex set; edges are induced (section 2)."""

    __slots__ = ()

    mode = VERTEX_EXPLORATION

    @property
    def vertices(self) -> tuple[int, ...]:
        return self.words

    @property
    def edges(self) -> tuple[int, ...]:
        # The graph's bitset pass returns induced edge ids sorted already.
        return tuple(self.graph.induced_edge_ids(self.words))

    def pattern(self) -> Pattern:
        graph = self.graph
        words = self.words
        vertex_labels = tuple(graph.vertex_label(v) for v in words)
        pattern_edges: list[tuple[int, int, int]] = []
        for j, v in enumerate(words):
            neighbor_bits = graph.neighbor_bits(v)
            for i in range(j):
                u = words[i]
                if (neighbor_bits >> u) & 1:
                    pattern_edges.append(
                        (i, j, graph.edge_label(graph.edge_between(u, v)))
                    )
        pattern_edges.sort()
        return Pattern(vertex_labels, tuple(pattern_edges))

    def is_clique(self) -> bool:
        """Whether the newest vertex connects to all previous ones.

        This is the incremental clique check the paper's clique application
        uses (section 4.2): for embeddings built by extension, checking the
        last vertex suffices — the prefix was already verified.
        """
        if len(self.words) <= 1:
            return True
        newest = self.words[-1]
        neighbor_bits = self.graph.neighbor_bits(newest)
        return all((neighbor_bits >> v) & 1 for v in self.words[:-1])


class EdgeInducedEmbedding(Embedding):
    """Embedding defined by an edge set; vertices are the endpoints."""

    __slots__ = ()

    mode = EDGE_EXPLORATION

    @property
    def vertices(self) -> tuple[int, ...]:
        graph = self.graph
        seen: dict[int, None] = {}
        for eid in self.words:
            u, v = graph.edge_endpoints(eid)
            if u not in seen:
                seen[u] = None
            if v not in seen:
                seen[v] = None
        return tuple(seen)

    @property
    def edges(self) -> tuple[int, ...]:
        return self.words

    def pattern(self) -> Pattern:
        graph = self.graph
        position: dict[int, int] = {}
        vertex_labels: list[int] = []
        pattern_edges: list[tuple[int, int, int]] = []
        for eid in self.words:
            u, v = graph.edge_endpoints(eid)
            for w in (u, v):
                if w not in position:
                    position[w] = len(vertex_labels)
                    vertex_labels.append(graph.vertex_label(w))
            i, j = position[u], position[v]
            if i > j:
                i, j = j, i
            pattern_edges.append((i, j, graph.edge_label(eid)))
        pattern_edges.sort()
        return Pattern(tuple(vertex_labels), tuple(pattern_edges))


def make_embedding(
    graph: LabeledGraph, mode: str, words: tuple[int, ...] = ()
) -> Embedding:
    """Factory dispatching on exploration mode."""
    if mode == VERTEX_EXPLORATION:
        return VertexInducedEmbedding(graph, words)
    if mode == EDGE_EXPLORATION:
        return EdgeInducedEmbedding(graph, words)
    raise ValueError(f"unknown exploration mode {mode!r}")
