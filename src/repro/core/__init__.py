"""Arabesque core: the filter-process model and its execution techniques."""

from .aggregation import AggregationChannel, LocalAggregation, merge_partials
from .budget import (
    BudgetExceeded,
    CancelFlag,
    DEADLINE_BUDGET,
    EMBEDDING_BUDGET,
    RunCancelled,
)
from .canonical import (
    canonicalize_edge_set,
    canonicalize_vertex_set,
    is_canonical_edge_extension,
    is_canonical_edge_words,
    is_canonical_vertex_extension,
    is_canonical_vertex_words,
)
from .computation import Computation, ComputationContext
from .config import (
    ArabesqueConfig,
    BACKENDS,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    THREAD_BACKEND,
)
from .embedding import (
    EDGE_EXPLORATION,
    VERTEX_EXPLORATION,
    EdgeInducedEmbedding,
    Embedding,
    VertexInducedEmbedding,
    make_embedding,
)
from .engine import ArabesqueEngine, ExplorationError, run_computation
from .extension import edge_extensions, extensions, initial_candidates, vertex_extensions
from .odag import Odag
from .partition import PartitionReport, block_round_robin_assignment, measure_partition
from .pattern import Pattern, PatternCanonicalizer, canonicalize_pattern, pattern_orbits
from .results import RunResult, StepStats, WorkerDelta
from .storage import (
    ADAPTIVE_STORAGE,
    DEFAULT_SPILL_BUDGET_NBYTES,
    LIST_STORAGE,
    ODAG_STORAGE,
    SPILL_STORAGE,
    STORAGE_MODES,
    EmbeddingStore,
    ListStore,
    OdagStore,
    SpillListStore,
)

__all__ = [
    "ADAPTIVE_STORAGE",
    "AggregationChannel",
    "ArabesqueConfig",
    "ArabesqueEngine",
    "BACKENDS",
    "BudgetExceeded",
    "CancelFlag",
    "Computation",
    "ComputationContext",
    "DEADLINE_BUDGET",
    "DEFAULT_SPILL_BUDGET_NBYTES",
    "EDGE_EXPLORATION",
    "EMBEDDING_BUDGET",
    "EdgeInducedEmbedding",
    "Embedding",
    "EmbeddingStore",
    "ExplorationError",
    "LIST_STORAGE",
    "ListStore",
    "LocalAggregation",
    "ODAG_STORAGE",
    "Odag",
    "OdagStore",
    "PROCESS_BACKEND",
    "PartitionReport",
    "Pattern",
    "PatternCanonicalizer",
    "RunCancelled",
    "RunResult",
    "SERIAL_BACKEND",
    "SPILL_STORAGE",
    "STORAGE_MODES",
    "SpillListStore",
    "StepStats",
    "THREAD_BACKEND",
    "VERTEX_EXPLORATION",
    "VertexInducedEmbedding",
    "WorkerDelta",
    "block_round_robin_assignment",
    "canonicalize_edge_set",
    "canonicalize_pattern",
    "canonicalize_vertex_set",
    "edge_extensions",
    "extensions",
    "initial_candidates",
    "is_canonical_edge_extension",
    "is_canonical_edge_words",
    "is_canonical_vertex_extension",
    "is_canonical_vertex_words",
    "make_embedding",
    "measure_partition",
    "merge_partials",
    "pattern_orbits",
    "run_computation",
    "vertex_extensions",
]
