"""The Arabesque exploration engine — Algorithm 1, distributed and metered.

Each *exploration step* performs, per logical worker:

1. **read (R)** — extract this worker's rank-range share of the previous
   step's global store, re-applying the canonicality check and filter φ to
   discard spurious ODAG paths (section 5.2);
2. **aggregation filter/process (α/β)** — now that the generation step's
   aggregates are readable;
3. **generate (G)** — one-word extensions of each surviving embedding;
4. **canonicality (C)** — Algorithm 2 on every candidate, the
   coordination-free dedup of section 5.1;
5. **filter/process (φ/π)** — the user functions; π may ``map``/``output``;
6. **write (W)** — survivors (minus termination-filtered ones) go to the
   worker-local store under their canonical pattern.

After all workers finish, the engine simulates the communication rounds of
the real system and meters them (DESIGN.md, substitution 1): the
aggregation shuffle (one message per reduced key), the per-array-entry ODAG
merge shuffle, and the broadcast of the merged global store.  The run
terminates when a step stores nothing (set F empty).

Workers execute sequentially and deterministically; changing
``num_workers`` changes the metered distribution (and thus the simulated
makespan) but never the explored set or the outputs — a property the test
suite checks explicitly.
"""

from __future__ import annotations

import time
from typing import Any, Hashable

from ..bsp.messages import estimate_size
from ..bsp.metrics import RunMetrics, SuperstepMetrics
from ..graph import LabeledGraph
from .aggregation import AggregationChannel, LocalAggregation, merge_partials
from .canonical import extension_checker, full_checker
from .computation import Computation, ComputationContext
from .config import ArabesqueConfig
from .embedding import make_embedding
from .extension import extensions, initial_candidates
from .pattern import Pattern, PatternCanonicalizer
from .results import RunResult, StepStats
from .storage import (
    ADAPTIVE_STORAGE,
    LIST_STORAGE,
    ODAG_STORAGE,
    ListStore,
    OdagStore,
)

AGGREGATE_CHANNEL = "aggregate"
OUTPUT_CHANNEL = "output"


class ExplorationError(RuntimeError):
    """Raised when exploration exceeds the configured step bound."""


class _TurnContext(ComputationContext):
    """Framework functions bound while one worker processes one step."""

    def __init__(
        self,
        result: RunResult,
        config: ArabesqueConfig,
        local_agg: LocalAggregation,
        local_out: LocalAggregation,
        agg_channel: AggregationChannel,
        canonicalizer: PatternCanonicalizer,
    ) -> None:
        self._result = result
        self._config = config
        self._local_agg = local_agg
        self._local_out = local_out
        self._agg_channel = agg_channel
        self._canonicalizer = canonicalizer

    def output(self, value: Any) -> None:
        self._result.num_outputs += 1
        if self._config.collect_outputs:
            limit = self._config.output_limit
            if limit is None or len(self._result.outputs) < limit:
                self._result.outputs.append(value)

    def map(self, key: Hashable, value: Any) -> None:
        self._local_agg.map(key, value)

    def map_output(self, key: Hashable, value: Any) -> None:
        self._local_out.map(key, value)

    def read_aggregate(self, key: Hashable) -> Any:
        if isinstance(key, Pattern):
            key = self._canonicalizer.canonicalize(key)[0]
        return self._agg_channel.read(key)


class ArabesqueEngine:
    """Runs one :class:`~repro.core.computation.Computation` on one graph."""

    def __init__(
        self,
        graph: LabeledGraph,
        computation: Computation,
        config: ArabesqueConfig | None = None,
    ) -> None:
        self.graph = graph
        self.computation = computation
        self.config = config or ArabesqueConfig()
        self._mode = computation.exploration_mode
        if self.config.incremental_canonicality:
            self._check_extension = extension_checker(self._mode)
        else:
            full = full_checker(self._mode)

            def from_scratch(graph, parent_words, word):
                return full(graph, parent_words + (word,))

            self._check_extension = from_scratch

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute exploration steps until set F is empty; return results."""
        config = self.config
        computation = self.computation
        graph = self.graph
        num_workers = config.num_workers

        canonicalizer = PatternCanonicalizer(config.two_level_aggregation)
        agg_channel = AggregationChannel(AGGREGATE_CHANNEL, computation.reduce)
        out_channel = AggregationChannel(
            OUTPUT_CHANNEL, computation.reduce_output, persistent=True
        )
        computation.init(graph, config)

        result = RunResult()
        metrics = RunMetrics(num_workers=num_workers)
        result.metrics = metrics
        started = time.perf_counter()

        global_store = None
        for step in range(config.max_exploration_steps):
            stats = StepStats(step=step)
            step_metrics = metrics.new_superstep()
            step_started = time.perf_counter()

            local_stores = []
            agg_partials: list[dict[Hashable, Any]] = []
            out_partials: list[dict[Hashable, Any]] = []
            for worker_id in range(num_workers):
                store = ListStore() if config.storage == LIST_STORAGE else OdagStore()
                local_agg = LocalAggregation(agg_channel, canonicalizer)
                local_out = LocalAggregation(out_channel, canonicalizer)
                context = _TurnContext(
                    result, config, local_agg, local_out, agg_channel, canonicalizer
                )
                computation.bind_context(context)
                try:
                    if step == 0:
                        self._initial_pass(
                            worker_id, num_workers, store, canonicalizer,
                            stats, step_metrics,
                        )
                    else:
                        self._expansion_pass(
                            worker_id, num_workers, global_store, store,
                            canonicalizer, stats, step_metrics,
                        )
                finally:
                    computation.bind_context(None)
                local_stores.append(store)
                agg_partials.append(local_agg.merged_partials())
                out_partials.append(local_out.merged_partials())

            self._meter_aggregation(agg_partials, step_metrics)
            self._meter_aggregation(out_partials, step_metrics)
            merged_agg = merge_partials(agg_channel, agg_partials)
            agg_channel.step_barrier(merged_agg)
            if merged_agg:
                result.final_aggregates.update(merged_agg)
            out_channel.step_barrier(merge_partials(out_channel, out_partials))

            global_store = self._merge_stores(
                local_stores, step_metrics, stats, embedding_size=step + 1
            )
            stats.stored_embeddings = global_store.num_embeddings
            stats.storage_bytes = global_store.wire_size()
            stats.list_bytes = self._list_equivalent_bytes(global_store, step + 1)
            stats.num_patterns = len(global_store.patterns())
            result.peak_storage_bytes = max(
                result.peak_storage_bytes, stats.storage_bytes
            )
            step_metrics.wall_seconds = time.perf_counter() - step_started
            result.steps.append(stats)
            if global_store.is_empty():
                break
        else:
            raise ExplorationError(
                f"exploration did not terminate within "
                f"{config.max_exploration_steps} steps — "
                "check the filter's anti-monotonicity"
            )

        result.wall_seconds = time.perf_counter() - started
        result.output_aggregates = out_channel.finalize()
        result.pattern_requests = canonicalizer.requests
        result.quick_patterns = canonicalizer.quick_patterns_seen
        result.canonical_patterns = canonicalizer.canonical_patterns_seen()
        result.isomorphism_runs = canonicalizer.isomorphism_runs
        return result

    # ------------------------------------------------------------------
    # Worker passes
    # ------------------------------------------------------------------
    def _initial_pass(
        self,
        worker_id: int,
        num_workers: int,
        store,
        canonicalizer: PatternCanonicalizer,
        stats: StepStats,
        step_metrics: SuperstepMetrics,
    ) -> None:
        """Step 0: expand the "undefined" embedding — all vertices/edges."""
        graph = self.graph
        computation = self.computation
        profile = self.config.profile_phases
        universe = initial_candidates(graph, self._mode)
        total = len(universe)
        start = total * worker_id // num_workers
        end = total * (worker_id + 1) // num_workers
        work = 0
        for word in range(start, end):
            stats.candidates_generated += 1
            stats.canonical_candidates += 1  # single words are canonical
            work += 1
            embedding = make_embedding(graph, self._mode, (word,))
            if not computation.filter(embedding):
                continue
            stats.processed_embeddings += 1
            if profile:
                t0 = time.perf_counter()
                computation.process(embedding)
                step_metrics.add_phase_time("P", time.perf_counter() - t0)
            else:
                computation.process(embedding)
            if computation.termination_filter(embedding):
                continue
            if profile:
                t0 = time.perf_counter()
            canonical_pattern, _ = canonicalizer.canonicalize(embedding.pattern())
            store.add(canonical_pattern, embedding.words)
            if profile:
                step_metrics.add_phase_time("W", time.perf_counter() - t0)
        step_metrics.add_work(worker_id, work)

    def _expansion_pass(
        self,
        worker_id: int,
        num_workers: int,
        global_store,
        store,
        canonicalizer: PatternCanonicalizer,
        stats: StepStats,
        step_metrics: SuperstepMetrics,
    ) -> None:
        """Steps >= 1: read a share of set I, apply α/β, expand, φ/π, write."""
        graph = self.graph
        computation = self.computation
        mode = self._mode
        check_extension = self._check_extension
        profile = self.config.profile_phases
        verify_pattern = self.config.storage != LIST_STORAGE
        work = 0

        def prefix_ok(words: tuple[int, ...]) -> bool:
            """Spurious-path filter for ODAG extraction: the incremental
            canonicality check plus φ on the prefix (both anti-monotone,
            so failing prefixes prune whole subtrees — section 5.2)."""
            if not check_extension(graph, words[:-1], words[-1]):
                return False
            return computation.filter(make_embedding(graph, mode, words))

        iterator = global_store.extract_partition(worker_id, num_workers, prefix_ok)
        while True:
            if profile:
                t0 = time.perf_counter()
                item = next(iterator, None)
                step_metrics.add_phase_time("R", time.perf_counter() - t0)
            else:
                item = next(iterator, None)
            if item is None:
                break
            store_pattern, words = item
            work += 1
            embedding = make_embedding(graph, mode, words)
            if verify_pattern:
                # A path through pattern B's ODAG can spell out a perfectly
                # valid canonical embedding of pattern A (it passes the
                # canonicality check and φ) — but the real copy lives in
                # A's ODAG, so extracting it here would duplicate it.  The
                # extracted embedding is genuine for THIS ODAG only if its
                # canonical pattern matches the ODAG's key.
                extracted_pattern, _ = canonicalizer.canonicalize(embedding.pattern())
                if extracted_pattern != store_pattern:
                    stats.spurious_discarded += 1
                    continue
            stats.expanded_embeddings += 1
            if not computation.aggregation_filter(embedding):
                stats.aggregation_pruned += 1
                continue
            computation.aggregation_process(embedding)

            if profile:
                t0 = time.perf_counter()
                candidate_words = extensions(graph, mode, words)
                step_metrics.add_phase_time("G", time.perf_counter() - t0)
            else:
                candidate_words = extensions(graph, mode, words)

            for word in candidate_words:
                stats.candidates_generated += 1
                work += 1
                if profile:
                    t0 = time.perf_counter()
                    canonical = check_extension(graph, words, word)
                    step_metrics.add_phase_time("C", time.perf_counter() - t0)
                else:
                    canonical = check_extension(graph, words, word)
                if not canonical:
                    continue
                stats.canonical_candidates += 1
                child = embedding.extend(word)
                if not computation.filter(child):
                    continue
                stats.processed_embeddings += 1
                if profile:
                    t0 = time.perf_counter()
                    computation.process(child)
                    step_metrics.add_phase_time("P", time.perf_counter() - t0)
                else:
                    computation.process(child)
                if computation.termination_filter(child):
                    continue
                if profile:
                    t0 = time.perf_counter()
                    canonical_pattern, _ = canonicalizer.canonicalize(child.pattern())
                    step_metrics.add_phase_time("P", time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    store.add(canonical_pattern, child.words)
                    step_metrics.add_phase_time("W", time.perf_counter() - t0)
                else:
                    canonical_pattern, _ = canonicalizer.canonicalize(child.pattern())
                    store.add(canonical_pattern, child.words)
        step_metrics.add_work(worker_id, work)

    # ------------------------------------------------------------------
    # Simulated communication rounds (metered)
    # ------------------------------------------------------------------
    def _meter_aggregation(
        self,
        per_worker_partials: list[dict[Hashable, Any]],
        step_metrics: SuperstepMetrics,
    ) -> None:
        """One message per (worker, reduced key): the aggregation shuffle."""
        for partials in per_worker_partials:
            for key, value in partials.items():
                step_metrics.messages_sent += 1
                step_metrics.bytes_sent += 8 + estimate_size(key) + estimate_size(value)

    def _merge_stores(
        self,
        local_stores,
        step_metrics: SuperstepMetrics,
        stats: StepStats,
        embedding_size: int,
    ):
        """Merge worker-local stores into the global one, metering traffic.

        ODAG mode reproduces the paper's two rounds: a map-reduce shuffle of
        individual array entries to owner workers, then a broadcast of every
        merged per-pattern ODAG to all workers (section 5.2).  List mode
        ships each embedding once to the worker that will expand it.
        Adaptive mode builds ODAGs but ships whichever format is smaller
        this step — the paper's sparse-graph fallback (section 6.3); the
        in-process representation stays an ODAG either way.
        """
        if self.config.storage == LIST_STORAGE:
            merged = ListStore()
            for store in local_stores:
                merged.merge(store)
            merged.sort()
            step_metrics.messages_sent += merged.num_embeddings
            step_metrics.bytes_sent += merged.wire_size()
            stats.shipped_format = LIST_STORAGE
            return merged

        merged = OdagStore()
        shuffle_messages = 0
        shuffle_bytes = 0
        for store in local_stores:
            for pattern in store.patterns():
                odag = store.odag_for(pattern)
                for level, word, successors in odag.entries():
                    shuffle_messages += 1
                    shuffle_bytes += 20 + 4 * len(successors)
            merged.merge(store)
        odag_bytes = merged.wire_size()
        list_bytes = self._list_equivalent_bytes(merged, embedding_size)
        # Adaptive: compare the *total* shipping cost of the two formats —
        # ODAGs pay the per-entry merge shuffle plus the broadcast; lists
        # ship each embedding once to its expander.
        ship_as_list = (
            self.config.storage == ADAPTIVE_STORAGE
            and list_bytes < shuffle_bytes + odag_bytes
        )
        if ship_as_list:
            step_metrics.messages_sent += merged.num_embeddings
            step_metrics.bytes_sent += list_bytes
            stats.shipped_format = LIST_STORAGE
            return merged
        step_metrics.messages_sent += shuffle_messages
        step_metrics.bytes_sent += shuffle_bytes
        if not merged.is_empty():
            step_metrics.broadcast_messages += 1
            step_metrics.broadcast_bytes += odag_bytes
        stats.shipped_format = ODAG_STORAGE
        return merged

    @staticmethod
    def _list_equivalent_bytes(global_store, embedding_size: int) -> int:
        """Bytes the stored set would occupy as plain word lists (Figure 9)."""
        return global_store.num_embeddings * (4 + 4 * embedding_size)


def run_computation(
    graph: LabeledGraph,
    computation: Computation,
    config: ArabesqueConfig | None = None,
) -> RunResult:
    """One-call convenience wrapper: build an engine and run it."""
    return ArabesqueEngine(graph, computation, config).run()
