"""The Arabesque exploration engine — Algorithm 1, distributed and metered.

Each *exploration step* performs, per logical worker:

1. **read (R)** — extract this worker's rank-range share of the previous
   step's global store, re-applying the canonicality check and filter φ to
   discard spurious ODAG paths (section 5.2);
2. **aggregation filter/process (α/β)** — now that the generation step's
   aggregates are readable;
3. **generate (G)** — one-word extensions of each surviving embedding;
4. **canonicality (C)** — Algorithm 2 on every candidate, the
   coordination-free dedup of section 5.1;
5. **filter/process (φ/π)** — the user functions; π may ``map``/``output``;
6. **write (W)** — survivors (minus termination-filtered ones) go to the
   worker-local store under their canonical pattern.

The per-worker work is packaged as a **pure step task**
(:func:`repro.runtime.tasks.run_step_task`): an immutable
:class:`~repro.runtime.tasks.StepContext` in, a mergeable
:class:`~repro.core.results.WorkerDelta` out, no shared mutable state during
the pass.  A pluggable :class:`~repro.runtime.ExecutionBackend` decides how
the tasks run — sequentially (default), on threads, or on OS processes for
real multi-core speedup — while the engine's delta merge (always in
worker-id order) keeps results byte-identical across backends and worker
counts, a property the test suite checks explicitly.

After all workers finish, the engine simulates the communication rounds of
the real system and meters them (DESIGN.md, substitution 1): the
aggregation shuffle (one message per reduced key), the per-array-entry ODAG
merge shuffle, and the broadcast of the merged global store.  The run
terminates when a step stores nothing (set F empty).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Any, Hashable

from typing import TYPE_CHECKING

from ..bsp.messages import estimate_size
from ..bsp.metrics import RunMetrics, SuperstepMetrics
from ..graph import LabeledGraph
from .aggregation import AggregationChannel, merge_partials
from .budget import (
    BudgetExceeded,
    DEADLINE_BUDGET,
    EMBEDDING_BUDGET,
    RunCancelled,
)
from .computation import Computation
from .config import ArabesqueConfig
from .embedding import EDGE_EXPLORATION, VERTEX_EXPLORATION
from .extension import initial_candidates
from .pattern import PatternCanonicalizer
from .results import RunResult, StepStats, WorkerDelta
from .storage import (
    ADAPTIVE_STORAGE,
    LIST_STORAGE,
    ODAG_STORAGE,
    SPILL_STORAGE,
    ListStore,
    OdagStore,
    SpillListStore,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; see run()
    from ..checkpoint.snapshot import CheckpointWriter, ResumeState
    from ..runtime import ExecutionBackend, StepContext

AGGREGATE_CHANNEL = "aggregate"
OUTPUT_CHANNEL = "output"


class ExplorationError(RuntimeError):
    """Raised when exploration exceeds the configured step bound."""


class ArabesqueEngine:
    """Runs one :class:`~repro.core.computation.Computation` on one graph.

    ``backend`` overrides the backend that ``config.backend`` would select
    (useful for injecting a tuned/instrumented backend); when the engine
    builds the backend itself it also closes it when the run finishes.

    ``universe`` injects a precomputed step-0 candidate set (every vertex
    or every edge, depending on the computation's exploration mode).  A
    session running many queries against one graph (:class:`repro.session.Miner`)
    computes it once and reuses it; ``None`` (default) computes it here.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        computation: Computation,
        config: ArabesqueConfig | None = None,
        backend: ExecutionBackend | None = None,
        universe: tuple[int, ...] | None = None,
        checkpointer: "CheckpointWriter | None" = None,
    ) -> None:
        self.graph = graph
        self.computation = computation
        self.config = config or ArabesqueConfig()
        self._mode = computation.exploration_mode
        if self._mode not in (VERTEX_EXPLORATION, EDGE_EXPLORATION):
            raise ValueError(f"unknown exploration mode {self._mode!r}")
        if self.config.plan is not None:
            if self._mode != VERTEX_EXPLORATION:
                raise ValueError(
                    "guided plans (and plan DAGs) drive vertex-based "
                    "exploration; edge-exploration computations cannot "
                    "run with config.plan"
                )
            if not computation.plan_compatible:
                raise ValueError(
                    f"{type(computation).__name__} has not opted into "
                    "plan-guided exploration (plan_compatible=False); "
                    "config.plan would silently restrict what it explores"
                )
        if computation.plan_compatible:
            # A plan-compatible computation interprets embeddings through
            # its own plan; if that differs from the plan steering the
            # runtime (including config.plan=None, i.e. exhaustive
            # exploration), the output would be silently wrong.
            declared = getattr(computation, "plan", None)
            if declared is not None and declared != self.config.plan:
                raise ValueError(
                    "computation carries a different plan than config.plan; "
                    "pass the same MatchingPlan to both (the session "
                    "facade and run_guided_fsm wire this up)"
                )
        #: Guided step-0 pool (label index / whitelist / DAG root-pool
        #: union), computed once per run by :meth:`_plan_pool`.
        self._plan_universe: tuple[int, ...] | None = None
        #: Monotonic instant the run's deadline budget expires (set per
        #: run from ``config.deadline_seconds``; ``None`` = no deadline).
        self._deadline_at: float | None = None
        self._backend = backend
        #: Barrier-snapshot writer.  Injected (fault-injection harness,
        #: resume) or built lazily from ``config.checkpoint_dir``.
        self._checkpointer = checkpointer
        #: Spill-mode only: the run's private segment directory, created
        #: per run and removed when the run finishes.
        self._spill_root: str | None = None
        #: Expansion of the "undefined" embedding, computed once per engine
        #: (step 0 used to rebuild it per worker; see bench note in
        #: benchmarks/_harness.py) — or injected by a session that already
        #: computed it for this graph and mode.
        if universe is not None:
            expected = (
                graph.num_vertices
                if self._mode == VERTEX_EXPLORATION
                else graph.num_edges
            )
            if len(universe) != expected:
                raise ValueError(
                    f"injected universe has {len(universe)} candidates but "
                    f"{self._mode} exploration of this graph needs {expected}"
                )
        self._universe = tuple(universe) if universe is not None else None

    # ------------------------------------------------------------------
    def _initial_universe(self) -> tuple[int, ...]:
        if self._universe is None:
            self._universe = tuple(initial_candidates(self.graph, self._mode))
        return self._universe

    def _plan_pool(self) -> tuple[int, ...]:
        """Guided step-0 candidate pool, computed once per run.

        The single-plan pool is the first step's label index (or
        whitelist); a DAG's is the sorted-unique union of its root
        pools.  Computing it here — in the parent process, before any
        step task runs — both avoids repeating the union merge in every
        worker and warms the graph's label index so the process
        backend's forks inherit it copy-on-write.  DAG runs also
        prewarm the structural mask bundle
        (:func:`repro.plan.dag.mask_bundle`) at the same point, for the
        same reason: every worker task's fused stepper reads the
        prebuilt masks instead of rebuilding them per fork.
        """
        if self._plan_universe is None:
            # Imported lazily like the runtime (core.config <- plan).
            from ..plan.dag import PlanDAG, dag_step_zero_pool, mask_bundle
            from ..plan.guided import step_zero_pool

            plan = self.config.plan
            if isinstance(plan, PlanDAG):
                mask_bundle(plan, self.graph)
                pool = dag_step_zero_pool(plan, self.graph)
            else:
                pool = step_zero_pool(plan, self.graph)
            self._plan_universe = tuple(pool)
        return self._plan_universe

    def _step_context(
        self,
        step: int,
        global_store,
        canonicalizer: PatternCanonicalizer,
        agg_channel: AggregationChannel,
    ) -> "StepContext":
        # Imported here (not at module top): repro.runtime's backends import
        # repro.core.config, so a module-level import would be circular.
        from ..runtime.tasks import StepContext

        config = self.config
        return StepContext(
            step=step,
            graph=self.graph,
            computation=self.computation,
            mode=self._mode,
            num_workers=config.num_workers,
            storage=config.storage,
            incremental_canonicality=config.incremental_canonicality,
            profile_phases=config.profile_phases,
            collect_outputs=config.collect_outputs,
            output_limit=config.output_limit,
            two_level_aggregation=config.two_level_aggregation,
            plan=config.plan,
            pattern_cache=canonicalizer.cache_snapshot(),
            published_aggregates=agg_channel.published(),
            # Guided runs draw step 0 from the plan's own pool (label
            # index, domain whitelist, or DAG root-pool union) instead of
            # the exhaustive universe; either way the engine computes the
            # pool once and ships it through the same channel.
            universe=(
                None
                if step != 0
                else self._initial_universe()
                if config.plan is None
                else self._plan_pool()
            ),
            global_store=global_store if step > 0 else None,
            deadline_at=self._deadline_at,
            spill_dir=self._spill_root,
            spill_budget_nbytes=config.spill_budget_nbytes,
            cancel=config.cancel,
        )

    def _merge_delta(
        self,
        delta: WorkerDelta,
        result: RunResult,
        stats: StepStats,
        step_metrics: SuperstepMetrics,
        canonicalizer: PatternCanonicalizer,
    ) -> None:
        """Fold one worker's delta into run state (call in worker-id order)."""
        config = self.config
        result.num_outputs += delta.num_outputs
        if config.collect_outputs and delta.outputs:
            limit = config.output_limit
            if limit is None:
                result.outputs.extend(delta.outputs)
            else:
                room = limit - len(result.outputs)
                if room > 0:
                    result.outputs.extend(delta.outputs[:room])
        stats.absorb(delta.counters)
        step_metrics.absorb_worker(
            delta.worker_id, delta.work_units, delta.phase_seconds
        )
        canonicalizer.absorb(
            delta.new_pattern_entries,
            delta.pattern_requests,
            delta.isomorphism_runs,
        )

    # ------------------------------------------------------------------
    def run(self, resume_state: "ResumeState | None" = None) -> RunResult:
        """Execute exploration steps until set F is empty; return results.

        ``resume_state`` (built by :func:`repro.checkpoint.resume_run` from
        a barrier snapshot) restarts the loop at the snapshotted step + 1
        with the merged store, aggregation channels, pattern cache, and run
        counters restored — the resumed run's result is byte-identical to
        an uninterrupted one because everything a later step reads was
        captured at the barrier.  The deadline budget is re-armed fresh;
        wall-clock accumulates across the crash.
        """
        config = self.config
        computation = self.computation
        num_workers = config.num_workers
        cancel = config.cancel

        if resume_state is None:
            canonicalizer = PatternCanonicalizer(config.two_level_aggregation)
            result = RunResult()
            metrics = RunMetrics(num_workers=num_workers)
            result.metrics = metrics
            processed_total = 0
            start_step = 0
            global_store = None
            prior_wall = 0.0
        else:
            canonicalizer = resume_state.canonicalizer
            result = resume_state.result
            metrics = result.metrics
            if metrics is None:
                metrics = RunMetrics(num_workers=num_workers)
                result.metrics = metrics
            processed_total = resume_state.processed_total
            start_step = resume_state.step + 1
            global_store = resume_state.store
            prior_wall = resume_state.wall_seconds
        agg_channel = AggregationChannel(AGGREGATE_CHANNEL, computation.reduce)
        out_channel = AggregationChannel(
            OUTPUT_CHANNEL, computation.reduce_output, persistent=True
        )
        if resume_state is not None:
            agg_channel.restore(
                resume_state.agg_published, resume_state.agg_latest
            )
            out_channel.restore_accumulated(resume_state.out_accumulated)
        computation.init(self.graph, config)

        started = time.perf_counter()
        # Budget hook (core.budget): arm the deadline clock once per run,
        # and tally processed embeddings across barriers for the
        # deterministic max_embeddings check below.
        self._deadline_at = (
            None
            if config.deadline_seconds is None
            else time.monotonic() + config.deadline_seconds
        )

        checkpointer = self._checkpointer
        if checkpointer is None and config.checkpoint_dir is not None:
            # Imported lazily: the checkpoint package imports this module.
            from ..checkpoint.snapshot import CheckpointWriter

            checkpointer = CheckpointWriter(
                config.checkpoint_dir,
                keep=config.checkpoint_keep,
                fresh=resume_state is None,
            )
        if checkpointer is not None:
            from ..checkpoint.snapshot import build_payload

        from ..runtime.base import make_backend

        backend = self._backend or make_backend(config)
        owns_backend = self._backend is None
        if config.storage == SPILL_STORAGE:
            self._spill_root = tempfile.mkdtemp(
                prefix="arabesque-spill-", dir=config.spill_dir
            )
        try:
            for step in range(start_step, config.max_exploration_steps):
                if cancel is not None and cancel.is_set():
                    raise RunCancelled(
                        f"run cancelled at the step-{step} barrier"
                    )
                stats = StepStats(step=step)
                step_metrics = metrics.new_superstep()
                step_started = time.perf_counter()

                context = self._step_context(
                    step, global_store, canonicalizer, agg_channel
                )
                try:
                    deltas = backend.run_step(context)
                except BudgetExceeded as exc:
                    # A worker task tripped the mid-step deadline probe; it
                    # only sees the expiry instant, so re-raise with the
                    # run-level numbers filled in.
                    if self._deadline_at is None:
                        raise
                    now = time.monotonic()
                    raise BudgetExceeded(
                        DEADLINE_BUDGET,
                        config.deadline_seconds,
                        config.deadline_seconds
                        + max(0.0, now - self._deadline_at),
                    ) from exc
                for delta in deltas:
                    self._merge_delta(
                        delta, result, stats, step_metrics, canonicalizer
                    )
                local_stores = [delta.local_store for delta in deltas]
                agg_partials = [delta.agg_partials for delta in deltas]
                out_partials = [delta.out_partials for delta in deltas]

                self._meter_aggregation(agg_partials, step_metrics)
                self._meter_aggregation(out_partials, step_metrics)
                agg_channel.step_barrier(merge_partials(agg_channel, agg_partials))
                out_channel.step_barrier(merge_partials(out_channel, out_partials))

                prev_store = global_store
                global_store = self._merge_stores(
                    local_stores, step_metrics, stats, embedding_size=step + 1
                )
                if isinstance(prev_store, SpillListStore):
                    # The previous step's segments were fully read by this
                    # step's extraction passes; reclaim the disk now.
                    prev_store.dispose()
                stats.stored_embeddings = global_store.num_embeddings
                stats.storage_bytes = global_store.wire_size()
                stats.list_bytes = self._list_equivalent_bytes(global_store, step + 1)
                stats.num_patterns = len(global_store.patterns())
                result.peak_storage_bytes = max(
                    result.peak_storage_bytes, stats.storage_bytes
                )
                step_metrics.wall_seconds = time.perf_counter() - step_started
                result.steps.append(stats)
                processed_total += stats.processed_embeddings
                if global_store.is_empty():
                    break
                # Snapshot hook, at the barrier right after the store
                # merge: everything a later step reads (merged store,
                # channel state, pattern cache, run counters) is captured
                # here, before the budget checks below so a budget-tripped
                # run can be resumed with a larger allowance.  The final
                # empty barrier is never snapshotted — the run is done.
                if (
                    checkpointer is not None
                    and (step + 1) % config.checkpoint_every == 0
                ):
                    checkpointer.write(
                        step,
                        build_payload(
                            graph=self.graph,
                            config=config,
                            mode=self._mode,
                            step=step,
                            processed_total=processed_total,
                            result=result,
                            store=global_store,
                            canonicalizer=canonicalizer,
                            agg_channel=agg_channel,
                            out_channel=out_channel,
                            computation=computation,
                            wall_seconds=prior_wall
                            + (time.perf_counter() - started),
                        ),
                    )
                # Budget checks, cooperatively at the step barrier: a run
                # that just finished (empty set F, the break above) always
                # returns its result — budgets only stop runs that still
                # have exploration ahead of them.  The embedding check
                # reads merged counters, so its trip point is identical
                # across backends and worker counts; the deadline check is
                # wall-clock best-effort (worker tasks also probe it
                # inside long steps — see runtime.tasks).
                if (
                    config.max_embeddings is not None
                    and processed_total > config.max_embeddings
                ):
                    raise BudgetExceeded(
                        EMBEDDING_BUDGET, config.max_embeddings, processed_total
                    )
                if self._deadline_at is not None:
                    now = time.monotonic()
                    if now > self._deadline_at:
                        raise BudgetExceeded(
                            DEADLINE_BUDGET,
                            config.deadline_seconds,
                            config.deadline_seconds + (now - self._deadline_at),
                        )
            else:
                raise ExplorationError(
                    f"exploration did not terminate within "
                    f"{config.max_exploration_steps} steps — "
                    "check the filter's anti-monotonicity"
                )
        finally:
            if owns_backend:
                backend.close()
            if self._spill_root is not None:
                # Barrier snapshots carry the store's rows, so spilled
                # segments never need to outlive the run.
                shutil.rmtree(self._spill_root, ignore_errors=True)
                self._spill_root = None

        result.wall_seconds = prior_wall + (time.perf_counter() - started)
        result.output_aggregates = out_channel.finalize()
        result.final_aggregates = agg_channel.latest()
        result.pattern_requests = canonicalizer.requests
        result.quick_patterns = canonicalizer.quick_patterns_seen
        result.canonical_patterns = canonicalizer.canonical_patterns_seen()
        result.isomorphism_runs = canonicalizer.isomorphism_runs
        return result

    # ------------------------------------------------------------------
    # Simulated communication rounds (metered)
    # ------------------------------------------------------------------
    def _meter_aggregation(
        self,
        per_worker_partials: list[dict[Hashable, Any]],
        step_metrics: SuperstepMetrics,
    ) -> None:
        """One message per (worker, reduced key): the aggregation shuffle."""
        for partials in per_worker_partials:
            for key, value in partials.items():
                step_metrics.messages_sent += 1
                step_metrics.bytes_sent += 8 + estimate_size(key) + estimate_size(value)

    def _merge_stores(
        self,
        local_stores,
        step_metrics: SuperstepMetrics,
        stats: StepStats,
        embedding_size: int,
    ):
        """Merge worker-local stores into the global one, metering traffic.

        ODAG mode reproduces the paper's two rounds: a map-reduce shuffle of
        individual array entries to owner workers, then a broadcast of every
        merged per-pattern ODAG to all workers (section 5.2).  List mode
        ships each embedding once to the worker that will expand it.
        Adaptive mode builds ODAGs but ships whichever format is smaller
        this step — the paper's sparse-graph fallback (section 6.3); the
        in-process representation stays an ODAG either way.
        """
        if self.config.storage == LIST_STORAGE:
            merged = ListStore()
            for store in local_stores:
                merged.merge(store)
            merged.sort()
            step_metrics.messages_sent += merged.num_embeddings
            step_metrics.bytes_sent += merged.wire_size()
            stats.shipped_format = LIST_STORAGE
            return merged

        if self.config.storage == SPILL_STORAGE:
            # Same wire semantics as list mode (each embedding ships once
            # to its expander), but the merged store — like the worker
            # locals — spills past the byte budget instead of growing.
            merged = SpillListStore(
                directory=self._spill_root,
                budget_nbytes=self.config.spill_budget_nbytes,
                tag=f"s{stats.step}m",
            )
            for store in local_stores:
                merged.merge(store)
                if isinstance(store, SpillListStore):
                    store.dispose()
            step_metrics.messages_sent += merged.num_embeddings
            step_metrics.bytes_sent += merged.wire_size()
            stats.shipped_format = LIST_STORAGE
            return merged

        merged = OdagStore()
        shuffle_messages = 0
        shuffle_bytes = 0
        for store in local_stores:
            for pattern in store.patterns():
                odag = store.odag_for(pattern)
                for level, word, successors in odag.entries():
                    shuffle_messages += 1
                    shuffle_bytes += 20 + 4 * len(successors)
            merged.merge(store)
        odag_bytes = merged.wire_size()
        list_bytes = self._list_equivalent_bytes(merged, embedding_size)
        # Adaptive: compare the *total* shipping cost of the two formats —
        # ODAGs pay the per-entry merge shuffle plus the broadcast; lists
        # ship each embedding once to its expander.
        ship_as_list = (
            self.config.storage == ADAPTIVE_STORAGE
            and list_bytes < shuffle_bytes + odag_bytes
        )
        if ship_as_list:
            step_metrics.messages_sent += merged.num_embeddings
            step_metrics.bytes_sent += list_bytes
            stats.shipped_format = LIST_STORAGE
            return merged
        step_metrics.messages_sent += shuffle_messages
        step_metrics.bytes_sent += shuffle_bytes
        if not merged.is_empty():
            step_metrics.broadcast_messages += 1
            step_metrics.broadcast_bytes += odag_bytes
        stats.shipped_format = ODAG_STORAGE
        return merged

    @staticmethod
    def _list_equivalent_bytes(global_store, embedding_size: int) -> int:
        """Bytes the stored set would occupy as plain word lists (Figure 9)."""
        return global_store.num_embeddings * (4 + 4 * embedding_size)


def run_computation(
    graph: LabeledGraph,
    computation: Computation,
    config: ArabesqueConfig | None = None,
    backend: ExecutionBackend | None = None,
    universe: tuple[int, ...] | None = None,
) -> RunResult:
    """One-call convenience wrapper: build an engine and run it."""
    return ArabesqueEngine(
        graph, computation, config, backend=backend, universe=universe
    ).run()
