"""Cooperative per-run resource budgets — the query service's kill switch.

A mining run can be *pathological* without being buggy: a dense query
pattern on a large graph may generate embeddings forever while staying
perfectly anti-monotone.  A long-lived service cannot afford to find out
the hard way, so :class:`~repro.core.config.ArabesqueConfig` carries two
optional budgets and the engine enforces them **cooperatively**:

* ``deadline_seconds`` — a wall-clock allowance for the whole run.  The
  engine checks it at every BSP step barrier, and the worker tasks also
  probe it every :data:`DEADLINE_CHECK_INTERVAL` embeddings inside a
  step, so a single pathological step cannot overshoot by much.  The
  clock is :func:`time.monotonic`, which on Linux is the system-wide
  ``CLOCK_MONOTONIC`` — comparable across the process backend's forks.
* ``max_embeddings`` — a cap on *processed* embeddings (the paper's
  "embeddings analyzed" figure, summed over steps).  Checked only at the
  step barrier, where the merged counters are backend- and
  worker-count-invariant, so the trip point is deterministic: the same
  query trips at the same step on every backend.

Tripping raises :class:`BudgetExceeded` — loud, picklable (the process
backend ships it back from a worker), and carrying enough structure for
the service layer to map it to a 4xx response instead of a stack trace.

A run that finishes *within* its budgets is untouched: the checks read
counters and the clock but mutate nothing, so an armed-but-untripped run
is byte-identical to an unbudgeted one (asserted in
``tests/test_budget.py``).
"""

from __future__ import annotations

import threading

#: Embeddings between in-task deadline probes (see
#: :func:`repro.runtime.tasks.run_step_task`).  Coarse enough that the
#: clock read never shows up in profiles, fine enough that a runaway
#: step is cut off in milliseconds, not minutes.
DEADLINE_CHECK_INTERVAL = 512

#: The two budget kinds a trip can report.
DEADLINE_BUDGET = "deadline"
EMBEDDING_BUDGET = "embeddings"


class BudgetExceeded(RuntimeError):
    """A run blew through its configured deadline or embedding budget.

    Attributes identify the trip: ``kind`` is :data:`DEADLINE_BUDGET` or
    :data:`EMBEDDING_BUDGET`, ``limit`` the configured allowance, and
    ``spent`` what the run had consumed when the check fired (seconds or
    embeddings, matching the kind).  ``limit``/``spent`` are ``None``
    when the raiser could not see them — a worker task mid-step knows
    only the expiry instant; the engine catches that and re-raises with
    the run-level numbers filled in.
    """

    def __init__(
        self,
        kind: str,
        limit: float | None = None,
        spent: float | None = None,
    ) -> None:
        self.kind = kind
        self.limit = limit
        self.spent = spent
        if kind == DEADLINE_BUDGET:
            if limit is None:
                message = (
                    "run exceeded its deadline mid-step — raise "
                    "deadline_seconds or narrow the query"
                )
            else:
                message = (
                    f"run exceeded its {limit:g}s deadline "
                    f"({spent:.3f}s elapsed) — raise deadline_seconds or "
                    "narrow the query"
                )
        else:
            message = (
                f"run exceeded its embedding budget "
                f"({spent:,.0f} processed, {limit:,.0f} allowed) — raise "
                "max_embeddings or narrow the query"
            )
        super().__init__(message)

    def __reduce__(self):  # picklable across the process backend
        return (type(self), (self.kind, self.limit, self.spent))


class RunCancelled(RuntimeError):
    """A run was cancelled from outside (its :class:`CancelFlag` was set).

    Distinct from :class:`BudgetExceeded`: a budget trip is the *run's own*
    resource exhaustion and maps to a 4xx at the service layer, whereas a
    cancellation means nobody wants the answer any more (the client
    disconnected, the caller gave up) — the service drops the run without
    writing a response.  Picklable like every other engine-crossing error.
    """

    def __init__(self, reason: str = "run cancelled") -> None:
        self.reason = reason
        super().__init__(reason)

    def __reduce__(self):
        return (type(self), (self.reason,))


class CancelFlag:
    """Cooperative cancellation handle shared between a run and its owner.

    The owner (e.g. the query service's disconnect watcher) calls
    :meth:`set` from any thread; the engine checks the flag at every BSP
    barrier and worker tasks probe it alongside the deadline probe (every
    :data:`DEADLINE_CHECK_INTERVAL` embeddings), raising
    :class:`RunCancelled`.

    Thread-backend workers share the flag object, so an in-step set() cuts
    them off mid-pass.  The process backend pickles the :class:`StepContext`
    into child processes, where a shared in-memory event cannot follow —
    ``__reduce__`` therefore ships an *inert* fresh flag, degrading
    cancellation to barrier granularity there (the engine's own check still
    sees the live flag).  That trade keeps the flag dependency-free; a
    ``multiprocessing.Event`` would cut in-step too but drags a semaphore
    into every context pickle.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def __reduce__(self):  # process-backend children get an inert flag
        return (type(self), ())


__all__ = [
    "BudgetExceeded",
    "CancelFlag",
    "DEADLINE_BUDGET",
    "DEADLINE_CHECK_INTERVAL",
    "EMBEDDING_BUDGET",
    "RunCancelled",
]
