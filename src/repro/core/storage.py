"""Inter-step embedding storage: per-pattern ODAGs or plain lists.

After each exploration step Arabesque must persist the surviving embeddings
(set ``F`` of Algorithm 1) so the next step can expand them.  Two strategies
are implemented behind one interface:

* :class:`OdagStore` — the paper's design: one
  :class:`~repro.core.odag.Odag` per canonical pattern, merged globally and
  broadcast (sections 5.2-5.3);
* :class:`ListStore` — explicit word lists, the "No ODAGs" configuration of
  Figure 10 (also what the real system falls back to when ODAGs compress
  poorly, e.g. the Instagram runs of Table 5).

Both report wire sizes so the Figure 9 compression experiment can compare
them on identical embedding sets, and both support deterministic rank-range
partitioning so worker counts do not change what is explored.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .odag import Odag, PrefixFilter
from .pattern import Pattern

#: Storage-mode configuration values.
ODAG_STORAGE = "odag"
LIST_STORAGE = "list"
#: Per-step choice of the cheaper wire format (section 6.3: "in the first
#: exploration steps with very large and sparse graphs ... we can revert to
#: using embedding lists").
ADAPTIVE_STORAGE = "adaptive"
#: Every valid ``ArabesqueConfig.storage`` value — the single source of
#: truth shared by config validation, the CLI's ``--storage`` choices, and
#: the session facade's ``.storage()`` option.
STORAGE_MODES = (ODAG_STORAGE, LIST_STORAGE, ADAPTIVE_STORAGE)


def _pattern_sort_key(pattern: Pattern) -> tuple:
    return (pattern.vertex_labels, pattern.edges)


class EmbeddingStore:
    """Interface shared by both storage strategies."""

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        """Store one embedding under its (canonical) pattern."""
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    @property
    def num_embeddings(self) -> int:
        """Embeddings stored (exact, not overapproximated)."""
        raise NotImplementedError

    def patterns(self) -> list[Pattern]:
        """Stored patterns in deterministic (sorted) order."""
        raise NotImplementedError

    def wire_size(self) -> int:
        """Bytes to ship this store under the wire model."""
        raise NotImplementedError

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Yield ``(pattern, words)`` of this worker's share of embeddings."""
        raise NotImplementedError


class OdagStore(EmbeddingStore):
    """Per-pattern ODAGs (the paper's default storage)."""

    def __init__(self) -> None:
        self._odags: dict[Pattern, Odag] = {}

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        odag = self._odags.get(pattern)
        if odag is None:
            odag = Odag(len(words))
            self._odags[pattern] = odag
        odag.add(words)

    def odag_for(self, pattern: Pattern) -> Odag:
        """The pattern's ODAG (KeyError if absent)."""
        return self._odags[pattern]

    def is_empty(self) -> bool:
        return not self._odags

    @property
    def num_embeddings(self) -> int:
        return sum(odag.num_added for odag in self._odags.values())

    @property
    def num_odags(self) -> int:
        """Distinct patterns — "as the number of patterns grows, so does the
        number of ODAGs" (section 6.3)."""
        return len(self._odags)

    def patterns(self) -> list[Pattern]:
        return sorted(self._odags, key=_pattern_sort_key)

    def wire_size(self) -> int:
        return sum(
            pattern.wire_size() + odag.wire_size()
            for pattern, odag in self._odags.items()
        )

    def total_paths(self) -> int:
        """Overapproximated path count across all patterns."""
        return sum(odag.total_paths() for odag in self._odags.values())

    def merge(self, other: "OdagStore") -> None:
        """Union another store (per-pattern ODAG merge)."""
        for pattern, odag in other._odags.items():
            mine = self._odags.get(pattern)
            if mine is None:
                fresh = Odag(odag.size)
                fresh.merge(odag)
                self._odags[pattern] = fresh
            else:
                mine.merge(odag)

    #: Rank blocks each worker receives per pattern ODAG.  Interleaving
    #: blocks round-robin (rather than one contiguous range per worker)
    #: spreads hub-heavy rank regions across workers — the paper's "round
    #: robin on large blocks of b embeddings" (section 5.3).
    blocks_per_worker: int = 32

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Block round-robin share of each pattern's ODAG (section 5.3).

        The overapproximated path space of every pattern ODAG is cut into
        equal rank blocks (per-element path counts are the cost estimate)
        and dealt round-robin.  The deal is rotated by the pattern's index
        so that workloads with many small per-pattern ODAGs (e.g. labeled
        cliques, where most patterns hold a handful of embeddings and form
        a single block) spread across workers instead of all landing on
        worker 0.  All workers see the same global structure, so the split
        needs no coordination.
        """
        for pattern_index, pattern in enumerate(self.patterns()):
            odag = self._odags[pattern]
            total = odag.total_paths()
            if total == 0:
                continue
            num_blocks = min(total, num_workers * self.blocks_per_worker)
            first = (worker_id + pattern_index) % num_workers
            for block in range(first, num_blocks, num_workers):
                start = total * block // num_blocks
                end = total * (block + 1) // num_blocks
                for words in odag.extract_range(start, end, prefix_filter):
                    yield pattern, words


class ListStore(EmbeddingStore):
    """Explicit embedding lists — the Figure 10 "No ODAGs" ablation."""

    def __init__(self) -> None:
        self._lists: dict[Pattern, list[tuple[int, ...]]] = {}

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        self._lists.setdefault(pattern, []).append(words)

    def is_empty(self) -> bool:
        return not self._lists

    @property
    def num_embeddings(self) -> int:
        return sum(len(words_list) for words_list in self._lists.values())

    def patterns(self) -> list[Pattern]:
        return sorted(self._lists, key=_pattern_sort_key)

    def wire_size(self) -> int:
        """Header + 4 bytes per word of every stored embedding."""
        total = 0
        for pattern, words_list in self._lists.items():
            total += pattern.wire_size() + 4
            for words in words_list:
                total += 4 + 4 * len(words)
        return total

    def merge(self, other: "ListStore") -> None:
        for pattern, words_list in other._lists.items():
            self._lists.setdefault(pattern, []).extend(words_list)

    def sort(self) -> None:
        """Make extraction order deterministic after merging."""
        for words_list in self._lists.values():
            words_list.sort()

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Contiguous per-pattern slices; stored embeddings are exact, so
        ``prefix_filter`` is not consulted (nothing spurious to discard)."""
        for pattern in self.patterns():
            words_list = self._lists[pattern]
            total = len(words_list)
            start = total * worker_id // num_workers
            end = total * (worker_id + 1) // num_workers
            for words in words_list[start:end]:
                yield pattern, words


def make_store(storage_mode: str) -> EmbeddingStore:
    """Factory for the configured storage strategy."""
    if storage_mode == ODAG_STORAGE:
        return OdagStore()
    if storage_mode == LIST_STORAGE:
        return ListStore()
    raise ValueError(f"unknown storage mode {storage_mode!r}")
