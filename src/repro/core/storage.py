"""Inter-step embedding storage: per-pattern ODAGs or plain lists.

After each exploration step Arabesque must persist the surviving embeddings
(set ``F`` of Algorithm 1) so the next step can expand them.  Two strategies
are implemented behind one interface:

* :class:`OdagStore` — the paper's design: one
  :class:`~repro.core.odag.Odag` per canonical pattern, merged globally and
  broadcast (sections 5.2-5.3);
* :class:`ListStore` — explicit word lists, the "No ODAGs" configuration of
  Figure 10 (also what the real system falls back to when ODAGs compress
  poorly, e.g. the Instagram runs of Table 5);
* :class:`SpillListStore` — list semantics with out-of-core backing: past a
  configurable in-memory byte budget, embedding blocks are sorted and
  spilled to disk segments, then streamed back in global order for
  extraction — step state is no longer bounded by RAM (the ASYMP /
  G-thinker direction named in the ROADMAP).

All report wire sizes so the Figure 9 compression experiment can compare
them on identical embedding sets, and all support deterministic rank-range
partitioning so worker counts do not change what is explored.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import tempfile
from typing import Callable, Iterator

from .odag import Odag, PrefixFilter
from .pattern import Pattern

#: Storage-mode configuration values.
ODAG_STORAGE = "odag"
LIST_STORAGE = "list"
#: Per-step choice of the cheaper wire format (section 6.3: "in the first
#: exploration steps with very large and sparse graphs ... we can revert to
#: using embedding lists").
ADAPTIVE_STORAGE = "adaptive"
#: List-format storage that spills sorted embedding segments to disk past
#: an in-memory byte budget (see :class:`SpillListStore`).
SPILL_STORAGE = "spill"
#: Every valid ``ArabesqueConfig.storage`` value — the single source of
#: truth shared by config validation, the CLI's ``--storage`` choices, and
#: the session facade's ``.storage()`` option.
STORAGE_MODES = (ODAG_STORAGE, LIST_STORAGE, ADAPTIVE_STORAGE, SPILL_STORAGE)

#: Default in-memory byte allowance of a :class:`SpillListStore` before it
#: spills a segment (under the same wire model :meth:`ListStore.wire_size`
#: reports, so budgets and Figure 9 numbers are directly comparable).
DEFAULT_SPILL_BUDGET_NBYTES = 4 << 20

#: Rows per pickle record inside a spilled segment file — segments are
#: written and re-read in bounded chunks so replaying a segment never
#: materializes it whole.
_SEGMENT_CHUNK_ROWS = 2048


def _pattern_sort_key(pattern: Pattern) -> tuple:
    return (pattern.vertex_labels, pattern.edges)


class EmbeddingStore:
    """Interface shared by both storage strategies."""

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        """Store one embedding under its (canonical) pattern."""
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    @property
    def num_embeddings(self) -> int:
        """Embeddings stored (exact, not overapproximated)."""
        raise NotImplementedError

    def patterns(self) -> list[Pattern]:
        """Stored patterns in deterministic (sorted) order."""
        raise NotImplementedError

    def wire_size(self) -> int:
        """Bytes to ship this store under the wire model."""
        raise NotImplementedError

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Yield ``(pattern, words)`` of this worker's share of embeddings."""
        raise NotImplementedError


class OdagStore(EmbeddingStore):
    """Per-pattern ODAGs (the paper's default storage)."""

    def __init__(self) -> None:
        self._odags: dict[Pattern, Odag] = {}

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        odag = self._odags.get(pattern)
        if odag is None:
            odag = Odag(len(words))
            self._odags[pattern] = odag
        odag.add(words)

    def odag_for(self, pattern: Pattern) -> Odag:
        """The pattern's ODAG (KeyError if absent)."""
        return self._odags[pattern]

    def is_empty(self) -> bool:
        return not self._odags

    @property
    def num_embeddings(self) -> int:
        return sum(odag.num_added for odag in self._odags.values())

    @property
    def num_odags(self) -> int:
        """Distinct patterns — "as the number of patterns grows, so does the
        number of ODAGs" (section 6.3)."""
        return len(self._odags)

    def patterns(self) -> list[Pattern]:
        return sorted(self._odags, key=_pattern_sort_key)

    def wire_size(self) -> int:
        return sum(
            pattern.wire_size() + odag.wire_size()
            for pattern, odag in self._odags.items()
        )

    def total_paths(self) -> int:
        """Overapproximated path count across all patterns."""
        return sum(odag.total_paths() for odag in self._odags.values())

    def merge(self, other: "OdagStore") -> None:
        """Union another store (per-pattern ODAG merge)."""
        for pattern, odag in other._odags.items():
            mine = self._odags.get(pattern)
            if mine is None:
                fresh = Odag(odag.size)
                fresh.merge(odag)
                self._odags[pattern] = fresh
            else:
                mine.merge(odag)

    #: Rank blocks each worker receives per pattern ODAG.  Interleaving
    #: blocks round-robin (rather than one contiguous range per worker)
    #: spreads hub-heavy rank regions across workers — the paper's "round
    #: robin on large blocks of b embeddings" (section 5.3).
    blocks_per_worker: int = 32

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Block round-robin share of each pattern's ODAG (section 5.3).

        The overapproximated path space of every pattern ODAG is cut into
        equal rank blocks (per-element path counts are the cost estimate)
        and dealt round-robin.  The deal is rotated by the pattern's index
        so that workloads with many small per-pattern ODAGs (e.g. labeled
        cliques, where most patterns hold a handful of embeddings and form
        a single block) spread across workers instead of all landing on
        worker 0.  All workers see the same global structure, so the split
        needs no coordination.
        """
        for pattern_index, pattern in enumerate(self.patterns()):
            odag = self._odags[pattern]
            total = odag.total_paths()
            if total == 0:
                continue
            num_blocks = min(total, num_workers * self.blocks_per_worker)
            first = (worker_id + pattern_index) % num_workers
            for block in range(first, num_blocks, num_workers):
                start = total * block // num_blocks
                end = total * (block + 1) // num_blocks
                for words in odag.extract_range(start, end, prefix_filter):
                    yield pattern, words


class ListStore(EmbeddingStore):
    """Explicit embedding lists — the Figure 10 "No ODAGs" ablation."""

    def __init__(self) -> None:
        self._lists: dict[Pattern, list[tuple[int, ...]]] = {}

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        self._lists.setdefault(pattern, []).append(words)

    def is_empty(self) -> bool:
        return not self._lists

    @property
    def num_embeddings(self) -> int:
        return sum(len(words_list) for words_list in self._lists.values())

    def patterns(self) -> list[Pattern]:
        return sorted(self._lists, key=_pattern_sort_key)

    def wire_size(self) -> int:
        """Header + 4 bytes per word of every stored embedding."""
        total = 0
        for pattern, words_list in self._lists.items():
            total += pattern.wire_size() + 4
            for words in words_list:
                total += 4 + 4 * len(words)
        return total

    def merge(self, other: "ListStore") -> None:
        for pattern, words_list in other._lists.items():
            self._lists.setdefault(pattern, []).extend(words_list)

    def sort(self) -> None:
        """Make extraction order deterministic after merging."""
        for words_list in self._lists.values():
            words_list.sort()

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Contiguous per-pattern slices; stored embeddings are exact, so
        ``prefix_filter`` is not consulted (nothing spurious to discard)."""
        for pattern in self.patterns():
            words_list = self._lists[pattern]
            total = len(words_list)
            start = total * worker_id // num_workers
            end = total * (worker_id + 1) // num_workers
            for words in words_list[start:end]:
                yield pattern, words


def _spill_row_key(row: tuple[Pattern, tuple[int, ...]]) -> tuple:
    """Global sort key of one ``(pattern, words)`` row — patterns in
    :func:`_pattern_sort_key` order, words ascending within a pattern,
    exactly the order :meth:`ListStore.extract_partition` walks."""
    return (_pattern_sort_key(row[0]), row[1])


class SpillListStore(EmbeddingStore):
    """List-format storage with spill-to-disk past an in-memory byte budget.

    Semantically identical to :class:`ListStore` — exact embeddings, no
    spurious paths, contiguous per-pattern rank-range partitioning — but
    the resident set is bounded: once the in-memory tail exceeds
    ``budget_nbytes`` (measured under the list wire model, so budgets are
    comparable to :meth:`ListStore.wire_size`), the tail is sorted into
    ``(pattern, words)`` row order and appended to a segment file.
    Extraction streams a ``heapq.merge`` over the sorted segments plus the
    sorted tail, reproducing the *global* sorted order a merged-and-sorted
    ``ListStore`` would extract — which is what keeps spill runs
    byte-identical to list runs across backends and worker counts.

    ``directory`` is where segment files land; ``None`` creates (and owns)
    a private temp directory on first spill.  ``tag`` prefixes this store's
    segment filenames so many stores (per step × worker) can share one
    spill root.  The store is picklable — the process backend ships only
    segment *paths* and the in-memory tail back to the engine, not the
    spilled bytes.  :meth:`dispose` deletes the segment files once the
    store's rows have been merged elsewhere.
    """

    def __init__(
        self,
        directory: str | None = None,
        budget_nbytes: int = DEFAULT_SPILL_BUDGET_NBYTES,
        tag: str = "seg",
    ) -> None:
        if budget_nbytes < 1:
            raise ValueError("spill budget_nbytes must be >= 1")
        self._directory = directory
        self._owns_directory = False
        self._budget_nbytes = int(budget_nbytes)
        self._tag = tag
        self._mem: dict[Pattern, list[tuple[int, ...]]] = {}
        self._mem_nbytes = 0
        self._segments: list[str] = []
        self._counts: dict[Pattern, int] = {}
        self._wire_nbytes = 0
        #: High-water mark of the accounted in-memory tail — what the
        #: spill benchmark compares against ``ListStore.wire_size()``.
        self.peak_memory_nbytes = 0
        #: Segments written so far (observability + tests).
        self.spill_count = 0

    @property
    def budget_nbytes(self) -> int:
        return self._budget_nbytes

    def memory_nbytes(self) -> int:
        """Accounted bytes of the resident (unspilled) tail."""
        return self._mem_nbytes

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def add(self, pattern: Pattern, words: tuple[int, ...]) -> None:
        if pattern in self._counts:
            self._counts[pattern] += 1
        else:
            self._counts[pattern] = 1
            header = pattern.wire_size() + 4
            self._wire_nbytes += header
            self._mem_nbytes += header
        row_nbytes = 4 + 4 * len(words)
        self._wire_nbytes += row_nbytes
        self._mem_nbytes += row_nbytes
        self._mem.setdefault(pattern, []).append(words)
        if self._mem_nbytes > self.peak_memory_nbytes:
            self.peak_memory_nbytes = self._mem_nbytes
        if self._mem_nbytes > self._budget_nbytes:
            self._spill()

    def _ensure_directory(self) -> str:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="arabesque-spill-")
            self._owns_directory = True
        else:
            os.makedirs(self._directory, exist_ok=True)
        return self._directory

    def _spill(self) -> None:
        """Sort the in-memory tail into row order and append a segment."""
        if not self._mem:
            return
        rows = [
            (pattern, words)
            for pattern, words_list in self._mem.items()
            for words in words_list
        ]
        rows.sort(key=_spill_row_key)
        path = os.path.join(
            self._ensure_directory(),
            f"{self._tag}-{len(self._segments):05d}.seg",
        )
        with open(path, "wb") as handle:
            for start in range(0, len(rows), _SEGMENT_CHUNK_ROWS):
                pickle.dump(
                    rows[start : start + _SEGMENT_CHUNK_ROWS],
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
        self._segments.append(path)
        self.spill_count += 1
        self._mem.clear()
        self._mem_nbytes = 0

    def is_empty(self) -> bool:
        return not self._counts

    @property
    def num_embeddings(self) -> int:
        return sum(self._counts.values())

    def patterns(self) -> list[Pattern]:
        return sorted(self._counts, key=_pattern_sort_key)

    def wire_size(self) -> int:
        """Same wire model as :meth:`ListStore.wire_size`, tracked
        incrementally (content-only, so identical for identical rows no
        matter how they were segmented)."""
        return self._wire_nbytes

    def merge(self, other: "SpillListStore | ListStore") -> None:
        """Stream another list-format store's rows through :meth:`add`
        (spilling as the budget demands)."""
        if isinstance(other, SpillListStore):
            rows: Iterator[tuple[Pattern, tuple[int, ...]]] = other._iter_all()
        elif isinstance(other, ListStore):
            rows = (
                (pattern, words)
                for pattern, words_list in other._lists.items()
                for words in words_list
            )
        else:
            raise TypeError(
                f"cannot merge {type(other).__name__} into SpillListStore"
            )
        for pattern, words in rows:
            self.add(pattern, words)

    def sort(self) -> None:
        """No-op for interface parity with :class:`ListStore`: extraction
        always streams the globally sorted merge of segments + tail."""

    @staticmethod
    def _iter_segment(path: str) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        with open(path, "rb") as handle:
            while True:
                try:
                    chunk = pickle.load(handle)
                except EOFError:
                    return
                yield from chunk

    def _iter_all(self) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Every stored row in global sorted order, streamed."""
        iterators = [self._iter_segment(path) for path in self._segments]
        mem_rows = [
            (pattern, words)
            for pattern, words_list in self._mem.items()
            for words in words_list
        ]
        mem_rows.sort(key=_spill_row_key)
        iterators.append(iter(mem_rows))
        return heapq.merge(*iterators, key=_spill_row_key)

    def extract_partition(
        self,
        worker_id: int,
        num_workers: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[Pattern, tuple[int, ...]]]:
        """Contiguous per-pattern rank-range slices of the sorted stream —
        the exact slices :meth:`ListStore.extract_partition` yields for the
        same content.  Stored rows are exact, so ``prefix_filter`` is not
        consulted (nothing spurious to discard)."""
        current: Pattern | None = None
        index = start = end = 0
        for pattern, words in self._iter_all():
            if pattern != current:
                current = pattern
                total = self._counts[pattern]
                start = total * worker_id // num_workers
                end = total * (worker_id + 1) // num_workers
                index = 0
            if start <= index < end:
                yield pattern, words
            index += 1

    def dispose(self) -> None:
        """Delete this store's segment files (idempotent).  Call once the
        rows have been merged into another store; the store must not be
        extracted from afterwards."""
        for path in self._segments:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._segments.clear()
        if self._owns_directory and self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._owns_directory = False


def make_store(
    storage_mode: str,
    *,
    spill_dir: str | None = None,
    spill_budget_nbytes: int = DEFAULT_SPILL_BUDGET_NBYTES,
    spill_tag: str = "seg",
) -> EmbeddingStore:
    """Factory for the configured storage strategy."""
    if storage_mode == ODAG_STORAGE:
        return OdagStore()
    if storage_mode == LIST_STORAGE:
        return ListStore()
    if storage_mode == SPILL_STORAGE:
        return SpillListStore(
            directory=spill_dir,
            budget_nbytes=spill_budget_nbytes,
            tag=spill_tag,
        )
    raise ValueError(f"unknown storage mode {storage_mode!r}")
