"""ODAG — Overapproximating Directed Acyclic Graph (paper, section 5.2).

Graph mining generates trillions of intermediate embeddings; storing each
one separately is prohibitive.  An ODAG stores a set of same-size canonical
embeddings as ``k`` arrays — the i-th array holds every word (vertex or edge
id) appearing at position i in any stored embedding — plus edges between
consecutive arrays: word ``v`` at position i connects to word ``u`` at
position i+1 iff some stored embedding has ``v, u`` at those positions.

The structure is an *overapproximation*: following array edges can produce
spurious paths that were never stored (Figure 6's ``<3, 4, 2>``).  Callers
filter them during extraction by re-applying the same criteria Algorithm 1
used — the incremental canonicality check and the application filters — so
extraction recovers exactly the stored set (the paper's key observation:
anti-monotone filters make membership recomputable).

The i-th array also carries a **path count** per word — how many
(overapproximated) paths start from it — used for the cost-estimation load
balancing of section 5.3: workers take contiguous *rank ranges* of the path
space, recursively splitting array elements whose subtree straddles a
boundary.  :meth:`Odag.extract_range` implements exactly that recursive
split as a rank-windowed DFS.
"""

from __future__ import annotations

from typing import Callable, Iterator

PrefixFilter = Callable[[tuple[int, ...]], bool]
"""Extraction filter: receives each path prefix (including the newest word);
returning False prunes the whole subtree under that prefix."""


class Odag:
    """An ODAG for embeddings of a fixed size (word count).

    One instance stores one pattern's embeddings of one size — Arabesque
    keeps "one ODAG per pattern" (section 5.2) to reduce spurious paths.
    """

    __slots__ = ("size", "_levels", "_connections", "num_added", "_sorted", "_counts")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("ODAG size (embedding word count) must be >= 1")
        self.size = size
        #: set of words present at each position.
        self._levels: list[set[int]] = [set() for _ in range(size)]
        #: _connections[i]: word at position i -> set of successor words.
        self._connections: list[dict[int, set[int]]] = [
            {} for _ in range(size - 1)
        ]
        self.num_added = 0
        self._sorted: list[dict[int, tuple[int, ...]]] | None = None
        self._counts: list[dict[int, int]] | None = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add(self, words: tuple[int, ...]) -> None:
        """Store one embedding's words (must match this ODAG's size)."""
        if len(words) != self.size:
            raise ValueError(f"expected {self.size} words, got {len(words)}")
        for level, word in enumerate(words):
            self._levels[level].add(word)
        for level in range(self.size - 1):
            self._connections[level].setdefault(words[level], set()).add(
                words[level + 1]
            )
        self.num_added += 1
        self._invalidate()

    def merge(self, other: "Odag") -> None:
        """Union another ODAG of the same size into this one.

        This is the per-pattern global merge executed after every
        exploration step (workers' local ODAGs -> one global ODAG).
        """
        if other.size != self.size:
            raise ValueError("cannot merge ODAGs of different sizes")
        for level in range(self.size):
            self._levels[level] |= other._levels[level]
        for level in range(self.size - 1):
            mine = self._connections[level]
            for word, successors in other._connections[level].items():
                if word in mine:
                    mine[word] |= successors
                else:
                    mine[word] = set(successors)
        self.num_added += other.num_added
        self._invalidate()

    # -- map-reduce merge protocol (engine simulates the paper's
    #    per-array-entry shuffle with these) -----------------------------
    def entries(self) -> Iterator[tuple[int, int, frozenset[int]]]:
        """Yield ``(level, word, successors)`` for every array entry.

        Level-(size-1) words are emitted with an empty successor set so the
        receiving side reconstructs the last array too.
        """
        for level in range(self.size - 1):
            for word, successors in self._connections[level].items():
                yield level, word, frozenset(successors)
        for word in self._levels[self.size - 1]:
            yield self.size - 1, word, frozenset()

    def merge_entry(self, level: int, word: int, successors: frozenset[int]) -> None:
        """Fold one shuffled array entry into this ODAG."""
        self._levels[level].add(word)
        if successors:
            self._levels[level + 1] |= successors
            self._connections[level].setdefault(word, set()).update(successors)
        self._invalidate()

    def _invalidate(self) -> None:
        self._sorted = None
        self._counts = None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self._levels[0]

    def wire_size(self) -> int:
        """Serialized size under the wire model of :mod:`repro.bsp.messages`.

        Each array: a 4-byte length header plus, per entry, the 4-byte word
        and a header plus 4 bytes per outgoing edge.  This is what makes an
        ODAG "more compact than storing the full set of embeddings": edges
        between k arrays are bounded by O(k * N^2) regardless of how many
        of the up-to-N^k embeddings are stored.
        """
        total = 4 + 4 * len(self._levels[self.size - 1])
        for level in range(self.size - 1):
            total += 4
            for successors in self._connections[level].values():
                total += 4 + 4 + 4 * len(successors)
        return total

    def level_sizes(self) -> tuple[int, ...]:
        """Number of distinct words per array (diagnostics)."""
        return tuple(len(level) for level in self._levels)

    # ------------------------------------------------------------------
    # Path counting (section 5.3 cost estimation)
    # ------------------------------------------------------------------
    def _ensure_index(self) -> None:
        if self._sorted is not None and self._counts is not None:
            return
        sorted_levels: list[dict[int, tuple[int, ...]]] = []
        for level in range(self.size - 1):
            sorted_levels.append(
                {
                    word: tuple(sorted(successors))
                    for word, successors in self._connections[level].items()
                }
            )
        self._sorted = sorted_levels
        counts: list[dict[int, int]] = [dict() for _ in range(self.size)]
        for word in self._levels[self.size - 1]:
            counts[self.size - 1][word] = 1
        for level in range(self.size - 2, -1, -1):
            for word, successors in self._connections[level].items():
                counts[level][word] = sum(
                    counts[level + 1].get(u, 0) for u in successors
                )
        self._counts = counts

    def total_paths(self) -> int:
        """Number of overapproximated paths (>= stored embeddings)."""
        self._ensure_index()
        assert self._counts is not None
        return sum(self._counts[0].get(w, 0) for w in self._levels[0])

    def path_count(self, level: int, word: int) -> int:
        """Paths reaching the end from ``word`` at ``level`` (cost estimate)."""
        self._ensure_index()
        assert self._counts is not None
        return self._counts[level].get(word, 0)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract(self, prefix_filter: PrefixFilter | None = None) -> Iterator[tuple[int, ...]]:
        """All paths passing ``prefix_filter``, in rank order."""
        yield from self.extract_range(0, self.total_paths(), prefix_filter)

    def extract_range(
        self,
        start_rank: int,
        end_rank: int,
        prefix_filter: PrefixFilter | None = None,
    ) -> Iterator[tuple[int, ...]]:
        """Paths with rank in ``[start_rank, end_rank)`` passing the filter.

        Ranks index the *overapproximated* path space in the deterministic
        order induced by sorted arrays, so disjoint rank ranges across
        workers partition the work without coordination — the paper's
        block/round-robin scheme realized as exact range splitting.
        """
        self._ensure_index()
        assert self._sorted is not None and self._counts is not None
        if start_rank >= end_rank or self.is_empty():
            return
        sorted_first = sorted(self._levels[0])
        counts = self._counts
        sorted_conn = self._sorted
        size = self.size

        def walk(
            level: int, prefix: tuple[int, ...], base: int, candidates
        ) -> Iterator[tuple[int, ...]]:
            for word in candidates:
                subtree = counts[level].get(word, 0)
                if subtree == 0:
                    continue
                if base + subtree <= start_rank:
                    base += subtree
                    continue
                if base >= end_rank:
                    return
                # Paths repeating a word are always spurious (an embedding
                # never contains the same vertex/edge twice); the candidate
                # generator never proposes them, so the canonicality check
                # does not guard against them — extraction must.
                if word in prefix:
                    base += subtree
                    continue
                extended = prefix + (word,)
                if prefix_filter is None or prefix_filter(extended):
                    if level == size - 1:
                        yield extended
                    else:
                        yield from walk(
                            level + 1, extended, base, sorted_conn[level][word]
                        )
                base += subtree

        yield from walk(0, (), 0, sorted_first)

    def __repr__(self) -> str:
        return (
            f"Odag(size={self.size}, added={self.num_added}, "
            f"levels={self.level_sizes()})"
        )
