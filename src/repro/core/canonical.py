"""Embedding canonicality — Arabesque's coordination-free dedup (section 5.1).

Multiple workers can reach automorphic copies of the same embedding through
different exploration paths; since all user functions are automorphism
invariant, only one copy — the *canonical* one — must survive.  The check
runs on a single embedding with no coordination, in linear time
(Algorithm 2), and satisfies (proofs in the paper's appendix):

* **uniqueness** — exactly one canonical embedding per automorphism class;
* **extendibility** — the canonical automorphism of any one-word extension
  of a canonical embedding is itself an extension of a canonical embedding.

Definition 1 (vertex mode): ``<v1..vn>`` is canonical iff

* P1: ``v1`` is the smallest id in the embedding,
* P2: every later vertex neighbors an earlier one (connectivity),
* P3: after a vertex's first neighbor position, no earlier-placed vertex
  has a larger id than it.

The incremental check assumes the parent is canonical and verifies only the
new word.  One deliberate deviation from the paper's Algorithm 2: when the
extension has *no* neighbor in the parent we return False (enforcing P2)
instead of True — Algorithm 2 assumes candidates are incident by
construction, but ODAG extraction feeds this check arbitrary overapproximated
paths, so connectivity must be enforced here.

The edge-based case is analogous with "neighbor" meaning "shares an
endpoint" and words being edge ids.
"""

from __future__ import annotations

from ..graph import LabeledGraph
from .embedding import EDGE_EXPLORATION, VERTEX_EXPLORATION


# ----------------------------------------------------------------------
# Vertex-based exploration
# ----------------------------------------------------------------------
def is_canonical_vertex_extension(
    graph: LabeledGraph, parent_words: tuple[int, ...], v: int
) -> bool:
    """Algorithm 2: is ``parent_words + (v,)`` canonical?

    ``parent_words`` must already be canonical (the engine guarantees this
    by never extending non-canonical embeddings).
    """
    if not parent_words:
        return True
    if parent_words[0] > v:
        return False
    neighbor_bits = graph.neighbor_bits(v)
    found_neighbor = False
    for vi in parent_words:
        if not found_neighbor:
            if (neighbor_bits >> vi) & 1:
                found_neighbor = True
        elif vi > v:
            return False
    return found_neighbor


def is_canonical_vertex_words(graph: LabeledGraph, words: tuple[int, ...]) -> bool:
    """From-scratch check: every prefix extension must pass Algorithm 2."""
    for size in range(1, len(words)):
        if not is_canonical_vertex_extension(graph, words[:size], words[size]):
            return False
    return True


def canonicalize_vertex_set(
    graph: LabeledGraph, vertex_ids
) -> tuple[int, ...]:
    """The unique canonical word order of a connected vertex set.

    Constructive form of the paper's Theorem 3: start from the smallest id,
    then repeatedly append the smallest-id unvisited vertex adjacent to the
    visited prefix.  Raises ValueError on a disconnected set, for which no
    canonical embedding exists.
    """
    members = set(vertex_ids)
    if not members:
        return ()
    words = [min(members)]
    visited = {words[0]}
    while len(words) < len(members):
        best: int | None = None
        for v in words:
            for u in graph.neighbors(v):
                if u in members and u not in visited and (best is None or u < best):
                    best = u
        if best is None:
            raise ValueError("vertex set is not connected")
        words.append(best)
        visited.add(best)
    return tuple(words)


# ----------------------------------------------------------------------
# Edge-based exploration
# ----------------------------------------------------------------------
def _edges_share_endpoint(graph: LabeledGraph, e1: int, e2: int) -> bool:
    u1, v1 = graph.edge_endpoints(e1)
    u2, v2 = graph.edge_endpoints(e2)
    return u1 == u2 or u1 == v2 or v1 == u2 or v1 == v2


def is_canonical_edge_extension(
    graph: LabeledGraph, parent_words: tuple[int, ...], eid: int
) -> bool:
    """The edge-based analogue of Algorithm 2 over edge ids."""
    if not parent_words:
        return True
    if parent_words[0] > eid:
        return False
    u, v = graph.edge_endpoints(eid)
    found_neighbor = False
    for ei in parent_words:
        if not found_neighbor:
            a, b = graph.edge_endpoints(ei)
            if a == u or a == v or b == u or b == v:
                found_neighbor = True
        elif ei > eid:
            return False
    return found_neighbor


def is_canonical_edge_words(graph: LabeledGraph, words: tuple[int, ...]) -> bool:
    """From-scratch edge-mode check via prefix extensions."""
    for size in range(1, len(words)):
        if not is_canonical_edge_extension(graph, words[:size], words[size]):
            return False
    return True


def canonicalize_edge_set(graph: LabeledGraph, edge_ids) -> tuple[int, ...]:
    """The unique canonical word order of a connected edge set.

    Start from the smallest edge id, then repeatedly append the smallest
    unvisited edge sharing an endpoint with the visited prefix.
    """
    members = set(edge_ids)
    if not members:
        return ()
    words = [min(members)]
    visited = {words[0]}
    # Track the vertex span of the prefix for O(deg) adjacency tests.
    span: set[int] = set(graph.edge_endpoints(words[0]))
    while len(words) < len(members):
        best: int | None = None
        for eid in members:
            if eid in visited:
                continue
            u, v = graph.edge_endpoints(eid)
            if (u in span or v in span) and (best is None or eid < best):
                best = eid
        if best is None:
            raise ValueError("edge set is not connected")
        words.append(best)
        visited.add(best)
        span.update(graph.edge_endpoints(best))
    return tuple(words)


# ----------------------------------------------------------------------
# Mode dispatch used by the engine and storages
# ----------------------------------------------------------------------
def extension_checker(mode: str):
    """The incremental canonicality check for an exploration mode."""
    if mode == VERTEX_EXPLORATION:
        return is_canonical_vertex_extension
    if mode == EDGE_EXPLORATION:
        return is_canonical_edge_extension
    raise ValueError(f"unknown exploration mode {mode!r}")


def full_checker(mode: str):
    """The from-scratch canonicality check for an exploration mode."""
    if mode == VERTEX_EXPLORATION:
        return is_canonical_vertex_words
    if mode == EDGE_EXPLORATION:
        return is_canonical_edge_words
    raise ValueError(f"unknown exploration mode {mode!r}")


def canonicalizer(mode: str):
    """The word-set canonicalizer for an exploration mode."""
    if mode == VERTEX_EXPLORATION:
        return canonicalize_vertex_set
    if mode == EDGE_EXPLORATION:
        return canonicalize_edge_set
    raise ValueError(f"unknown exploration mode {mode!r}")
