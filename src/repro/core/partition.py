"""Load-balancing analysis for the cost-estimated partitioning (section 5.3).

The partitioning itself lives in :meth:`repro.core.odag.Odag.extract_range`
(rank-range splits over the overapproximated path space, using per-element
path counts as cost estimates) and
:meth:`repro.core.storage.OdagStore.extract_partition`.  This module
provides the measurement side: given a store and a worker count, how even is
the split actually?  Used by the partitioning ablation bench and the
scalability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from .odag import PrefixFilter
from .storage import EmbeddingStore


@dataclass(frozen=True)
class PartitionReport:
    """Per-worker shares of one store under a given worker count."""

    num_workers: int
    #: Embeddings each worker would extract (after spurious filtering).
    shares: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.shares)

    @property
    def max_share(self) -> int:
        return max(self.shares, default=0)

    def imbalance(self) -> float:
        """max/mean share; 1.0 means perfectly even."""
        if not self.shares or self.total == 0:
            return 1.0
        return self.max_share / (self.total / len(self.shares))


def measure_partition(
    store: EmbeddingStore,
    num_workers: int,
    prefix_filter: PrefixFilter | None = None,
) -> PartitionReport:
    """Extract every worker's share and report the balance.

    Also validates the partition invariant: every stored embedding is
    extracted by exactly one worker — the shares must sum to what a single
    worker extracting everything would see (the same prefix filter applied,
    so spurious-path discards cancel out).  A store whose partitioning
    drops or duplicates embeddings raises ``ValueError``.
    """
    shares = []
    for worker_id in range(num_workers):
        count = sum(
            1 for _ in store.extract_partition(worker_id, num_workers, prefix_filter)
        )
        shares.append(count)
    whole = sum(1 for _ in store.extract_partition(0, 1, prefix_filter))
    total = sum(shares)
    if total != whole:
        raise ValueError(
            f"partition invariant violated: {num_workers} workers extract "
            f"{total} embeddings but the store holds {whole} — the split "
            "drops or duplicates embeddings"
        )
    return PartitionReport(num_workers=num_workers, shares=tuple(shares))


def block_round_robin_assignment(total: int, num_workers: int, block: int) -> list[int]:
    """The paper's block round-robin scheme: owner of each embedding index.

    "Workers do round robin on large blocks of b embeddings" — provided for
    the partitioning ablation, which compares block round-robin against the
    cost-estimated rank-range split.
    """
    if block < 1:
        raise ValueError("block size must be >= 1")
    return [(index // block) % num_workers for index in range(total)]
