"""Stdlib-only asyncio HTTP front door for the mining service.

One :class:`QueryService` owns a :class:`~repro.service.registry.MinerRegistry`
(warm sessions + whole-result cache), a bounded worker pool, and the
admission/budget policy; :func:`QueryService.serve` exposes it over a
hand-rolled HTTP/1.1 loop on ``asyncio.start_server`` — no third-party
web framework, matching the repo's stdlib-only rule.

Endpoints (all JSON; every response carries ``Connection: close``):

* ``GET  /health`` — liveness probe.
* ``GET  /stats`` — server counters + registry/cache/pool snapshots.
* ``GET  /graphs`` — the loaded-graph pool with per-graph session stats.
* ``POST /graphs`` — load a built-in dataset:
  ``{"name": ..., "dataset": ..., "scale": ...}``.
* ``DELETE /graphs/<name>`` — evict a graph (and its cached results).
* ``POST /motifs | /match | /fsm | /cliques`` — run one query against a
  loaded graph (``{"graph": ..., ...params}``, see
  :mod:`repro.service.queries`); ``POST /query`` is the same with
  ``"workload"`` in the body.

**Admission control** keeps one pathological query from starving the
pool: at most ``max_concurrent`` queries run (a thread pool the asyncio
loop dispatches into), at most ``max_pending`` more may wait, and
everything beyond that is rejected immediately with a 429.  Every
admitted query runs with the server's default deadline/embedding budgets
unless the request sets its own; a tripped budget surfaces as **422**
with the structured trip (kind/limit/spent) — a client error, because
the fix is narrowing the query or raising its budget.

**Streaming**: any query with ``"stream": true`` answers as NDJSON —
one meta row, then one row per result item — written incrementally with
backpressure (``await drain()`` per chunk), riding the same result-cache
payloads as unary responses.

**Disconnect cancellation**: every query arms a
:class:`~repro.core.budget.CancelFlag` watched by a per-connection EOF
probe; a client that hangs up mid-run stops the engine at its next
mid-step probe (:class:`~repro.core.budget.RunCancelled`) instead of
finishing work nobody will read — counted in
``stats.cancelled_disconnects``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import unquote, urlsplit

from ..core.budget import BudgetExceeded, CancelFlag, RunCancelled
from .queries import WORKLOADS, parse_request, run_query, stream_rows
from .registry import MinerRegistry, ServiceError, UnknownGraphError

#: Largest request body the server will read (requests are small JSON).
MAX_BODY_BYTES = 1 << 20
#: Largest request head (request line + headers).
MAX_HEAD_BYTES = 1 << 16

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class ServiceStats:
    """Server-level counters (the ``/stats`` endpoint's top block)."""

    #: HTTP requests accepted (any route, any outcome).
    requests: int = 0
    #: Queries that ran (or were served from cache) successfully.
    queries_ok: int = 0
    #: Queries rejected at admission (pool + wait queue full).
    rejected_busy: int = 0
    #: Queries stopped by a tripped deadline/embedding budget.
    budget_rejections: int = 0
    #: Requests answered with a 4xx other than busy/budget.
    client_errors: int = 0
    #: Requests answered with a 500.
    server_errors: int = 0
    #: NDJSON rows written by streaming responses.
    streamed_rows: int = 0
    #: Runs aborted because their client disconnected mid-query.
    cancelled_disconnects: int = 0


class QueryService:
    """The service's policy + dispatch layer (transport-independent).

    ``max_concurrent`` bounds simultaneously *running* queries (the
    worker-pool width); ``max_pending`` bounds queries waiting for a
    slot; ``default_deadline_seconds``/``default_max_embeddings`` arm
    every admitted query that does not bring its own budgets.

    ``checkpoint_root``, when set, snapshots every cache-miss query's
    engine run into a unique directory under it (one per admitted run,
    ``query-<n>``) — an operator can ``repro resume`` a run that died
    with the server (see docs/checkpoint.md).
    """

    def __init__(
        self,
        registry: MinerRegistry | None = None,
        *,
        max_concurrent: int = 4,
        max_pending: int = 16,
        default_deadline_seconds: float | None = None,
        default_max_embeddings: int | None = None,
        checkpoint_root: str | None = None,
    ) -> None:
        if max_concurrent < 1:
            raise ServiceError(
                f"max_concurrent must be >= 1 (got {max_concurrent!r})"
            )
        if max_pending < 0:
            raise ServiceError(
                f"max_pending must be >= 0 (got {max_pending!r})"
            )
        self.registry = registry if registry is not None else MinerRegistry()
        self.max_concurrent = max_concurrent
        self.max_pending = max_pending
        self.default_deadline_seconds = default_deadline_seconds
        self.default_max_embeddings = default_max_embeddings
        self.checkpoint_root = checkpoint_root
        #: Monotonic per-run sequence for unique checkpoint directories
        #: (only the single-threaded event loop bumps it).
        self._run_seq = 0
        self.stats = ServiceStats()
        #: Queries admitted and not yet finished (running + waiting).
        #: Only the (single-threaded) event loop touches it, so the
        #: check-then-increment at admission is race-free by construction.
        self._in_flight = 0
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-query"
        )

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def _apply_default_budgets(self, spec):
        overrides = {}
        if spec.deadline_seconds is None and self.default_deadline_seconds:
            overrides["deadline_seconds"] = self.default_deadline_seconds
        if spec.max_embeddings is None and self.default_max_embeddings:
            overrides["max_embeddings"] = self.default_max_embeddings
        return dataclasses.replace(spec, **overrides) if overrides else spec

    async def execute(
        self,
        workload: str,
        body: dict,
        *,
        cancel: CancelFlag | None = None,
    ) -> dict[str, Any]:
        """Parse, admit, and run one query; return the response envelope.

        ``cancel``, when given, is armed on the engine run — the HTTP
        transport sets it from a disconnect watcher so an abandoned
        query stops burning the pool at its next mid-step probe.

        Raises the typed errors the transport maps to status codes:
        :class:`ServiceError` (400), :class:`UnknownGraphError` (404),
        :class:`~repro.core.budget.BudgetExceeded` (422),
        :class:`~repro.core.budget.RunCancelled` (no response — the
        client is gone), and :class:`_Busy` (429).
        """
        spec = parse_request(workload, body)
        graph_name = body.get("graph")
        if not isinstance(graph_name, str) or not graph_name:
            raise ServiceError(
                'query requests need a "graph": the name of a loaded graph '
                "(GET /graphs lists them)"
            )
        spec = self._apply_default_budgets(spec)
        if self._in_flight >= self.max_concurrent + self.max_pending:
            self.stats.rejected_busy += 1
            raise _Busy(
                f"server busy: {self.max_concurrent} queries running and "
                f"{self.max_pending} waiting — retry later"
            )
        checkpoint_dir = None
        if self.checkpoint_root is not None:
            self._run_seq += 1
            checkpoint_dir = os.path.join(
                self.checkpoint_root, f"query-{self._run_seq:06d}"
            )
        self._in_flight += 1
        started = time.perf_counter()
        try:
            loop = asyncio.get_running_loop()
            payload, hit = await loop.run_in_executor(
                self._executor,
                lambda: self.registry.cached(
                    graph_name,
                    spec.query_signature(),
                    spec.config_signature(),
                    lambda miner: run_query(
                        miner,
                        spec,
                        cancel=cancel,
                        checkpoint_dir=checkpoint_dir,
                    ),
                ),
            )
        finally:
            self._in_flight -= 1
        self.stats.queries_ok += 1
        return {
            "graph": graph_name,
            "cache": {"hit": hit},
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "stream": spec.stream,
            "result": payload,
        }

    # ------------------------------------------------------------------
    # Registry path
    # ------------------------------------------------------------------
    async def load_graph(self, body: dict) -> dict[str, Any]:
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        unknown = set(body) - {"name", "dataset", "scale"}
        if unknown:
            raise ServiceError(
                f"unknown keys {sorted(unknown)} — POST /graphs takes "
                '"name", optional "dataset" (defaults to name), and '
                'optional "scale"'
            )
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError('"name" must be a non-empty string')
        dataset = body.get("dataset")
        if dataset is not None and not isinstance(dataset, str):
            raise ServiceError(f'"dataset" must be a string (got {dataset!r})')
        scale = body.get("scale")
        if scale is not None and (
            isinstance(scale, bool)
            or not isinstance(scale, (int, float))
            or not scale > 0
        ):
            raise ServiceError(f'"scale" must be a positive number (got {scale!r})')
        loop = asyncio.get_running_loop()
        # Dataset generation can take a while — keep the loop responsive.
        await loop.run_in_executor(
            self._executor,
            lambda: self.registry.load_dataset(
                name, dataset=dataset, scale=scale
            ),
        )
        return {"loaded": name, **self.registry.describe()["graphs"][name]}

    def stats_payload(self) -> dict[str, Any]:
        return {
            "server": vars(self.stats),
            "admission": {
                "in_flight": self._in_flight,
                "max_concurrent": self.max_concurrent,
                "max_pending": self.max_pending,
                "default_deadline_seconds": self.default_deadline_seconds,
                "default_max_embeddings": self.default_max_embeddings,
            },
            "registry": vars(self.registry.cache_info()),
            **self.registry.describe(),
        }

    # ------------------------------------------------------------------
    # HTTP transport
    # ------------------------------------------------------------------
    async def serve(self, host: str = "127.0.0.1", port: int = 8080):
        """Bind and return an ``asyncio.Server`` handling this service."""
        return await asyncio.start_server(self._handle_connection, host, port)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
            except _HttpError as exc:
                await _send_json(writer, exc.status, {"error": exc.payload})
                return
            self.stats.requests += 1
            try:
                await self._dispatch(method, path, body, reader, writer)
            except RunCancelled:
                # The client is gone — nobody to answer; the run stopped
                # at its next probe instead of burning a pool slot.
                self.stats.cancelled_disconnects += 1
            except _HttpError as exc:
                self.stats.client_errors += 1
                await _send_json(writer, exc.status, {"error": exc.payload})
            except _Busy as exc:
                await _send_json(
                    writer, 429, {"error": {"type": "busy", "message": str(exc)}}
                )
            except BudgetExceeded as exc:
                self.stats.budget_rejections += 1
                await _send_json(
                    writer,
                    422,
                    {
                        "error": {
                            "type": "budget_exceeded",
                            "kind": exc.kind,
                            "limit": exc.limit,
                            "spent": exc.spent,
                            "message": str(exc),
                        }
                    },
                )
            except UnknownGraphError as exc:
                self.stats.client_errors += 1
                await _send_json(
                    writer,
                    404,
                    {"error": {"type": "unknown_graph", "message": str(exc)}},
                )
            except ValueError as exc:
                # ServiceError, SessionError, config validation — all the
                # loud "you asked wrong" family.
                self.stats.client_errors += 1
                await _send_json(
                    writer,
                    400,
                    {"error": {"type": "bad_request", "message": str(exc)}},
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                self.stats.server_errors += 1
                await _send_json(
                    writer,
                    500,
                    {
                        "error": {
                            "type": "internal",
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    },
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: dict | None,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if method == "GET" and path == "/health":
            await _send_json(writer, 200, {"status": "ok"})
            return
        if method == "GET" and path == "/stats":
            await _send_json(writer, 200, self.stats_payload())
            return
        if method == "GET" and path == "/graphs":
            await _send_json(writer, 200, self.registry.describe())
            return
        if method == "POST" and path == "/graphs":
            await _send_json(writer, 200, await self.load_graph(body or {}))
            return
        if method == "DELETE" and path.startswith("/graphs/"):
            name = unquote(path[len("/graphs/"):])
            self.registry.evict(name)
            return await _send_json(writer, 200, {"evicted": name})
        if method == "POST" and (
            path == "/query" or path.lstrip("/") in WORKLOADS
        ):
            body = body or {}
            if path == "/query":
                workload = body.pop("workload", None)
                if not isinstance(workload, str):
                    raise ServiceError(
                        'POST /query needs a "workload" key — one of '
                        f"{', '.join(WORKLOADS)} (or POST /<workload> "
                        "directly)"
                    )
            else:
                workload = path.lstrip("/")
            cancel = CancelFlag()
            watcher = asyncio.ensure_future(
                _watch_disconnect(reader, cancel)
            )
            try:
                envelope = await self.execute(workload, body, cancel=cancel)
            finally:
                watcher.cancel()
            if envelope["stream"]:
                await self._send_ndjson(writer, envelope)
            else:
                await _send_json(writer, 200, envelope)
            return
        raise _noroute(method, path)

    async def _send_ndjson(
        self, writer: asyncio.StreamWriter, envelope: dict[str, Any]
    ) -> None:
        """Incremental NDJSON response: meta row, then one row per item,
        drained per row so a slow client applies backpressure instead of
        buffering the whole result set."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        rows = stream_rows(envelope["result"])
        meta = next(rows)
        meta["meta"].update(
            graph=envelope["graph"],
            cache=envelope["cache"],
            elapsed_ms=envelope["elapsed_ms"],
        )
        writer.write(_json_line(meta))
        for row in rows:
            writer.write(_json_line(row))
            self.stats.streamed_rows += 1
            await writer.drain()
        await writer.drain()


async def _watch_disconnect(
    reader: asyncio.StreamReader, cancel: CancelFlag
) -> None:
    """Set ``cancel`` when the client hangs up mid-query.

    After the request is fully read, a well-behaved client sends nothing
    more (every response carries ``Connection: close``), so the next
    read completing means EOF — the client disconnected.  The engine's
    mid-step probes then raise :class:`RunCancelled` within ~512
    embeddings instead of finishing a run nobody will read.
    """
    try:
        data = await reader.read(1)
    except (ConnectionError, OSError):
        data = b""
    if not data:
        cancel.set()


class _Busy(RuntimeError):
    """Admission control rejected the query (maps to 429)."""


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.payload = {"type": "http", "message": message}
        super().__init__(message)


def _noroute(method: str, path: str) -> _HttpError:
    return _HttpError(
        404,
        f"no route for {method} {path} — endpoints: GET /health, "
        "GET /stats, GET /graphs, POST /graphs, DELETE /graphs/<name>, "
        f"POST /query, POST /{'|/'.join(WORKLOADS)}",
    )


def _json_line(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict | None]:
    """Parse one HTTP/1.1 request; return (method, path, JSON body)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:  # pragma: no cover - huge head
        raise _HttpError(413, "request head too large") from exc
    except asyncio.IncompleteReadError as exc:
        raise _HttpError(400, "truncated request") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    method = method.upper()
    if method not in ("GET", "POST", "DELETE"):
        raise _HttpError(405, f"method {method} not supported")
    path = urlsplit(target).path or "/"
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise _HttpError(400, f"bad Content-Length {length_text!r}") from exc
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body: dict | None = None
    if length:
        try:
            raw = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise _HttpError(400, "truncated request body") from exc
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
    return method, path, body


async def _send_json(
    writer: asyncio.StreamWriter, status: int, obj: Any
) -> None:
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1") + payload
    )
    await writer.drain()


# ----------------------------------------------------------------------
# Hosting helpers
# ----------------------------------------------------------------------
@dataclass
class ServerHandle:
    """A service bound in a background thread (tests, examples, benches).

    ``address`` is the bound ``(host, port)``; :meth:`stop` shuts the
    server, loop, worker pool, and thread down cleanly.
    """

    service: QueryService
    address: tuple[str, int]
    _loop: asyncio.AbstractEventLoop = field(repr=False)
    _stop_event: asyncio.Event = field(repr=False)
    _thread: Any = field(repr=False)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)
        self.service.close()


def start_in_background(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Run ``service`` on a daemon thread; return once the port is bound.

    ``port=0`` picks a free ephemeral port — the in-process harness the
    end-to-end tests, the quickstart example, and the service benchmark
    all share.
    """
    import concurrent.futures
    import threading

    started: "concurrent.futures.Future[tuple]" = concurrent.futures.Future()

    async def _main() -> None:
        stop_event = asyncio.Event()
        try:
            server = await service.serve(host, port)
        except OSError as exc:
            started.set_exception(exc)
            return
        address = server.sockets[0].getsockname()[:2]
        started.set_result((address, asyncio.get_running_loop(), stop_event))
        async with server:
            await stop_event.wait()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()),
        name="repro-service",
        daemon=True,
    )
    thread.start()
    address, loop, stop_event = started.result(timeout=30)
    return ServerHandle(
        service=service,
        address=address,
        _loop=loop,
        _stop_event=stop_event,
        _thread=thread,
    )


async def run_forever(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Serve until cancelled (the CLI ``serve`` subcommand's main loop)."""
    server = await service.serve(host, port)
    address = server.sockets[0].getsockname()
    print(f"repro service listening on http://{address[0]}:{address[1]}")
    print(f"graphs loaded: {', '.join(service.registry.names()) or 'none'}")
    async with server:
        await server.serve_forever()


__all__ = [
    "MAX_BODY_BYTES",
    "QueryService",
    "ServerHandle",
    "ServiceStats",
    "run_forever",
    "start_in_background",
]
