"""Pooled mining sessions: one warm :class:`~repro.session.Miner` per graph.

The registry is the serving story's stateful core.  Loading a graph under
a name builds (and keeps) a ``Miner`` for it, so every compiled plan,
plan DAG, step-0 universe, and stripped variant stays warm across
requests — the whole point of the session caches built in earlier PRs.
On top of the miner pool sits a **whole-result cache** keyed by
``(graph name, query signature, config signature)``: loaded graphs are
immutable, so a cached result can never go stale and invalidation is
free; an entry lives until its graph is evicted or the byte-accounted
LRU cap pushes it out.  Each cached payload is deep-sized at insert
time (:func:`payload_nbytes`), so one query returning a million matches
is accounted as the megabytes it is, not as "one entry" — the failure
mode of the old count-based cap.  A single payload larger than the
whole budget is never cached (counted in ``result_oversize``).

Memory accounting rides :meth:`repro.graph.LabeledGraph.memory_nbytes`:
each entry records its graph's footprint at load time, and when a
``memory_limit_nbytes`` is set, loading a new graph evicts
least-recently-used entries (and their cached results) until the new
total fits.  A graph that cannot fit even alone is rejected loudly.

Everything here is thread-safe under one registry lock.  Result-cache
*lookups* and bookkeeping run under the lock; the miss-path ``compute``
callable runs **outside** it, so one slow query never blocks the pool —
the cost is that two racing identical queries may both compute (last
write wins, both correct), which beats serializing every request.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..graph import LabeledGraph
from ..session import Miner


class ServiceError(ValueError):
    """A service request was malformed or cannot be admitted."""


class UnknownGraphError(ServiceError):
    """A request named a graph the registry has not loaded."""


#: A result-cache key: (graph name, query signature, config signature).
ResultKey = tuple[str, str, str]

#: Default result-cache budget: plenty for thousands of typical payloads
#: while keeping a handful of huge match lists from hoarding the heap.
DEFAULT_RESULT_CACHE_NBYTES = 16 << 20


def payload_nbytes(obj: Any) -> int:
    """Deep ``sys.getsizeof`` of a JSON-able payload (dicts, lists,
    strings, numbers).  Shared objects (interned ints/strings) are
    counted once — matching what they actually cost the heap."""
    seen: set[int] = set()
    total = 0
    stack = [obj]
    while stack:
        item = stack.pop()
        if id(item) in seen:
            continue
        seen.add(id(item))
        total += sys.getsizeof(item)
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
    return total


@dataclass
class RegistryCacheInfo:
    """Counters for the registry's pools (mirrors ``Miner.cache_info``)."""

    #: Graphs loaded over the registry's lifetime.
    graphs_loaded: int = 0
    #: Graphs evicted (explicitly or by the memory limit).
    graphs_evicted: int = 0
    #: Queries answered straight from the whole-result cache.
    result_hits: int = 0
    #: Queries that had to run the engine.
    result_misses: int = 0
    #: Cached results dropped (LRU byte cap or graph eviction).
    result_evictions: int = 0
    #: Results never cached because one payload exceeds the whole budget.
    result_oversize: int = 0


@dataclass
class _Entry:
    """One pooled graph: its warm session plus accounting."""

    miner: Miner
    #: ``memory_nbytes()`` snapshot taken at load time (graphs are
    #: immutable, so it never changes).
    nbytes: int
    #: Requests served against this graph (any outcome).
    requests: int = 0
    #: Result keys cached for this graph, for eviction-time cleanup.
    result_keys: set[ResultKey] = field(default_factory=set)


class MinerRegistry:
    """Load/evict graphs by name; serve warm sessions and cached results.

    ``memory_limit_nbytes`` bounds the summed ``memory_nbytes()`` of the
    pooled graphs (``None`` = unbounded); ``result_cache_limit_nbytes``
    bounds the whole-result cache by **deep payload bytes**
    (:func:`payload_nbytes`) — 0 disables result caching entirely.
    """

    def __init__(
        self,
        *,
        memory_limit_nbytes: int | None = None,
        result_cache_limit_nbytes: int = DEFAULT_RESULT_CACHE_NBYTES,
    ) -> None:
        if memory_limit_nbytes is not None and memory_limit_nbytes < 1:
            raise ServiceError(
                "memory_limit_nbytes must be positive when given "
                f"(got {memory_limit_nbytes!r})"
            )
        if (
            not isinstance(result_cache_limit_nbytes, int)
            or isinstance(result_cache_limit_nbytes, bool)
            or result_cache_limit_nbytes < 0
        ):
            raise ServiceError(
                "result_cache_limit_nbytes must be an integer >= 0 "
                f"(got {result_cache_limit_nbytes!r})"
            )
        self.memory_limit_nbytes = memory_limit_nbytes
        self.result_cache_limit_nbytes = result_cache_limit_nbytes
        #: name -> entry, in least-recently-used-first order.
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: result key -> (payload, deep nbytes), least-recently-used-first.
        self._results: "OrderedDict[ResultKey, tuple[Any, int]]" = OrderedDict()
        #: Running sum of the cached payloads' deep sizes.
        self._results_nbytes = 0
        self._info = RegistryCacheInfo()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Graph pool
    # ------------------------------------------------------------------
    def load(self, name: str, graph: LabeledGraph) -> Miner:
        """Register ``graph`` under ``name`` and return its warm session.

        Re-loading an existing name is rejected loudly — graphs are
        immutable, so a silent swap would poison the result cache;
        :meth:`evict` first to replace one.
        """
        if not name or not isinstance(name, str):
            raise ServiceError(f"graph name must be a non-empty string (got {name!r})")
        miner = Miner(graph)  # validates the graph type loudly
        nbytes = graph.memory_nbytes()
        with self._lock:
            if name in self._entries:
                raise ServiceError(
                    f"graph {name!r} is already loaded — evict it first to "
                    "replace it (loaded graphs are immutable)"
                )
            limit = self.memory_limit_nbytes
            if limit is not None and nbytes > limit:
                raise ServiceError(
                    f"graph {name!r} needs {nbytes:,} bytes but the "
                    f"registry's memory limit is {limit:,} — raise "
                    "memory_limit_nbytes or load a smaller graph"
                )
            if limit is not None:
                while self._entries and self._total_nbytes() + nbytes > limit:
                    evicted, _ = self._entries.popitem(last=False)
                    self._drop_results_for(evicted)
                    self._info.graphs_evicted += 1
            self._entries[name] = _Entry(miner=miner, nbytes=nbytes)
            self._info.graphs_loaded += 1
            return miner

    def load_dataset(
        self, name: str, *, dataset: str | None = None, scale: float | None = None
    ) -> Miner:
        """Load a built-in dataset (``dataset`` defaults to ``name``)
        through :func:`repro.datasets.load` — unknown names fail loudly
        listing what exists."""
        from ..datasets import load as load_named_dataset

        return self.load(name, load_named_dataset(dataset or name, scale=scale))

    def get(self, name: str) -> Miner:
        """The warm session for ``name`` — loud error listing the loaded
        names when unknown (and marks the entry most recently used)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                loaded = ", ".join(sorted(self._entries)) or "none"
                raise UnknownGraphError(
                    f"no graph named {name!r} is loaded (loaded: {loaded}) — "
                    "load it via the registry (POST /graphs on the server)"
                )
            self._entries.move_to_end(name)
            entry.requests += 1
            return entry.miner

    def evict(self, name: str) -> None:
        """Drop a graph, its warm session, and its cached results."""
        with self._lock:
            if name not in self._entries:
                loaded = ", ".join(sorted(self._entries)) or "none"
                raise UnknownGraphError(
                    f"cannot evict {name!r}: not loaded (loaded: {loaded})"
                )
            del self._entries[name]
            self._drop_results_for(name)
            self._info.graphs_evicted += 1

    def names(self) -> tuple[str, ...]:
        """Loaded graph names, sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    def memory_nbytes(self) -> int:
        """Summed ``memory_nbytes()`` of every pooled graph."""
        with self._lock:
            return self._total_nbytes()

    def describe(self) -> dict[str, Any]:
        """JSON-able snapshot of the pool (the ``/graphs`` endpoint)."""
        with self._lock:
            return {
                "graphs": {
                    name: {
                        "vertices": entry.miner.graph.num_vertices,
                        "edges": entry.miner.graph.num_edges,
                        "labels": entry.miner.graph.num_vertex_labels,
                        "memory_nbytes": entry.nbytes,
                        "requests": entry.requests,
                        "cached_results": len(entry.result_keys),
                        "session": vars(entry.miner.cache_info()),
                    }
                    for name, entry in self._entries.items()
                },
                "memory_nbytes": self._total_nbytes(),
                "memory_limit_nbytes": self.memory_limit_nbytes,
                "result_cache": {
                    "entries": len(self._results),
                    "nbytes": self._results_nbytes,
                    "limit_nbytes": self.result_cache_limit_nbytes,
                },
            }

    # ------------------------------------------------------------------
    # Whole-result cache
    # ------------------------------------------------------------------
    def cached(
        self,
        graph_name: str,
        query_signature: str,
        config_signature: str,
        compute: Callable[[Miner], Any],
    ) -> tuple[Any, bool]:
        """Serve ``(payload, was_hit)`` for one query, computing on miss.

        The lookup, counters, and insert run under the registry lock;
        ``compute(miner)`` runs outside it (see module docstring).  The
        graph must already be loaded — unknown names raise through
        :meth:`get` before anything runs.
        """
        key: ResultKey = (graph_name, query_signature, config_signature)
        miner = self.get(graph_name)  # loud UnknownGraphError + LRU touch
        with self._lock:
            if key in self._results:
                self._results.move_to_end(key)
                self._info.result_hits += 1
                return self._results[key][0], True
            self._info.result_misses += 1
        payload = compute(miner)
        limit = self.result_cache_limit_nbytes
        if limit > 0:
            nbytes = payload_nbytes(payload)  # deep-size outside the lock
            with self._lock:
                entry = self._entries.get(graph_name)
                if nbytes > limit:
                    self._info.result_oversize += 1
                elif entry is not None:  # graph may have been evicted mid-run
                    old = self._results.pop(key, None)  # racing identical query
                    if old is not None:
                        self._results_nbytes -= old[1]
                    self._results[key] = (payload, nbytes)
                    self._results_nbytes += nbytes
                    entry.result_keys.add(key)
                    while self._results_nbytes > limit:
                        old_key, (_, old_nbytes) = self._results.popitem(last=False)
                        self._results_nbytes -= old_nbytes
                        self._info.result_evictions += 1
                        old_entry = self._entries.get(old_key[0])
                        if old_entry is not None:
                            old_entry.result_keys.discard(old_key)
        return payload, False

    def cache_info(self) -> RegistryCacheInfo:
        """A snapshot of the registry's counters."""
        with self._lock:
            return RegistryCacheInfo(**vars(self._info))

    def result_cache_nbytes(self) -> int:
        """Deep bytes currently held by the whole-result cache."""
        with self._lock:
            return self._results_nbytes

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _total_nbytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def _drop_results_for(self, name: str) -> None:
        dropped = [key for key in self._results if key[0] == name]
        for key in dropped:
            _, nbytes = self._results.pop(key)
            self._results_nbytes -= nbytes
        self._info.result_evictions += len(dropped)


__all__ = [
    "DEFAULT_RESULT_CACHE_NBYTES",
    "MinerRegistry",
    "RegistryCacheInfo",
    "ServiceError",
    "UnknownGraphError",
    "payload_nbytes",
]
