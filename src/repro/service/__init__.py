"""The query service: pooled warm miners behind a stdlib HTTP server.

Three layers, each usable on its own:

* :mod:`~repro.service.registry` — :class:`MinerRegistry` pools one warm
  :class:`~repro.session.Miner` per named graph (memory-accounted LRU
  eviction) plus a whole-result cache keyed by canonical query
  signatures.
* :mod:`~repro.service.queries` — :class:`QuerySpec` parses/validates
  JSON requests, derives the cache-key signatures, and runs specs
  through the session facade.
* :mod:`~repro.service.server` — :class:`QueryService` adds admission
  control (bounded pool, default budgets) and the asyncio HTTP/NDJSON
  transport; :func:`start_in_background` hosts it in-process for tests
  and examples.

See ``docs/service.md`` for the endpoint and semantics reference.
"""

from .queries import (
    WORKLOADS,
    QuerySpec,
    build_query,
    encode_result,
    parse_pattern,
    parse_request,
    run_query,
    stream_rows,
)
from .registry import (
    MinerRegistry,
    RegistryCacheInfo,
    ServiceError,
    UnknownGraphError,
)
from .server import (
    QueryService,
    ServerHandle,
    ServiceStats,
    run_forever,
    start_in_background,
)

__all__ = [
    "MinerRegistry",
    "QueryService",
    "QuerySpec",
    "RegistryCacheInfo",
    "ServerHandle",
    "ServiceError",
    "ServiceStats",
    "UnknownGraphError",
    "WORKLOADS",
    "build_query",
    "encode_result",
    "parse_pattern",
    "parse_request",
    "run_forever",
    "run_query",
    "start_in_background",
    "stream_rows",
]
