"""Typed query specs: JSON request -> canonical signature -> facade run.

One :class:`QuerySpec` is the service's unit of work — a parsed,
validated description of a mining query against one pooled graph.  It
splits cleanly into two halves:

* **semantic fields** (workload, its parameters, labeled/exhaustive
  semantics, the output cap) feed the **canonical signatures** the
  whole-result cache keys on.  Patterns are canonicalized before
  signing, so ``"triangle"`` and an equivalent explicit edge list are
  the *same* cache entry.  Execution-only knobs — workers, backend,
  storage, budgets — are deliberately **excluded**: the engine's results
  are byte-identical across all of them (the determinism property the
  test suite enforces), so including them would only fragment the cache.
* **execution fields** (workers/backend/storage, deadline and embedding
  budgets, streaming) steer *how* the run happens, chained onto the
  facade query verbatim.

Parsing is loud: unknown keys, wrong types, unknown shapes, or options a
workload cannot take all raise :class:`~repro.service.registry.ServiceError`
with the allowed spelling listed — the server maps those to 400s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..core.budget import CancelFlag
from ..core.pattern import Pattern
from ..plan.shapes import NAMED_SHAPES
from ..session import Miner
from ..session.query import Query
from ..session.results import MiningResult

from .registry import ServiceError

#: Workloads the service exposes (each is also a POST endpoint).
WORKLOADS = ("motifs", "match", "fsm", "cliques")

#: Request keys every workload accepts.
_COMMON_KEYS = {
    "graph",
    "workload",
    "labeled",
    "exhaustive",
    "workers",
    "backend",
    "storage",
    "deadline_ms",
    "max_embeddings",
    "stream",
}
#: Per-workload parameter keys.
_WORKLOAD_KEYS = {
    "motifs": {"max_size", "min_size"},
    "match": {"query", "induced", "limit"},
    "fsm": {"support", "max_edges"},
    "cliques": {"max_size", "min_size", "maximal", "limit"},
}


@dataclass(frozen=True)
class QuerySpec:
    """One validated service query (see module docstring for the split
    between semantic and execution fields)."""

    workload: str
    # -- semantic fields (signed) --------------------------------------
    max_size: int | None = None
    min_size: int | None = None
    pattern: Pattern | None = None  # canonical (match only)
    induced: bool = True
    support: int | None = None
    max_edges: int | None = None
    maximal: bool = False
    labeled: bool = True
    exhaustive: bool = False
    limit: int | None = None
    # -- execution fields (not signed) ---------------------------------
    workers: int | None = None
    backend: str | None = None
    storage: str | None = None
    deadline_seconds: float | None = None
    max_embeddings: int | None = None
    stream: bool = False

    # ------------------------------------------------------------------
    def query_signature(self) -> str:
        """Canonical signature of *what* is asked (cache-key half 1)."""
        parts: tuple[Any, ...] = (
            self.workload,
            self.max_size,
            self.min_size,
            None if self.pattern is None else (
                self.pattern.vertex_labels,
                self.pattern.edges,
            ),
            self.induced,
            self.support,
            self.max_edges,
            self.maximal,
            self.labeled,
            self.exhaustive,
        )
        return repr(parts)

    def config_signature(self) -> str:
        """Signature of the result-affecting config subset (cache-key
        half 2).  Only the output cap qualifies: workers, backend,
        storage, and budgets cannot change a finished run's payload."""
        return repr(("limit", self.limit))


def _require_int(body: dict, key: str, *, minimum: int) -> int | None:
    value = body.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ServiceError(
            f"{key!r} must be an integer >= {minimum} (got {value!r})"
        )
    return value


def _require_bool(body: dict, key: str, default: bool) -> bool:
    value = body.get(key, default)
    if not isinstance(value, bool):
        raise ServiceError(f"{key!r} must be true or false (got {value!r})")
    return value


def parse_pattern(value: Any) -> Pattern:
    """A request's query pattern: a named shape or an explicit
    ``{"edges": [[u, v], ...], "vertex_labels": [...]}`` object.

    File paths are deliberately **not** accepted here — a network request
    must never steer the server's filesystem access.
    """
    if isinstance(value, str):
        shape = NAMED_SHAPES.get(value)
        if shape is None:
            raise ServiceError(
                f"unknown query shape {value!r} — named shapes: "
                f"{', '.join(sorted(NAMED_SHAPES))}; or pass an explicit "
                '{"edges": [[u, v], ...], "vertex_labels": [...]} object'
            )
        return shape
    if isinstance(value, dict):
        unknown = set(value) - {"edges", "vertex_labels"}
        if unknown:
            raise ServiceError(
                f"unknown pattern keys {sorted(unknown)} — a pattern "
                'object has "edges" and optional "vertex_labels"'
            )
        raw_edges = value.get("edges")
        if not isinstance(raw_edges, list) or not raw_edges:
            raise ServiceError('pattern "edges" must be a non-empty list')
        edges = []
        max_vertex = -1
        for item in raw_edges:
            if (
                not isinstance(item, list)
                or len(item) not in (2, 3)
                or not all(isinstance(x, int) and not isinstance(x, bool)
                           for x in item)
                or item[0] < 0
                or item[1] < 0
                or item[0] == item[1]
            ):
                raise ServiceError(
                    f"each pattern edge must be [u, v] or [u, v, label] "
                    f"with distinct vertex ids >= 0 (got {item!r})"
                )
            u, v = sorted(item[:2])
            label = item[2] if len(item) == 3 else 0
            edges.append((u, v, label))
            max_vertex = max(max_vertex, v)
        labels = value.get("vertex_labels")
        if labels is None:
            labels = [0] * (max_vertex + 1)
        if (
            not isinstance(labels, list)
            or len(labels) != max_vertex + 1
            or not all(isinstance(x, int) and not isinstance(x, bool)
                       for x in labels)
        ):
            raise ServiceError(
                f'"vertex_labels" must be a list of {max_vertex + 1} '
                f"integers (one per vertex id)"
            )
        return Pattern(tuple(labels), tuple(sorted(set(edges))))
    raise ServiceError(
        "query pattern must be a named shape string "
        f"({', '.join(sorted(NAMED_SHAPES))}) or a pattern object "
        '{"edges": [[u, v], ...], "vertex_labels": [...]}'
    )


def parse_request(workload: str, body: dict) -> QuerySpec:
    """Validate one JSON request body into a :class:`QuerySpec`."""
    if workload not in WORKLOADS:
        raise ServiceError(
            f"unknown workload {workload!r} — available: "
            f"{', '.join(WORKLOADS)}"
        )
    if not isinstance(body, dict):
        raise ServiceError(
            f"request body must be a JSON object (got {type(body).__name__})"
        )
    allowed = _COMMON_KEYS | _WORKLOAD_KEYS[workload]
    unknown = set(body) - allowed
    if unknown:
        raise ServiceError(
            f"unknown request keys {sorted(unknown)} for workload "
            f"{workload!r} — allowed: {', '.join(sorted(allowed))}"
        )

    deadline_ms = body.get("deadline_ms")
    if deadline_ms is not None and (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, (int, float))
        or not deadline_ms > 0
    ):
        raise ServiceError(
            f"'deadline_ms' must be a positive number (got {deadline_ms!r})"
        )
    backend = body.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ServiceError(f"'backend' must be a string (got {backend!r})")
    storage = body.get("storage")
    if storage is not None and not isinstance(storage, str):
        raise ServiceError(f"'storage' must be a string (got {storage!r})")

    spec = dict(
        workload=workload,
        labeled=_require_bool(body, "labeled", True),
        exhaustive=_require_bool(body, "exhaustive", False),
        stream=_require_bool(body, "stream", False),
        workers=_require_int(body, "workers", minimum=1),
        backend=backend,
        storage=storage,
        deadline_seconds=None if deadline_ms is None else deadline_ms / 1000.0,
        max_embeddings=_require_int(body, "max_embeddings", minimum=1),
    )
    if workload == "motifs":
        spec["max_size"] = _require_int(body, "max_size", minimum=1) or 3
        spec["min_size"] = _require_int(body, "min_size", minimum=1) or 3
    elif workload == "match":
        if "query" not in body:
            raise ServiceError(
                'match requests need a "query" — a named shape or a '
                'pattern object {"edges": [...]}'
            )
        spec["pattern"] = parse_pattern(body["query"]).canonical()
        spec["induced"] = _require_bool(body, "induced", True)
        spec["limit"] = _require_int(body, "limit", minimum=0)
    elif workload == "fsm":
        support = _require_int(body, "support", minimum=1)
        if support is None:
            raise ServiceError(
                'fsm requests need a "support" threshold (integer >= 1)'
            )
        spec["support"] = support
        spec["max_edges"] = _require_int(body, "max_edges", minimum=1)
    else:  # cliques
        spec["max_size"] = _require_int(body, "max_size", minimum=1)
        spec["min_size"] = _require_int(body, "min_size", minimum=1) or 1
        spec["maximal"] = _require_bool(body, "maximal", False)
        spec["limit"] = _require_int(body, "limit", minimum=0)
    return QuerySpec(**spec)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def build_query(
    miner: Miner,
    spec: QuerySpec,
    *,
    cancel: CancelFlag | None = None,
    checkpoint_dir: str | None = None,
) -> Query:
    """Chain one facade query for ``spec`` (nothing runs yet).

    ``cancel`` and ``checkpoint_dir`` are *server-side* execution
    options — the server arms a cancel flag per request to abort runs
    whose client disconnected, and (when configured with a checkpoint
    root) snapshots long runs — so they live here as keywords, not on
    the request-derived :class:`QuerySpec`.
    """
    if spec.workload == "motifs":
        query: Query = miner.motifs(spec.max_size, min_size=spec.min_size)
    elif spec.workload == "match":
        query = miner.match(spec.pattern, induced=spec.induced)
    elif spec.workload == "fsm":
        query = miner.fsm(spec.support, max_edges=spec.max_edges)
    elif spec.maximal:
        query = miner.maximal_cliques(max_size=spec.max_size)
    else:
        query = miner.cliques(spec.max_size, min_size=spec.min_size)
    if spec.exhaustive:
        query.exhaustive()
    if not spec.labeled:
        query.unlabeled()
    if spec.workload in ("motifs", "fsm"):
        # The service answers these with the aggregate table; individual
        # embeddings are never materialized.
        query.collect(False)
    elif spec.limit is not None:
        query.limit(spec.limit)
    if spec.workers is not None:
        query.workers(spec.workers)
    if spec.backend is not None:
        query.backend(spec.backend)
    if spec.storage is not None:
        query.storage(spec.storage)
    if spec.deadline_seconds is not None:
        query.deadline(spec.deadline_seconds)
    if spec.max_embeddings is not None:
        query.max_embeddings(spec.max_embeddings)
    if cancel is not None:
        query.cancellation(cancel)
    if checkpoint_dir is not None:
        query.checkpoint(checkpoint_dir)
    return query


def encode_pattern(pattern: Pattern) -> dict[str, Any]:
    """JSON-able canonical pattern encoding."""
    return {
        "vertex_labels": list(pattern.vertex_labels),
        "edges": [[u, v, label] for u, v, label in pattern.edges],
    }


def encode_result(spec: QuerySpec, result: MiningResult) -> dict[str, Any]:
    """The cached/cacheable response payload for one finished run.

    Everything in here is deterministic for the spec's signatures —
    wall-clock and similar per-run noise live in the server's response
    envelope, never in the payload.
    """
    payload: dict[str, Any] = {
        "workload": spec.workload,
        "stats": {
            "steps": result.num_steps,
            "processed_embeddings": result.total_processed,
            "candidates_generated": result.total_candidates,
        },
    }
    if spec.workload == "motifs":
        rows = sorted(
            result.counts().items(),
            key=lambda kv: (kv[0].num_vertices, -kv[1], repr(kv[0])),
        )
        payload["counts"] = [
            {"pattern": encode_pattern(p), "count": c} for p, c in rows
        ]
        payload["num_motifs"] = len(rows)
    elif spec.workload == "match":
        matches = result.vertex_sets()
        payload["query"] = encode_pattern(spec.pattern)
        payload["num_matches"] = result.num_matches
        payload["matches"] = [list(match) for match in matches]
    elif spec.workload == "fsm":
        rows = sorted(
            result.patterns().items(),
            key=lambda kv: (kv[0].num_edges, -kv[1], repr(kv[0])),
        )
        payload["support_threshold"] = spec.support
        payload["patterns"] = [
            {"pattern": encode_pattern(p), "support": s} for p, s in rows
        ]
        payload["num_patterns"] = len(rows)
    else:  # cliques
        by_size = result.by_size()
        payload["maximal"] = spec.maximal
        payload["num_cliques"] = result.num_outputs
        payload["cliques_by_size"] = {
            str(size): [list(clique) for clique in cliques]
            for size, cliques in sorted(by_size.items())
        }
    return payload


def run_query(
    miner: Miner,
    spec: QuerySpec,
    *,
    cancel: CancelFlag | None = None,
    checkpoint_dir: str | None = None,
) -> dict[str, Any]:
    """Execute one spec against a warm session; return its payload."""
    query = build_query(
        miner, spec, cancel=cancel, checkpoint_dir=checkpoint_dir
    )
    return encode_result(spec, query.run())


def stream_rows(payload: dict[str, Any]) -> Iterator[dict[str, Any]]:
    """Split a payload into NDJSON rows (one JSON object per item).

    The first row is a meta header (workload + totals); every following
    row is one natural item of the workload.  Streaming reads from the
    same payloads the result cache stores, so repeated streams of a
    cached query ship without re-running anything.
    """
    workload = payload["workload"]
    meta = {
        key: value
        for key, value in payload.items()
        if key not in ("counts", "matches", "patterns", "cliques_by_size")
    }
    yield {"meta": meta}
    if workload == "motifs":
        for row in payload["counts"]:
            yield row
    elif workload == "match":
        for match in payload["matches"]:
            yield {"match": match}
    elif workload == "fsm":
        for row in payload["patterns"]:
            yield row
    else:
        for size, cliques in payload["cliques_by_size"].items():
            for clique in cliques:
                yield {"size": int(size), "clique": clique}


__all__ = [
    "QuerySpec",
    "WORKLOADS",
    "build_query",
    "encode_pattern",
    "encode_result",
    "parse_pattern",
    "parse_request",
    "run_query",
    "stream_rows",
]
