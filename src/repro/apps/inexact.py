"""Inexact (label-cost) graph matching — the paper's section 2 variant.

"In inexact matching, one can seek inexact or approximate isomorphisms
(based on notions of edit-distances, label costs, etc.)" — the setting of
the authors' own approximate-mining work (reference [2], Anchuri et al.,
which also introduced the representative sets ODAGs are compared to).

This application retrieves embeddings whose *structure* matches the query
pattern exactly but whose vertex labels may differ, as long as the total
label-substitution cost stays within a budget.  The filter is anti-monotone
in the required sense: the minimum achievable cost of completing a partial
match never decreases as the embedding grows, so once the budget is
exceeded the subtree is safely pruned.
"""

from __future__ import annotations

from typing import Callable

from ..core.computation import Computation
from ..core.embedding import Embedding, VERTEX_EXPLORATION
from ..core.pattern import Pattern
from ..graph import LabeledGraph
LabelCost = Callable[[int, int], float]


def unit_label_cost(expected: int, actual: int) -> float:
    """0 for a label match, 1 for any substitution."""
    return 0.0 if expected == actual else 1.0


def _pattern_adjacency(pattern: Pattern) -> list[dict[int, int]]:
    adjacency: list[dict[int, int]] = [dict() for _ in range(pattern.num_vertices)]
    for i, j, label in pattern.edges:
        adjacency[i][j] = label
        adjacency[j][i] = label
    return adjacency


def min_completion_cost(
    pattern: Pattern,
    graph: LabeledGraph,
    members: frozenset[int],
    budget: float,
    cost_fn: LabelCost,
) -> float | None:
    """Cheapest label cost of matching ``pattern`` onto a SUPERSET of
    ``members``'s induced structure using only vertices in ``members``
    when the pattern is the same size, or None if structure cannot match.

    For partial embeddings (fewer vertices than the pattern), returns the
    cheapest cost over all injective structure-preserving *partial* maps of
    the members into the pattern — a lower bound on any completion's cost,
    which is what makes the filter anti-monotone.
    """
    member_list = sorted(members)
    k = len(member_list)
    if k > pattern.num_vertices:
        return None
    adjacency = _pattern_adjacency(pattern)
    best: float | None = None

    # Search assignments of members to pattern positions (small sizes).
    def assign(index: int, used: frozenset[int], mapping: dict[int, int], cost: float):
        nonlocal best
        if best is not None and cost >= best:
            return
        if cost > budget:
            return
        if index == k:
            if best is None or cost < best:
                best = cost
            return
        v = member_list[index]
        for position in range(pattern.num_vertices):
            if position in used:
                continue
            # Structure check: graph edges among mapped members must map to
            # pattern edges and vice versa (induced semantics).
            ok = True
            for mapped_v, mapped_pos in mapping.items():
                has_graph_edge = graph.adjacent(v, mapped_v)
                has_pattern_edge = position in adjacency[mapped_pos]
                if has_graph_edge != has_pattern_edge:
                    ok = False
                    break
            if not ok:
                continue
            step = cost_fn(pattern.vertex_labels[position], graph.vertex_label(v))
            assign(
                index + 1,
                used | {position},
                {**mapping, v: position},
                cost + step,
            )

    assign(0, frozenset(), {}, 0.0)
    return best


class InexactMatching(Computation):
    """Find embeddings structurally equal to ``query`` within a label budget.

    Parameters
    ----------
    query:
        The pattern to match (vertex-induced structure must match exactly).
    budget:
        Maximum total label-substitution cost.
    cost_fn:
        Per-vertex cost of matching an expected label to an actual one;
        defaults to the unit substitution cost.
    """

    exploration_mode = VERTEX_EXPLORATION

    def __init__(
        self,
        query: Pattern,
        budget: float,
        cost_fn: LabelCost = unit_label_cost,
    ):
        super().__init__()
        if query.num_vertices == 0:
            raise ValueError("query pattern must not be empty")
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.query = query
        self.budget = budget
        self.cost_fn = cost_fn

    def filter(self, embedding: Embedding) -> bool:
        if embedding.num_vertices > self.query.num_vertices:
            return False
        cost = min_completion_cost(
            self.query,
            embedding.graph,
            embedding.vertex_set(),
            self.budget,
            self.cost_fn,
        )
        return cost is not None and cost <= self.budget

    def process(self, embedding: Embedding) -> None:
        if embedding.num_vertices != self.query.num_vertices:
            return
        cost = min_completion_cost(
            self.query,
            embedding.graph,
            embedding.vertex_set(),
            self.budget,
            self.cost_fn,
        )
        if cost is not None and cost <= self.budget:
            self.output((tuple(sorted(embedding.vertices)), cost))

    def termination_filter(self, embedding: Embedding) -> bool:
        return embedding.num_vertices >= self.query.num_vertices
