"""Clique finding — Figure 4c of the paper.

Dense-subgraph mining with purely local pruning: an embedding that is not a
clique can never extend into one, so ``filter`` is the incremental
``isClique`` check ("the isClique function checks that the newly added
vertex is connected with all previous vertices in the embedding", section
4.2) and ``process`` outputs every embedding it receives — all of which are
cliques by construction.
"""

from __future__ import annotations

from ..core.computation import Computation
from ..core.embedding import Embedding, VERTEX_EXPLORATION, VertexInducedEmbedding
from ..core.results import RunResult


class CliqueFinding(Computation):
    """Enumerate all cliques with up to ``max_size`` vertices.

    ``min_size`` controls which cliques are *output* (the paper's MS=4 runs
    output cliques of every explored size; benchmarks often care only about
    the largest).  ``max_size=None`` enumerates every clique in the graph —
    use with care, the count is exponential in the largest clique.
    """

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, max_size: int | None = None, min_size: int = 1):
        super().__init__()
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 when given")
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        self.max_size = max_size
        self.min_size = min_size

    def filter(self, embedding: Embedding) -> bool:
        assert isinstance(embedding, VertexInducedEmbedding)
        if self.max_size is not None and embedding.num_vertices > self.max_size:
            return False
        return embedding.is_clique()

    def process(self, embedding: Embedding) -> None:
        if embedding.num_vertices >= self.min_size:
            self.output(tuple(sorted(embedding.words)))

    def termination_filter(self, embedding: Embedding) -> bool:
        return self.max_size is not None and embedding.num_vertices >= self.max_size


def cliques_by_size(result: RunResult) -> dict[int, list[tuple[int, ...]]]:
    """Post-process a run: clique size -> sorted list of vertex tuples."""
    by_size: dict[int, list[tuple[int, ...]]] = {}
    for clique in result.outputs:
        by_size.setdefault(len(clique), []).append(clique)
    for cliques in by_size.values():
        cliques.sort()
    return by_size
