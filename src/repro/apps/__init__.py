"""The paper's applications, built on the public Computation API."""

from .cliques import CliqueFinding, cliques_by_size
from .frequent_cliques import (
    FrequentClique,
    FrequentCliqueMining,
    frequent_clique_patterns,
)
from .fsm import (
    DagPatternDomains,
    FrequentEmbedding,
    FrequentSubgraphMining,
    GuidedFSMLevel,
    GuidedFSMResult,
    GuidedPatternDomains,
    frequent_patterns,
    run_guided_fsm,
)
from .inexact import InexactMatching, min_completion_cost, unit_label_cost
from .matching import (
    GraphMatching,
    GuidedMatching,
    match_vertex_sets,
    pattern_embeds_in,
    run_matching,
)
from .maximal_cliques import MaximalCliqueFinding, is_maximal_clique
from .motifs import (
    DagMotifCounting,
    GuidedMotifsRun,
    MotifCounting,
    enumerate_motif_patterns,
    motif_counts,
    motif_counts_by_size,
    run_guided_motifs,
    single_motif_count,
)
from .support import Domain
from .transactional_fsm import (
    GraphCollection,
    TidSet,
    TransactionalFSM,
    transactional_frequent_patterns,
)

__all__ = [
    "CliqueFinding",
    "DagMotifCounting",
    "DagPatternDomains",
    "Domain",
    "FrequentClique",
    "FrequentCliqueMining",
    "FrequentEmbedding",
    "FrequentSubgraphMining",
    "GraphCollection",
    "GraphMatching",
    "GuidedFSMLevel",
    "GuidedFSMResult",
    "GuidedMatching",
    "GuidedMotifsRun",
    "GuidedPatternDomains",
    "InexactMatching",
    "MaximalCliqueFinding",
    "MotifCounting",
    "TidSet",
    "TransactionalFSM",
    "cliques_by_size",
    "enumerate_motif_patterns",
    "frequent_clique_patterns",
    "frequent_patterns",
    "is_maximal_clique",
    "match_vertex_sets",
    "min_completion_cost",
    "motif_counts",
    "motif_counts_by_size",
    "pattern_embeds_in",
    "run_guided_fsm",
    "run_guided_motifs",
    "run_matching",
    "single_motif_count",
    "transactional_frequent_patterns",
    "unit_label_cost",
]
