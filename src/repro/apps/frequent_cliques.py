"""Frequent clique mining — the paper's section 2 generalization.

"The clique problem can also be generalized to ... frequent cliques, if we
impose a minimum frequency threshold in addition to the completeness
constraint."  The composition is a textbook use of the full API surface:
the *local* prune (φ = isClique) combines with the *aggregate* prune
(α = pattern support), and the exploration inherits anti-monotonicity from
both — a subgraph of a clique is a clique, and MNI support never grows
under extension.

On an unlabeled graph every k-clique shares one pattern, so "frequent"
degenerates into "at least θ distinct member vertices per position"; the
interesting case is a labeled graph, where the output is the frequent
*colored* clique shapes plus their instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.computation import Computation
from ..core.embedding import Embedding, VERTEX_EXPLORATION, VertexInducedEmbedding
from ..core.pattern import Pattern
from ..core.results import RunResult
from .support import Domain


@dataclass(frozen=True)
class FrequentClique:
    """One output row: a clique whose labeled shape is frequent."""

    pattern: Pattern
    vertices: tuple[int, ...]
    support: int


class FrequentCliqueMining(Computation):
    """Mine cliques whose labeled pattern has MNI support >= threshold."""

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, support_threshold: int, max_size: int | None = None):
        super().__init__()
        if support_threshold < 1:
            raise ValueError("support_threshold must be >= 1")
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 when given")
        self.support_threshold = support_threshold
        self.max_size = max_size

    # -- φ and π ---------------------------------------------------------
    def filter(self, embedding: Embedding) -> bool:
        assert isinstance(embedding, VertexInducedEmbedding)
        if self.max_size is not None and embedding.num_vertices > self.max_size:
            return False
        return embedding.is_clique()

    def process(self, embedding: Embedding) -> None:
        self.map(self.pattern(embedding), Domain.from_embedding(embedding))

    # -- aggregation -------------------------------------------------------
    def reduce(self, key, domains: list[Domain]) -> Domain:
        return Domain.merge_all(domains)

    def _support(self, embedding: Embedding) -> int | None:
        quick = self.pattern(embedding)
        domain = self.read_aggregate(quick)
        if domain is None:
            return None
        return domain.support(quick.canonical().orbits())

    def aggregation_filter(self, embedding: Embedding) -> bool:
        support = self._support(embedding)
        return support is not None and support >= self.support_threshold

    def aggregation_process(self, embedding: Embedding) -> None:
        support = self._support(embedding)
        if support is None:  # pragma: no cover - guarded by α
            return
        self.output(
            FrequentClique(
                pattern=self.pattern(embedding).canonical(),
                vertices=tuple(sorted(embedding.words)),
                support=support,
            )
        )

    def termination_filter(self, embedding: Embedding) -> bool:
        return self.max_size is not None and embedding.num_vertices >= self.max_size


def frequent_clique_patterns(
    result: RunResult, support_threshold: int
) -> dict[Pattern, int]:
    """Post-process: canonical clique pattern -> support, frequent only."""
    frequent: dict[Pattern, int] = {}
    for pattern, domain in result.final_aggregates.items():
        if not isinstance(pattern, Pattern) or not isinstance(domain, Domain):
            continue
        support = domain.support(pattern.orbits())
        if support >= support_threshold:
            frequent[pattern] = support
    return frequent
