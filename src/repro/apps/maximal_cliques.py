"""Maximal clique mining — the paper's section 2 generalization.

"The clique problem can also be generalized to maximal cliques, i.e., those
not contained in any other clique."  Exploration is identical to
:class:`~repro.apps.cliques.CliqueFinding`; the only change is the output
condition: a clique is emitted iff no input-graph vertex is adjacent to all
of its members.  This stays automorphism-invariant (maximality depends only
on the vertex set) and keeps φ anti-monotone (non-maximal cliques must still
be *explored* — one of their extensions may be maximal — just not output).
"""

from __future__ import annotations

from ..core.computation import Computation
from ..core.embedding import Embedding, VERTEX_EXPLORATION, VertexInducedEmbedding
from ..graph.bitset import to_bitset


def is_maximal_clique(embedding: VertexInducedEmbedding) -> bool:
    """No vertex outside the embedding neighbors every member."""
    graph = embedding.graph
    words = embedding.words
    # Intersect neighbor bitsets starting from the smallest to fail fast.
    smallest = min(words, key=graph.degree)
    common = graph.neighbor_bits(smallest)
    outside = ~to_bitset(words)
    for v in words:
        if v != smallest:
            common &= graph.neighbor_bits(v)
        if not common & outside:
            return True
    return not common & outside


class MaximalCliqueFinding(Computation):
    """Enumerate maximal cliques (optionally capped at ``max_size``).

    With a ``max_size`` cap, cliques of exactly ``max_size`` are reported
    when maximal in the *full* graph — matching Mace's semantics, which the
    paper uses as the centralized baseline.
    """

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, max_size: int | None = None):
        super().__init__()
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 when given")
        self.max_size = max_size

    def filter(self, embedding: Embedding) -> bool:
        assert isinstance(embedding, VertexInducedEmbedding)
        if self.max_size is not None and embedding.num_vertices > self.max_size:
            return False
        return embedding.is_clique()

    def process(self, embedding: Embedding) -> None:
        assert isinstance(embedding, VertexInducedEmbedding)
        if is_maximal_clique(embedding):
            self.output(tuple(sorted(embedding.words)))

    def termination_filter(self, embedding: Embedding) -> bool:
        return self.max_size is not None and embedding.num_vertices >= self.max_size
