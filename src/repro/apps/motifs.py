"""Motif counting — Figure 4b of the paper.

Exhaustive vertex-based exploration up to a maximum size; every embedding
contributes 1 to its pattern's output aggregation, so the run ends with the
frequency distribution of all motifs of order <= ``max_size``.  On an
unlabeled graph a canonical pattern *is* a motif; on a labeled graph this
generalizes to labeled motifs (section 2: "we can easily generalize the
definition to labeled patterns").
"""

from __future__ import annotations

from ..core.computation import Computation
from ..core.config import ArabesqueConfig
from ..core.embedding import Embedding, VERTEX_EXPLORATION
from ..core.pattern import Pattern
from ..core.results import RunResult
from ..graph import LabeledGraph


class MotifCounting(Computation):
    """Count vertex-induced embeddings per motif up to ``max_size`` vertices.

    ``min_size`` (default 3, the smallest order with more than one motif
    shape) restricts which sizes are *reported*; exploration still passes
    through smaller sizes, as it must.
    """

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, max_size: int, min_size: int = 3):
        super().__init__()
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        if not 1 <= min_size <= max_size:
            raise ValueError("need 1 <= min_size <= max_size")
        self.max_size = max_size
        self.min_size = min_size

    def filter(self, embedding: Embedding) -> bool:
        return embedding.num_vertices <= self.max_size

    def process(self, embedding: Embedding) -> None:
        if embedding.num_vertices >= self.min_size:
            self.map_output(self.pattern(embedding), 1)

    def reduce_output(self, key, counts: list[int]) -> int:
        return sum(counts)

    def termination_filter(self, embedding: Embedding) -> bool:
        # Skip the exploration step that would generate size max_size + 1
        # candidates only to filter all of them out (section 4.1's example).
        return embedding.num_vertices >= self.max_size


def motif_counts(result: RunResult) -> dict[Pattern, int]:
    """Post-process a run: canonical motif pattern -> embedding count."""
    return {
        pattern: count
        for pattern, count in result.output_aggregates.items()
        if isinstance(pattern, Pattern)
    }


def motif_counts_by_size(result: RunResult) -> dict[int, dict[Pattern, int]]:
    """Motif counts grouped by motif order (Figure 1's per-size series)."""
    by_size: dict[int, dict[Pattern, int]] = {}
    for pattern, count in motif_counts(result).items():
        by_size.setdefault(pattern.num_vertices, {})[pattern] = count
    return by_size


def single_motif_count(
    graph: LabeledGraph,
    motif: Pattern,
    *,
    guided: bool = True,
    config: ArabesqueConfig | None = None,
) -> int:
    """Count the vertex-induced embeddings of ONE motif shape.

    .. deprecated::
        Thin wrapper kept for compatibility — use the session facade:
        ``Miner(graph).match(motif).count()``.

    Exhaustive :class:`MotifCounting` explores every motif of the size
    class and reads one entry of the distribution; when only a single
    shape matters this is the planner fast path — a guided induced match
    of the motif pattern counts exactly the same embeddings while only
    generating plan-compatible candidates.  ``guided=False`` falls back to
    the exhaustive matcher (the oracle), which is also the right choice
    when the distribution of *all* motifs is needed anyway.

    Outputs are not collected — only the exact count is returned.
    """
    import warnings

    warnings.warn(
        "single_motif_count is deprecated; use "
        "repro.session.Miner(graph).match(motif).count() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..session import Miner

    request = Miner(graph).match(motif, induced=True)
    if config is not None:
        request.config(config)
    request.guided() if guided else request.exhaustive()
    return request.count()
