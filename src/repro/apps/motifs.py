"""Motif counting — Figure 4b of the paper, in two strategies.

**Exhaustive** (:class:`MotifCounting`, the oracle): vertex-based
exploration up to a maximum size; every embedding contributes 1 to its
pattern's output aggregation, so the run ends with the frequency
distribution of all motifs of order <= ``max_size``.  On an unlabeled
graph a canonical pattern *is* a motif; on a labeled graph this
generalizes to labeled motifs (section 2: "we can easily generalize the
definition to labeled patterns").

**DAG-guided** (:func:`run_guided_motifs`, the fast path): enumerate every
canonical motif candidate of order <= ``max_size``
(:func:`enumerate_motif_patterns` — level-wise edge growth over the
graph's label triples, so every motif that can occur is covered), compile
the whole batch into ONE multi-query
:class:`~repro.plan.dag.PlanDAG` with prefix-affine matching orders, and
answer the full distribution in ONE engine run:
:class:`DagMotifCounting` emits 1 per accepting leaf, so each motif's
count equals its solo guided match count — which equals its exhaustive
count (symmetry restrictions keep exactly one representative per
vertex-induced occurrence).  Candidates that never occur simply aggregate
nothing, matching the oracle's count>=1 reporting; shared prefixes across
sibling motifs are generated and stored once instead of once per motif.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..bsp.metrics import RunMetrics
from ..core.computation import Computation
from ..core.config import ArabesqueConfig
from ..core.embedding import Embedding, VERTEX_EXPLORATION
from ..core.pattern import Pattern
from ..core.results import RunResult
from ..core.storage import LIST_STORAGE
from ..graph import LabeledGraph
from ..plan.dag import PlanDAG, bound_stepper, build_plan_dag, mask_bundle
from ..plan.fsm_guide import (
    label_triples,
    one_edge_extensions,
    single_edge_candidates,
)

#: A DAG source for a canonical motif batch (induced semantics).  The
#: default compiles fresh; a session passes its cross-query DAG cache.
MotifDagProvider = Callable[[tuple[Pattern, ...]], PlanDAG]


class MotifCounting(Computation):
    """Count vertex-induced embeddings per motif up to ``max_size`` vertices.

    ``min_size`` (default 3, the smallest order with more than one motif
    shape) restricts which sizes are *reported*; exploration still passes
    through smaller sizes, as it must.
    """

    exploration_mode = VERTEX_EXPLORATION

    def __init__(self, max_size: int, min_size: int = 3):
        super().__init__()
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        if not 1 <= min_size <= max_size:
            raise ValueError("need 1 <= min_size <= max_size")
        self.max_size = max_size
        self.min_size = min_size

    def filter(self, embedding: Embedding) -> bool:
        return embedding.num_vertices <= self.max_size

    def process(self, embedding: Embedding) -> None:
        if embedding.num_vertices >= self.min_size:
            self.map_output(self.pattern(embedding), 1)

    def reduce_output(self, key, counts: list[int]) -> int:
        return sum(counts)

    def termination_filter(self, embedding: Embedding) -> bool:
        # Skip the exploration step that would generate size max_size + 1
        # candidates only to filter all of them out (section 4.1's example).
        return embedding.num_vertices >= self.max_size


def motif_counts(result: RunResult) -> dict[Pattern, int]:
    """Post-process a run: canonical motif pattern -> embedding count."""
    return {
        pattern: count
        for pattern, count in result.output_aggregates.items()
        if isinstance(pattern, Pattern)
    }


def motif_counts_by_size(result: RunResult) -> dict[int, dict[Pattern, int]]:
    """Motif counts grouped by motif order (Figure 1's per-size series)."""
    by_size: dict[int, dict[Pattern, int]] = {}
    for pattern, count in motif_counts(result).items():
        by_size.setdefault(pattern.num_vertices, {})[pattern] = count
    return by_size


def enumerate_motif_patterns(
    graph: LabeledGraph, max_size: int, min_size: int = 3
) -> tuple[Pattern, ...]:
    """Every canonical motif candidate of order ``min_size..max_size``.

    Level-wise edge growth from the graph's single-edge label-triple
    classes (the same growth moves guided FSM uses: attach a vertex or
    close an edge), bounded at ``max_size`` vertices — every connected
    pattern whose edges are drawn from the graph's label triples is
    reached, and any motif occurring in the graph necessarily is one of
    them.  Candidates that never occur contribute a zero count and are
    dropped at aggregation time, so the guided distribution matches the
    oracle's count>=1 reporting exactly.  ``min_size <= 1`` adds one
    single-vertex pattern per vertex label present.  Deterministic order:
    sorted by (order, labels, edges) — the DAG cache keys on this tuple.
    """
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    if not 1 <= min_size <= max_size:
        raise ValueError("need 1 <= min_size <= max_size")
    candidates: set[Pattern] = set()
    if min_size <= 1:
        for label in sorted(graph.vertex_label_histogram()):
            candidates.add(Pattern((label,), ()).canonical())
    if max_size >= 2:
        triples = label_triples(graph)
        frontier = list(single_edge_candidates(graph))
        seen: set[Pattern] = set(frontier)
        while frontier:
            grown: list[Pattern] = []
            for pattern in frontier:
                for extension in one_edge_extensions(pattern, triples):
                    if extension.num_vertices <= max_size and extension not in seen:
                        seen.add(extension)
                        grown.append(extension)
            frontier = grown
        candidates.update(seen)
    return tuple(
        sorted(
            (p for p in candidates if min_size <= p.num_vertices <= max_size),
            key=lambda p: (p.num_vertices, p.vertex_labels, p.edges),
        )
    )


class DagMotifCounting(Computation):
    """Count the whole motif distribution through one multi-query DAG.

    Run with ``config.plan`` set to the same DAG (:func:`run_guided_motifs`
    wires this up).  The runtime advances each embedding against the
    whole batch; ``process`` emits 1 per accepting leaf, under that
    leaf's canonical pattern — the symmetry restrictions guarantee one
    representative per vertex-induced occurrence per motif, so the
    aggregated counts equal the exhaustive :class:`MotifCounting`
    distribution (minus the zero-count candidates, which aggregate
    nothing in both strategies).
    """

    exploration_mode = VERTEX_EXPLORATION
    plan_compatible = True

    def __init__(self, dag: PlanDAG):
        super().__init__()
        if not dag.induced:
            raise ValueError(
                "motif DAGs must use induced semantics (compile with "
                "induced=True); a motif is a vertex-induced occurrence"
            )
        self.plan = dag

    def process(self, embedding: Embedding) -> None:
        stepper = bound_stepper(self, self.plan, embedding.graph)
        for member in stepper.accepting(embedding.words):
            self.map_output(self.plan.plans[member].pattern, 1)

    def reduce_output(self, key, counts: list[int]) -> int:
        return sum(counts)

    def termination_filter(self, embedding: Embedding) -> bool:
        stepper = bound_stepper(self, self.plan, embedding.graph)
        return not stepper.extendable(embedding.words)


@dataclass(frozen=True)
class GuidedMotifsRun:
    """Everything one DAG-guided motif run produces.

    ``run`` is the single engine record (``output_aggregates`` holds the
    distribution exactly where the exhaustive oracle puts it, so
    :func:`motif_counts` and the session's ``MotifResult`` work
    unchanged); ``dag`` and ``batch`` expose the compiled multi-query
    structure (``None``/empty when no candidate of the requested orders
    exists — e.g. an edgeless graph with ``min_size >= 2``).
    """

    run: RunResult
    dag: PlanDAG | None
    batch: tuple[Pattern, ...]

    @property
    def engine_runs(self) -> int:
        return 1 if self.dag is not None else 0


def run_guided_motifs(
    graph: LabeledGraph,
    max_size: int,
    min_size: int = 3,
    *,
    config: ArabesqueConfig | None = None,
    dag_provider: MotifDagProvider | None = None,
) -> GuidedMotifsRun:
    """DAG-guided motif distribution: the whole batch in one engine run.

    Enumerates every canonical motif candidate of order
    ``min_size..max_size``, compiles ONE prefix-sharing plan DAG over the
    batch (``dag_provider`` supplies it — a session passes its DAG cache;
    default compiles fresh), and runs :class:`DagMotifCounting` guided.
    Returns the identical distribution to the exhaustive
    :class:`MotifCounting` oracle — and, per motif, to its solo guided
    match count — byte-identically across execution backends, worker
    counts, and storage modes.

    ``config`` carries the execution knobs (backend, workers, storage —
    ``None`` defaults to list storage, the guided sweet spot); its
    ``plan``/output fields are overridden for the run (guided motifs
    aggregate the distribution and never collect per-embedding outputs).
    """
    batch = enumerate_motif_patterns(graph, max_size, min_size=min_size)
    base = config if config is not None else ArabesqueConfig(storage=LIST_STORAGE)
    if not batch:
        empty = RunResult()
        empty.metrics = RunMetrics(num_workers=base.num_workers)
        return GuidedMotifsRun(run=empty, dag=None, batch=())
    provide = dag_provider if dag_provider is not None else (
        lambda patterns: build_plan_dag(patterns, induced=True)
    )
    dag = provide(batch)
    # Warm the fused stepper's structural masks in the driver process so
    # worker tasks (and forked process workers, via copy-on-write) read
    # the memo instead of rebuilding per task.
    mask_bundle(dag, graph)
    run_config = dataclasses.replace(
        base, plan=dag, collect_outputs=False, output_limit=None
    )
    # Import here mirrors the engine's own lazy runtime import (runtime ->
    # core.config would otherwise cycle).
    from ..core.engine import run_computation

    run = run_computation(graph, DagMotifCounting(dag), run_config)
    return GuidedMotifsRun(run=run, dag=dag, batch=batch)


def single_motif_count(
    graph: LabeledGraph,
    motif: Pattern,
    *,
    guided: bool = True,
    config: ArabesqueConfig | None = None,
) -> int:
    """Count the vertex-induced embeddings of ONE motif shape.

    .. deprecated::
        Thin wrapper kept for compatibility — use the session facade:
        ``Miner(graph).match(motif).count()``.

    Exhaustive :class:`MotifCounting` explores every motif of the size
    class and reads one entry of the distribution; when only a single
    shape matters this is the planner fast path — a guided induced match
    of the motif pattern counts exactly the same embeddings while only
    generating plan-compatible candidates.  ``guided=False`` falls back to
    the exhaustive matcher (the oracle), which is also the right choice
    when the distribution of *all* motifs is needed anyway.

    Outputs are not collected — only the exact count is returned.
    """
    import warnings

    warnings.warn(
        "single_motif_count is deprecated; use "
        "repro.session.Miner(graph).match(motif).count() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..session import Miner

    request = Miner(graph).match(motif, induced=True)
    if config is not None:
        request.config(config)
    request.guided() if guided else request.exhaustive()
    return request.count()
