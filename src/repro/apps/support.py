"""Minimum image-based support (MNI) — the FSM frequency metric.

The paper uses the metric of Bringmann and Nijssen [7]: "the frequency of a
pattern [is] the minimum number of distinct mappings for any vertex in the
pattern, over all embeddings of the pattern" (section 2).  The *domain* of a
pattern vertex is the set of distinct input-graph vertices it maps to across
all embeddings (and all automorphisms of each embedding — Figure 2's blue
vertex has domain {1, 3}).

MNI is **anti-monotone**: a pattern extension can only shrink domains, so a
pattern whose support drops below the threshold can never become frequent
again — the property that lets α prune whole exploration subtrees.

:class:`Domain` is the aggregation value: ``process`` maps one embedding's
single-vertex-per-position domains, ``reduce`` unions them.  Position
bookkeeping has two stages (mirroring two-level aggregation):

* positions initially follow the *quick pattern* (embedding visit order);
* :meth:`Domain.remap_positions` translates to canonical-pattern positions
  when the quick pattern folds into its canonical form;
* automorphisms of the canonical pattern are folded at *read* time:
  :meth:`Domain.support` unions domains across each automorphism orbit,
  which is exactly the "any automorphism of e" clause of the definition
  (every isomorphism is the canonical mapping composed with an
  automorphism).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.embedding import Embedding


class Domain:
    """Per-pattern-position sets of matched input-graph vertices."""

    __slots__ = ("_sets",)

    def __init__(self, sets: Sequence[frozenset[int]]) -> None:
        self._sets = tuple(frozenset(s) for s in sets)

    @classmethod
    def from_embedding(cls, embedding: Embedding) -> "Domain":
        """The singleton domain of one embedding: position i holds the
        vertex visited i-th (matching the quick pattern's positions)."""
        return cls([frozenset((v,)) for v in embedding.vertices])

    @classmethod
    def from_mapping(cls, mapping: Sequence[int]) -> "Domain":
        """The singleton domain of one match mapping: position i holds
        the graph vertex matched to pattern vertex i.

        The guided FSM path builds these from plan-ordered words via
        :func:`repro.plan.guided.match_mapping`, so positions already
        follow the (canonical) candidate pattern — no quick-pattern
        remapping is pending, unlike :meth:`from_embedding`.
        """
        return cls([frozenset((v,)) for v in mapping])

    @classmethod
    def merge_all(cls, domains: Iterable["Domain"]) -> "Domain":
        """Positionwise union — the FSM ``reduce`` function."""
        iterator = iter(domains)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot merge zero domains") from None
        merged = [set(s) for s in first._sets]
        for domain in iterator:
            if len(domain._sets) != len(merged):
                raise ValueError("cannot merge domains of different arity")
            for position, members in enumerate(domain._sets):
                merged[position] |= members
        return cls([frozenset(s) for s in merged])

    def remap_positions(self, mapping: tuple[int, ...]) -> "Domain":
        """Reorder positions: new position ``mapping[i]`` gets old set i."""
        if len(mapping) != len(self._sets):
            raise ValueError("mapping arity does not match domain arity")
        reordered: list[frozenset[int]] = [frozenset()] * len(self._sets)
        for old_position, new_position in enumerate(mapping):
            reordered[new_position] = self._sets[old_position]
        return Domain(reordered)

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of pattern positions."""
        return len(self._sets)

    def position_images(self, position: int) -> frozenset[int]:
        """Distinct vertices mapped to ``position`` (pre orbit folding)."""
        return self._sets[position]

    def orbit_folded(self, orbits: Sequence[int]) -> tuple[frozenset[int], ...]:
        """Per-position image sets with automorphism orbits folded in.

        Position ``i``'s result is the union of the raw sets over ``i``'s
        orbit — the *full* image set of that pattern vertex even when the
        raw sets hold only symmetry-unique representatives (every
        isomorphism is a representative composed with an automorphism,
        and automorphisms permute positions within orbits).  This is the
        one home of the orbit fold: :meth:`support` reads off it, and
        guided FSM pushes these sets down into extension plans.
        """
        if len(orbits) != len(self._sets):
            raise ValueError("orbit arity does not match domain arity")
        folded: dict[int, set[int]] = {}
        for position, orbit in enumerate(orbits):
            folded.setdefault(orbit, set()).update(self._sets[position])
        return tuple(frozenset(folded[orbit]) for orbit in orbits)

    def support(self, orbits: Sequence[int] | None = None) -> int:
        """The MNI support: min over positions of the domain size.

        With ``orbits`` (the canonical pattern's automorphism orbits), each
        position's effective domain is the union over its orbit — required
        for correctness whenever the pattern has non-trivial symmetry.
        """
        if not self._sets:
            return 0
        if orbits is None:
            return min(len(s) for s in self._sets)
        # Positions in one orbit share their folded set, so the min over
        # positions equals the min over orbits.
        return min(len(s) for s in self.orbit_folded(orbits))

    def wire_size(self) -> int:
        """Header plus per-position headers and 4 bytes per member vertex."""
        return 4 + sum(4 + 4 * len(s) for s in self._sets)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._sets == other._sets

    def __hash__(self) -> int:
        return hash(self._sets)

    def __repr__(self) -> str:
        rendered = ", ".join(
            "{" + ",".join(map(str, sorted(s))) + "}" for s in self._sets
        )
        return f"Domain([{rendered}])"
