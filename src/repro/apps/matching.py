"""Graph matching as a filter-process application.

Section 2 of the paper: "Also related to graph mining is the problem of
graph matching, where a query pattern q is fixed, and one has to retrieve
all its matches in the input graph G. ... graph mining encompasses the
matching problem."  This application demonstrates that subsumption: the
filter keeps exactly the embeddings whose pattern is a (connected) subgraph
of the query, which is anti-monotone — once an embedding stops being
embeddable in the query, no extension can recover — and the process
function outputs the embeddings that match the whole query.

Matching a candidate's pattern against the query is a pattern-to-pattern
subgraph isomorphism; with two-level-style caching per quick pattern the
check runs once per distinct shape rather than once per embedding.

Two execution strategies share this module:

* :class:`GraphMatching` — the exhaustive filter-process oracle described
  above: extend every canonical embedding everywhere, keep the ones still
  embeddable in the query.  Exploration-agnostic but trivially correct.
* :class:`GuidedMatching` + :func:`run_matching` — the planner fast path:
  the query is compiled into a :class:`~repro.plan.MatchingPlan`
  (matching order, per-step constraints, symmetry-breaking restrictions)
  and the runtime only proposes candidates satisfying the next plan step.
  Produces the identical match multiset with a fraction of the candidates;
  the exhaustive mode stays the default and the correctness oracle.
"""

from __future__ import annotations

from ..core.computation import Computation
from ..core.config import ArabesqueConfig
from ..core.embedding import (
    EDGE_EXPLORATION,
    Embedding,
    VERTEX_EXPLORATION,
)
from ..core.pattern import Pattern
from ..core.results import RunResult
from ..graph import LabeledGraph
from ..isomorphism import SubgraphMatcher
from ..plan.planner import MatchingPlan


def _pattern_as_graph(pattern: Pattern) -> LabeledGraph:
    edges = [(i, j) for i, j, _ in pattern.edges]
    edge_labels = [label for _, _, label in pattern.edges]
    return LabeledGraph(pattern.vertex_labels, edges, edge_labels)


def pattern_embeds_in(needle: Pattern, haystack: Pattern, induced: bool) -> bool:
    """Whether ``needle`` occurs as a subgraph of ``haystack``.

    ``induced=True`` requires an induced occurrence (vertex-based mode),
    ``False`` a monomorphism (edge-based mode).  Both patterns are tiny, so
    VF2 on the pattern graphs is instant.
    """
    if needle.num_vertices > haystack.num_vertices:
        return False
    if needle.num_edges > haystack.num_edges:
        return False
    matcher = SubgraphMatcher(
        needle.vertex_labels,
        needle.edge_dict(),
        _pattern_as_graph(haystack),
        induced=induced,
    )
    return matcher.exists()


class GraphMatching(Computation):
    """Retrieve every embedding of a fixed query pattern.

    Parameters
    ----------
    query:
        The pattern to search for (connected; vertex ids ``0..k-1``).
    induced:
        Vertex-induced semantics (matches must not have extra edges among
        their vertices) when True; edge-based monomorphism otherwise.
    """

    def __init__(self, query: Pattern, induced: bool = True):
        super().__init__()
        if query.num_vertices == 0:
            raise ValueError("query pattern must not be empty")
        if not query.is_connected():
            # Connected exploration can never assemble a disconnected
            # occurrence — fail loudly instead of reporting zero matches.
            raise ValueError("query pattern must be connected")
        self.query = query.canonical()
        self.induced = induced
        self.exploration_mode = (
            VERTEX_EXPLORATION if induced else EDGE_EXPLORATION
        )
        self._embeddable_cache: dict[Pattern, bool] = {}
        self._match_cache: dict[Pattern, bool] = {}

    def _embeddable(self, pattern: Pattern) -> bool:
        cached = self._embeddable_cache.get(pattern)
        if cached is None:
            cached = pattern_embeds_in(pattern, self.query, self.induced)
            self._embeddable_cache[pattern] = cached
        return cached

    def _is_full_match(self, pattern: Pattern) -> bool:
        cached = self._match_cache.get(pattern)
        if cached is None:
            cached = pattern.canonical() == self.query
            self._match_cache[pattern] = cached
        return cached

    def filter(self, embedding: Embedding) -> bool:
        if self.induced:
            if embedding.num_vertices > self.query.num_vertices:
                return False
        elif embedding.num_edges > self.query.num_edges:
            return False
        return self._embeddable(embedding.pattern())

    def process(self, embedding: Embedding) -> None:
        pattern = embedding.pattern()
        if self._is_full_match(pattern):
            self.output(tuple(sorted(embedding.vertices)))

    def termination_filter(self, embedding: Embedding) -> bool:
        # A full-size embedding cannot grow into another match.
        if self.induced:
            return embedding.num_vertices >= self.query.num_vertices
        return embedding.num_edges >= self.query.num_edges


class GuidedMatching(Computation):
    """Plan-guided matching: the runtime does the filtering.

    Run with ``config.plan`` set to the same plan (:func:`run_matching`
    wires this up): every embedding reaching the user functions is a valid
    partial match by construction — the plan's per-step constraints
    subsume φ, and its symmetry restrictions subsume the canonicality
    check — so the computation only has to emit full-size matches.

    Outputs are ``tuple(sorted(vertices))`` like :class:`GraphMatching`,
    and the emitted multiset is identical to the exhaustive one: induced
    mode yields one mapping per matching vertex set, monomorphic mode one
    mapping per matching edge image (both are the orbit count the symmetry
    restrictions collapse to exactly one representative).
    """

    exploration_mode = VERTEX_EXPLORATION
    plan_compatible = True

    def __init__(self, plan: MatchingPlan):
        super().__init__()
        self.plan = plan

    def process(self, embedding: Embedding) -> None:
        if embedding.size == self.plan.num_steps:
            self.output(tuple(sorted(embedding.words)))

    def termination_filter(self, embedding: Embedding) -> bool:
        return embedding.size >= self.plan.num_steps


def run_matching(
    graph: LabeledGraph,
    query: Pattern,
    *,
    induced: bool = True,
    guided: bool = False,
    config: ArabesqueConfig | None = None,
    plan: MatchingPlan | None = None,
) -> RunResult:
    """Retrieve all matches of ``query`` in ``graph``.

    .. deprecated::
        Thin wrapper kept for compatibility — use the session facade
        instead: ``Miner(graph).match(query).run()`` (guided, the facade
        default) or ``...match(query).exhaustive().run()``.  The facade
        additionally caches compiled plans and step-0 state across
        queries on one graph.

    ``guided=False`` (the default here, and the oracle the guided path is
    validated against) runs the exhaustive :class:`GraphMatching`
    filter-process computation.  ``guided=True`` runs
    :class:`GuidedMatching` on the plan-guided runtime path.  Both modes
    emit one ``tuple(sorted(vertices))`` per match and agree on the
    multiset.  A caller-supplied ``config`` is reused with its ``plan``
    field forced to match the chosen mode; ``plan`` skips recompilation
    (guided mode only).
    """
    import warnings

    warnings.warn(
        "run_matching is deprecated; use "
        "repro.session.Miner(graph).match(query) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..session import Miner

    if not guided and plan is not None:
        raise ValueError(
            "a precompiled plan was supplied but guided=False; "
            "pass guided=True to run the plan-guided path"
        )
    request = Miner(graph).match(query, induced=induced)
    if config is not None:
        request.config(config)
    if guided:
        request.guided()
        if plan is not None:
            request.plan(plan)
    else:
        request.exhaustive()
    return request.run().raw


def match_vertex_sets(result: RunResult) -> list[tuple[int, ...]]:
    """A run's matches as a sorted list of sorted vertex tuples.

    Order-insensitive view for comparing guided and exhaustive runs
    (the two modes emit the same multiset in different orders).
    """
    return sorted(result.outputs)
