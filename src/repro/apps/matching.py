"""Graph matching as a filter-process application.

Section 2 of the paper: "Also related to graph mining is the problem of
graph matching, where a query pattern q is fixed, and one has to retrieve
all its matches in the input graph G. ... graph mining encompasses the
matching problem."  This application demonstrates that subsumption: the
filter keeps exactly the embeddings whose pattern is a (connected) subgraph
of the query, which is anti-monotone — once an embedding stops being
embeddable in the query, no extension can recover — and the process
function outputs the embeddings that match the whole query.

Matching a candidate's pattern against the query is a pattern-to-pattern
subgraph isomorphism; with two-level-style caching per quick pattern the
check runs once per distinct shape rather than once per embedding.
"""

from __future__ import annotations

from ..core.computation import Computation
from ..core.embedding import (
    EDGE_EXPLORATION,
    Embedding,
    VERTEX_EXPLORATION,
)
from ..core.pattern import Pattern
from ..graph import LabeledGraph
from ..isomorphism import SubgraphMatcher


def _pattern_as_graph(pattern: Pattern) -> LabeledGraph:
    edges = [(i, j) for i, j, _ in pattern.edges]
    edge_labels = [label for _, _, label in pattern.edges]
    return LabeledGraph(pattern.vertex_labels, edges, edge_labels)


def pattern_embeds_in(needle: Pattern, haystack: Pattern, induced: bool) -> bool:
    """Whether ``needle`` occurs as a subgraph of ``haystack``.

    ``induced=True`` requires an induced occurrence (vertex-based mode),
    ``False`` a monomorphism (edge-based mode).  Both patterns are tiny, so
    VF2 on the pattern graphs is instant.
    """
    if needle.num_vertices > haystack.num_vertices:
        return False
    if needle.num_edges > haystack.num_edges:
        return False
    matcher = SubgraphMatcher(
        needle.vertex_labels,
        needle.edge_dict(),
        _pattern_as_graph(haystack),
        induced=induced,
    )
    return matcher.exists()


class GraphMatching(Computation):
    """Retrieve every embedding of a fixed query pattern.

    Parameters
    ----------
    query:
        The pattern to search for (connected; vertex ids ``0..k-1``).
    induced:
        Vertex-induced semantics (matches must not have extra edges among
        their vertices) when True; edge-based monomorphism otherwise.
    """

    def __init__(self, query: Pattern, induced: bool = True):
        super().__init__()
        if query.num_vertices == 0:
            raise ValueError("query pattern must not be empty")
        self.query = query.canonical()
        self.induced = induced
        self.exploration_mode = (
            VERTEX_EXPLORATION if induced else EDGE_EXPLORATION
        )
        self._embeddable_cache: dict[Pattern, bool] = {}
        self._match_cache: dict[Pattern, bool] = {}

    def _embeddable(self, pattern: Pattern) -> bool:
        cached = self._embeddable_cache.get(pattern)
        if cached is None:
            cached = pattern_embeds_in(pattern, self.query, self.induced)
            self._embeddable_cache[pattern] = cached
        return cached

    def _is_full_match(self, pattern: Pattern) -> bool:
        cached = self._match_cache.get(pattern)
        if cached is None:
            cached = pattern.canonical() == self.query
            self._match_cache[pattern] = cached
        return cached

    def filter(self, embedding: Embedding) -> bool:
        if self.induced:
            if embedding.num_vertices > self.query.num_vertices:
                return False
        elif embedding.num_edges > self.query.num_edges:
            return False
        return self._embeddable(embedding.pattern())

    def process(self, embedding: Embedding) -> None:
        pattern = embedding.pattern()
        if self._is_full_match(pattern):
            self.output(tuple(sorted(embedding.vertices)))

    def termination_filter(self, embedding: Embedding) -> bool:
        # A full-size embedding cannot grow into another match.
        if self.induced:
            return embedding.num_vertices >= self.query.num_vertices
        return embedding.num_edges >= self.query.num_edges
