"""Transactional (multi-graph) FSM — the paper's section 2 note made real.

"The input dataset may comprise a collection of many graphs, or a single
large graph. ... any solution to the single input graph setting is easily
adapted to the multiple graph dataset case."  This module is that
adaptation: the collection is embedded into one disjoint-union graph, and
the support metric becomes *transactional* — the number of distinct member
graphs containing at least one embedding of the pattern (the gSpan setting,
where "finding only one instance of a pattern in a graph is sufficient").

Transactional support is anti-monotone (a super-pattern occurs in a subset
of the graphs its sub-patterns occur in), so the same α-pruning machinery
applies; only the aggregation value changes, from per-position vertex
domains to a set of graph ids.
"""

from __future__ import annotations

from typing import Sequence

from ..core.computation import Computation
from ..core.embedding import EDGE_EXPLORATION, Embedding
from ..core.pattern import Pattern
from ..core.results import RunResult
from ..graph import LabeledGraph


class GraphCollection:
    """A set of labeled graphs fused into one disjoint-union graph.

    ``union_graph`` is what the engine explores; ``graph_of(vertex)`` maps a
    union-graph vertex back to its member graph id.
    """

    def __init__(self, graphs: Sequence[LabeledGraph]):
        if not graphs:
            raise ValueError("collection must contain at least one graph")
        self.num_graphs = len(graphs)
        offsets: list[int] = []
        labels: list[int] = []
        edges: list[tuple[int, int]] = []
        edge_labels: list[int] = []
        base = 0
        for graph in graphs:
            offsets.append(base)
            labels.extend(graph.vertex_labels)
            for eid, u, v in graph.edge_iter():
                edges.append((base + u, base + v))
                edge_labels.append(graph.edge_label(eid))
            base += graph.num_vertices
        self._offsets = offsets
        self._total_vertices = base
        self.union_graph = LabeledGraph(
            labels, edges, edge_labels, name="graph-collection"
        )

    def graph_of(self, vertex: int) -> int:
        """Member graph id owning a union-graph vertex (binary search)."""
        low, high = 0, len(self._offsets) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._offsets[mid] <= vertex:
                low = mid
            else:
                high = mid - 1
        return low


class TidSet:
    """Aggregation value: the set of member-graph ids seen (transaction ids)."""

    __slots__ = ("_ids",)

    def __init__(self, ids: frozenset[int]):
        self._ids = frozenset(ids)

    @classmethod
    def single(cls, graph_id: int) -> "TidSet":
        return cls(frozenset((graph_id,)))

    @classmethod
    def merge_all(cls, values: list["TidSet"]) -> "TidSet":
        merged: set[int] = set()
        for value in values:
            merged |= value._ids
        return cls(frozenset(merged))

    @property
    def support(self) -> int:
        return len(self._ids)

    def wire_size(self) -> int:
        return 4 + 4 * len(self._ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TidSet):
            return NotImplemented
        return self._ids == other._ids

    def __hash__(self) -> int:
        return hash(self._ids)

    def __repr__(self) -> str:
        return f"TidSet({sorted(self._ids)})"


class TransactionalFSM(Computation):
    """gSpan-style FSM over a graph collection.

    A pattern is frequent when it occurs in at least ``support_threshold``
    member graphs.  Run it on ``collection.union_graph``.
    """

    exploration_mode = EDGE_EXPLORATION

    def __init__(
        self,
        collection: GraphCollection,
        support_threshold: int,
        max_edges: int | None = None,
    ):
        super().__init__()
        if support_threshold < 1:
            raise ValueError("support_threshold must be >= 1")
        if max_edges is not None and max_edges < 1:
            raise ValueError("max_edges must be >= 1 when given")
        self.collection = collection
        self.support_threshold = support_threshold
        self.max_edges = max_edges

    def filter(self, embedding: Embedding) -> bool:
        if self.max_edges is None:
            return True
        return embedding.num_edges <= self.max_edges

    def process(self, embedding: Embedding) -> None:
        graph_id = self.collection.graph_of(embedding.vertices[0])
        self.map(self.pattern(embedding), TidSet.single(graph_id))

    def reduce(self, key, values: list[TidSet]) -> TidSet:
        return TidSet.merge_all(values)

    def aggregation_filter(self, embedding: Embedding) -> bool:
        tids = self.read_aggregate(self.pattern(embedding))
        return tids is not None and tids.support >= self.support_threshold

    def termination_filter(self, embedding: Embedding) -> bool:
        return self.max_edges is not None and embedding.num_edges >= self.max_edges


def transactional_frequent_patterns(
    result: RunResult, support_threshold: int
) -> dict[Pattern, int]:
    """Post-process: canonical pattern -> number of supporting graphs."""
    frequent: dict[Pattern, int] = {}
    for pattern, tids in result.final_aggregates.items():
        if not isinstance(pattern, Pattern) or not isinstance(tids, TidSet):
            continue
        if tids.support >= support_threshold:
            frequent[pattern] = tids.support
    return frequent
