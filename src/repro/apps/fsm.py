"""Frequent subgraph mining — Figure 4a of the paper, in two strategies.

**Exhaustive** (:class:`FrequentSubgraphMining`, the oracle): edge-based
exploration where ``process`` maps each embedding's domains to its
pattern's reducer, ``reduce`` merges domains, ``aggregation_filter``
drops embeddings whose pattern's minimum image-based support is below
the threshold, and ``aggregation_process`` outputs the embeddings of
frequent patterns.  One run covers every pattern at once, but the
exploration is pattern-agnostic: every embedding of every surviving
pattern is extended in every direction.

**Plan-guided** (:func:`run_guided_fsm`, the fast path): GraMi-style
level-wise pattern growth where each level's surviving candidates are
batched into ONE multi-query :class:`~repro.plan.dag.PlanDAG` (shared
prefix exploration with prefix-affine matching orders; parent-domain
whitelists pushed down per leaf via :func:`repro.plan.dag.restrict_dag`)
and evaluated in a single guided engine run per level:
:class:`DagPatternDomains` accumulates one
:class:`~repro.apps.support.Domain` per (match, accepting leaf), and the
aggregation channel demultiplexes the merged domains by leaf pattern —
no full embedding stores are materialized and no per-candidate engine
runs are paid.  Candidate generation, DAG compilation helpers, and the
orbit-folding support math live in :mod:`repro.plan.fsm_guide`.  Both
strategies return identical frequent patterns and supports; the session
facade (``Miner.fsm``) runs guided by default with ``.exhaustive()`` as
the opt-out.

Anti-monotonicity holds because MNI support never grows under extension
(:mod:`repro.apps.support`), so α-pruned subtrees (exhaustive) and
non-extended infrequent candidates (guided) can never hide a frequent
pattern.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..bsp.metrics import RunMetrics
from ..core.computation import Computation
from ..core.config import ArabesqueConfig
from ..core.embedding import (
    EDGE_EXPLORATION,
    VERTEX_EXPLORATION,
    Embedding,
)
from ..core.pattern import Pattern
from ..core.results import RunResult, StepStats
from ..core.storage import LIST_STORAGE
from ..graph import LabeledGraph
from ..plan.dag import PlanDAG, bound_stepper, restrict_dag
from ..plan.fsm_guide import (
    DagProvider,
    default_dag_provider,
    has_infrequent_subpattern,
    label_triples,
    one_edge_extensions_with_maps,
    prewarm_level_dag,
    single_edge_domains,
)
from ..plan.guided import match_mapping
from ..plan.planner import MatchingPlan
from .support import Domain


@dataclass(frozen=True)
class FrequentEmbedding:
    """One output row: an embedding of a frequent pattern."""

    pattern: Pattern
    edge_words: tuple[int, ...]
    support: int


class FrequentSubgraphMining(Computation):
    """FSM with MNI support on edge-induced embeddings.

    Parameters
    ----------
    support_threshold:
        The paper's θ: patterns with ``support >= support_threshold`` are
        frequent.
    max_edges:
        Optional cap on embedding size in edges (the paper's "MS": e.g.
        FSM-CiteSeer in Table 3 uses S=220, MS=7).  ``None`` explores until
        no pattern is frequent.
    """

    exploration_mode = EDGE_EXPLORATION

    def __init__(self, support_threshold: int, max_edges: int | None = None):
        super().__init__()
        if support_threshold < 1:
            raise ValueError("support_threshold must be >= 1")
        if max_edges is not None and max_edges < 1:
            raise ValueError("max_edges must be >= 1 when given")
        self.support_threshold = support_threshold
        self.max_edges = max_edges

    # -- φ and π ---------------------------------------------------------
    def filter(self, embedding: Embedding) -> bool:
        if self.max_edges is None:
            return True
        return embedding.num_edges <= self.max_edges

    def process(self, embedding: Embedding) -> None:
        self.map(self.pattern(embedding), Domain.from_embedding(embedding))

    # -- aggregation ------------------------------------------------------
    def reduce(self, key, domains: list[Domain]) -> Domain:
        return Domain.merge_all(domains)

    def pattern_support(self, embedding: Embedding) -> int | None:
        """Support of the embedding's pattern from the generation step's
        aggregates (None before aggregates exist)."""
        quick = self.pattern(embedding)
        merged_domain = self.read_aggregate(quick)
        if merged_domain is None:
            return None
        canonical = quick.canonical()
        return merged_domain.support(canonical.orbits())

    def aggregation_filter(self, embedding: Embedding) -> bool:
        support = self.pattern_support(embedding)
        return support is not None and support >= self.support_threshold

    def aggregation_process(self, embedding: Embedding) -> None:
        support = self.pattern_support(embedding)
        if support is None:  # pragma: no cover - α guarantees presence
            return
        self.output(
            FrequentEmbedding(
                pattern=self.pattern(embedding).canonical(),
                edge_words=embedding.words,
                support=support,
            )
        )

    # -- termination -------------------------------------------------------
    def termination_filter(self, embedding: Embedding) -> bool:
        return self.max_edges is not None and embedding.num_edges >= self.max_edges


class GuidedPatternDomains(Computation):
    """Discover one candidate pattern's embeddings plan-guided and
    accumulate its MNI domains from the matches.

    Run with ``config.plan`` set to the same plan (:func:`run_guided_fsm`
    wires this up).  Every full-size embedding is a symmetry-unique
    monomorphism representative by construction, so ``process`` only has
    to translate the plan-ordered words into a match mapping and map a
    singleton :class:`~repro.apps.support.Domain` to the candidate's
    canonical pattern — the aggregation channel merges domains per worker
    and across workers, and the merged domain lands in
    ``final_aggregates[plan.pattern]``.  No per-embedding output is
    emitted and nothing survives the final store, so the run never
    materializes the embedding set.

    Support read-out folds the canonical pattern's automorphism orbits
    (:meth:`Domain.support`), which restores the images the symmetry
    restrictions deduplicated away (see :mod:`repro.plan.fsm_guide`).
    """

    exploration_mode = VERTEX_EXPLORATION
    plan_compatible = True

    def __init__(self, plan: MatchingPlan):
        super().__init__()
        if plan.induced:
            raise ValueError(
                "FSM candidate plans must use monomorphic semantics "
                "(compile with induced=False); edge-based embeddings are "
                "monomorphism images"
            )
        self.plan = plan

    def process(self, embedding: Embedding) -> None:
        if embedding.size != self.plan.num_steps:
            return
        mapping = match_mapping(self.plan, embedding.words)
        self.note_domain_hits(len(mapping))
        self.map(self.plan.pattern, Domain.from_mapping(mapping))

    def reduce(self, key, domains: list[Domain]) -> Domain:
        return Domain.merge_all(domains)

    def termination_filter(self, embedding: Embedding) -> bool:
        return embedding.size >= self.plan.num_steps


class DagPatternDomains(Computation):
    """Discover one candidate *batch*'s embeddings through a multi-query
    DAG and accumulate per-candidate MNI domains in a single run.

    Run with ``config.plan`` set to the same DAG (:func:`run_guided_fsm`
    wires this up).  The runtime advances each embedding against the
    whole batch at once; ``process`` maps one singleton
    :class:`~repro.apps.support.Domain` per accepting leaf, keyed by that
    leaf's canonical pattern — so the aggregation channel demultiplexes
    the merged domains by leaf, and ``final_aggregates[pattern]`` reads
    exactly as it did with one engine run per candidate.  Under
    monomorphic semantics one embedding can be an accepting leaf of
    several siblings (its extra graph edges belong to a denser
    candidate's edge set); each gets its own domain contribution, exactly
    as its solo run would have found.  Support read-out folds each
    canonical pattern's automorphism orbits (:meth:`Domain.support`),
    restoring the images symmetry breaking deduplicated.
    """

    exploration_mode = VERTEX_EXPLORATION
    plan_compatible = True

    def __init__(self, dag: PlanDAG):
        super().__init__()
        if dag.induced:
            raise ValueError(
                "FSM candidate DAGs must use monomorphic semantics "
                "(compile with induced=False); edge-based embeddings are "
                "monomorphism images"
            )
        self.plan = dag

    def process(self, embedding: Embedding) -> None:
        words = embedding.words
        stepper = bound_stepper(self, self.plan, embedding.graph)
        for member in stepper.accepting(words):
            plan = self.plan.plans[member]
            mapping = match_mapping(plan, words)
            self.note_domain_hits(len(mapping))
            self.map(plan.pattern, Domain.from_mapping(mapping))

    def reduce(self, key, domains: list[Domain]) -> Domain:
        return Domain.merge_all(domains)

    def termination_filter(self, embedding: Embedding) -> bool:
        stepper = bound_stepper(self, self.plan, embedding.graph)
        return not stepper.extendable(embedding.words)


@dataclass(frozen=True)
class GuidedFSMLevel:
    """Per-level accounting of one guided FSM run (level = pattern edges)."""

    level: int
    #: Candidate patterns considered at this level (evaluated + pruned).
    candidates: int
    #: Candidates dismissed without any engine run: an Apriori-infrequent
    #: subpattern, or an empty pushed-down domain (zero matches possible).
    pruned: int
    #: Candidates found frequent (the next level grows from these).
    frequent: int
    #: Extension candidates generated by the level's batched guided run —
    #: the machine-independent cost metric the planner bench compares
    #: (shared sibling prefixes are generated, and counted, once).
    candidates_generated: int


@dataclass
class GuidedFSMResult:
    """Everything a plan-guided FSM run produces.

    ``combined`` is the engine-record view over the per-level batched
    runs: steps and metrics concatenated, ``final_aggregates`` holding
    each evaluated candidate's merged :class:`Domain` under its canonical
    pattern (demuxed by accepting leaf) — exactly the surface
    :func:`frequent_patterns` and
    :class:`~repro.session.results.FSMResult` already consume, and the
    byte-identity surface (``combined.canonical_signature()``) the
    cross-backend tests compare.
    """

    support_threshold: int
    max_edges: int | None
    frequent: dict[Pattern, int] = field(default_factory=dict)
    levels: list[GuidedFSMLevel] = field(default_factory=list)
    #: Engine runs executed (== levels with at least one candidate
    #: surviving the Apriori/empty-whitelist prunes — one batched
    #: multi-query run per level, not one per candidate).
    engine_runs: int = 0
    combined: RunResult = field(default_factory=RunResult)

    @property
    def total_candidates(self) -> int:
        """Extension candidates generated across all guided runs."""
        return self.combined.total_candidates

    def canonical_signature(self, ignore_output_order: bool = False) -> bytes:
        """Deterministic byte serialization of the semantic results."""
        return self.combined.canonical_signature(ignore_output_order)


def _fold_run(combined: RunResult, run: RunResult) -> None:
    """Concatenate one candidate run's record into the combined view."""
    combined.num_outputs += run.num_outputs
    combined.outputs.extend(run.outputs)
    for stats in run.steps:
        combined.steps.append(
            dataclasses.replace(stats, step=len(combined.steps))
        )
    assert combined.metrics is not None and run.metrics is not None
    for superstep in run.metrics.supersteps:
        superstep.superstep = len(combined.metrics.supersteps)
        combined.metrics.supersteps.append(superstep)
    combined.wall_seconds += run.wall_seconds
    combined.pattern_requests += run.pattern_requests
    combined.quick_patterns += run.quick_patterns
    combined.canonical_patterns += run.canonical_patterns
    combined.isomorphism_runs += run.isomorphism_runs
    combined.peak_storage_bytes = max(
        combined.peak_storage_bytes, run.peak_storage_bytes
    )


def run_guided_fsm(
    graph: LabeledGraph,
    support_threshold: int,
    max_edges: int | None = None,
    *,
    config: ArabesqueConfig | None = None,
    dag_provider: DagProvider | None = None,
    catalog=None,
) -> GuidedFSMResult:
    """Plan-guided FSM: level-wise pattern growth, batched guided discovery.

    Level k evaluates the canonical one-edge extensions of level k-1's
    frequent patterns (level 1: one candidate per label triple class).
    All of a level's surviving candidates are compiled into ONE
    multi-query plan DAG — sibling candidates share their common
    subpattern's exploration prefix — with each candidate's pushed-down
    parent-domain whitelists overlaid per leaf
    (:func:`repro.plan.dag.restrict_dag`), and evaluated in a single
    guided engine run; MNI supports are read from the per-leaf
    demultiplexed domains.  Returns identical frequent patterns and
    supports to the exhaustive :class:`FrequentSubgraphMining` +
    :func:`frequent_patterns` pipeline and to the GraMi baseline,
    byte-identically across execution backends.

    ``config`` carries the execution knobs (backend, workers, storage —
    ``None`` defaults to list storage, the guided sweet spot); its
    ``plan``/output fields are overridden per level run.
    ``dag_provider`` supplies compiled DAGs for canonical candidate
    batches (a session passes its cross-query DAG cache; default
    compiles with a run-local memo) — whitelists are overlaid per run on
    top of the cached structure, so caching never recompiles orders or
    symmetry.  No step-0 universe is involved: every level run draws its
    step 0 from the DAG's own root pools (label indexes or pushed-down
    whitelists).  ``catalog`` (a :class:`~repro.plan.stats.GraphCatalog`
    of ``graph``) supplies the level-1 label-triple alphabet from cached
    statistics instead of an edge-list rescan; sessions pass their
    cached catalog.
    """
    if support_threshold < 1:
        raise ValueError("support_threshold must be >= 1")
    if max_edges is not None and max_edges < 1:
        raise ValueError("max_edges must be >= 1 when given")
    base = config if config is not None else ArabesqueConfig(storage=LIST_STORAGE)
    provide = dag_provider if dag_provider is not None else default_dag_provider()

    # One batched engine run per level; import here mirrors the engine's
    # own lazy runtime import (runtime -> core.config would otherwise
    # cycle).
    from ..core.engine import run_computation
    from ..runtime.base import make_backend

    result = GuidedFSMResult(
        support_threshold=support_threshold, max_edges=max_edges
    )
    result.combined.metrics = RunMetrics(num_workers=base.num_workers)
    triples = label_triples(graph, catalog=catalog)

    def grow_level(
        frequent_now: list[tuple[Pattern, Domain]],
    ) -> list[tuple[Pattern, dict[int, frozenset[int]]]]:
        """Next level's candidates with each parent's orbit-folded
        domains pushed down onto the positions its vertices become in
        the extension; a candidate reached through several parents (or
        several maps) gets the intersection — every map is an
        independent sound restriction."""
        next_allowed: dict[Pattern, dict[int, frozenset[int]]] = {}
        for pattern, domain in frequent_now:
            folded = domain.orbit_folded(pattern.orbits())
            for extension, parent_map in one_edge_extensions_with_maps(
                pattern, triples
            ):
                whitelists = next_allowed.setdefault(extension, {})
                for vertex, position in enumerate(parent_map):
                    previous = whitelists.get(position)
                    whitelists[position] = (
                        folded[vertex]
                        if previous is None
                        else previous & folded[vertex]
                    )
        return [
            (extension, next_allowed[extension])
            for extension in sorted(
                next_allowed, key=lambda p: (p.vertex_labels, p.edges)
            )
        ]

    # Level 1: single-edge supports in closed form — one pass over the
    # edges (metered as one examined candidate per edge), no engine runs.
    frequent_now: list[tuple[Pattern, Domain]] = []
    level_one = single_edge_domains(graph)
    for pattern, sets in level_one:
        domain = Domain(sets)
        result.combined.final_aggregates[pattern] = domain
        support = domain.support(pattern.orbits())
        if support >= support_threshold:
            result.frequent[pattern] = support
            frequent_now.append((pattern, domain))
    result.levels.append(
        GuidedFSMLevel(
            level=1,
            candidates=len(level_one),
            pruned=0,
            frequent=len(frequent_now),
            candidates_generated=graph.num_edges,
        )
    )
    # The edge scan enters the combined record as one synthetic step so
    # ``combined.total_candidates`` meters the whole strategy (one
    # examined candidate per edge — the same accounting the exhaustive
    # path's step 0 gets for the same scan).
    result.combined.steps.append(
        StepStats(step=0, candidates_generated=graph.num_edges)
    )
    if not frequent_now or max_edges == 1:
        return result

    pending = grow_level(frequent_now)
    backend = make_backend(base)
    try:
        level = 2
        while pending and (max_edges is None or level <= max_edges):
            frequent_now = []
            level_candidates = 0
            pruned = 0
            evaluated: list[tuple[Pattern, dict[int, frozenset[int]]]] = []
            for pattern, allowed in pending:
                if any(not images for images in allowed.values()) or (
                    has_infrequent_subpattern(pattern, result.frequent)
                ):
                    # Zero possible matches, or an infrequent subpattern
                    # (MNI anti-monotonicity) — never reaches the engine.
                    pruned += 1
                    continue
                evaluated.append((pattern, allowed))
            if evaluated:
                # One engine run for the whole level: the batch DAG shares
                # sibling prefixes, the per-leaf whitelists push each
                # candidate's parent domains down, and the aggregation
                # channel demuxes the merged MNI domains by leaf pattern.
                # The restricted DAG is new per level, so its fused-kernel
                # mask bundle is warmed here, pre-backend.
                dag = prewarm_level_dag(
                    restrict_dag(
                        provide(tuple(pattern for pattern, _ in evaluated)),
                        dict(evaluated),
                    ),
                    graph,
                )
                run_config = dataclasses.replace(
                    base, plan=dag, collect_outputs=False, output_limit=None
                )
                run = run_computation(
                    graph,
                    DagPatternDomains(dag),
                    run_config,
                    backend=backend,
                )
                result.engine_runs += 1
                level_candidates = run.total_candidates
                _fold_run(result.combined, run)
                for pattern, _ in evaluated:
                    domain = run.final_aggregates.get(pattern)
                    if domain is not None:
                        result.combined.final_aggregates[pattern] = domain
                    support = (
                        domain.support(pattern.orbits())
                        if domain is not None
                        else 0
                    )
                    if support >= support_threshold:
                        result.frequent[pattern] = support
                        frequent_now.append((pattern, domain))
            result.levels.append(
                GuidedFSMLevel(
                    level=level,
                    candidates=len(pending),
                    pruned=pruned,
                    frequent=len(frequent_now),
                    candidates_generated=level_candidates,
                )
            )
            if not frequent_now:
                break
            if max_edges is not None and level >= max_edges:
                # The bound is reached — growing (and canonicalizing)
                # the next level's candidates would be discarded work.
                break
            pending = grow_level(frequent_now)
            level += 1
    finally:
        backend.close()
    return result


def frequent_patterns(
    result: RunResult, support_threshold: int
) -> dict[Pattern, int]:
    """Post-process a run: canonical pattern -> MNI support, frequent only.

    Works off the run's accumulated pattern aggregates, so it includes the
    deepest exploration level even when a ``max_edges`` termination filter
    skipped the α/β pass for it.
    """
    frequent: dict[Pattern, int] = {}
    for pattern, domain in result.final_aggregates.items():
        if not isinstance(pattern, Pattern) or not isinstance(domain, Domain):
            continue
        support = domain.support(pattern.orbits())
        if support >= support_threshold:
            frequent[pattern] = support
    return frequent
