"""Frequent subgraph mining — Figure 4a of the paper.

The first distributed FSM on a single large graph: edge-based exploration
where ``process`` maps each embedding's domains to its pattern's reducer,
``reduce`` merges domains, ``aggregation_filter`` drops embeddings whose
pattern's minimum image-based support is below the threshold, and
``aggregation_process`` outputs the embeddings of frequent patterns.

Anti-monotonicity holds because MNI support never grows under extension
(:mod:`repro.apps.support`), so α-pruned subtrees can never contain a
frequent pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.computation import Computation
from ..core.embedding import EDGE_EXPLORATION, Embedding
from ..core.pattern import Pattern
from ..core.results import RunResult
from .support import Domain


@dataclass(frozen=True)
class FrequentEmbedding:
    """One output row: an embedding of a frequent pattern."""

    pattern: Pattern
    edge_words: tuple[int, ...]
    support: int


class FrequentSubgraphMining(Computation):
    """FSM with MNI support on edge-induced embeddings.

    Parameters
    ----------
    support_threshold:
        The paper's θ: patterns with ``support >= support_threshold`` are
        frequent.
    max_edges:
        Optional cap on embedding size in edges (the paper's "MS": e.g.
        FSM-CiteSeer in Table 3 uses S=220, MS=7).  ``None`` explores until
        no pattern is frequent.
    """

    exploration_mode = EDGE_EXPLORATION

    def __init__(self, support_threshold: int, max_edges: int | None = None):
        super().__init__()
        if support_threshold < 1:
            raise ValueError("support_threshold must be >= 1")
        if max_edges is not None and max_edges < 1:
            raise ValueError("max_edges must be >= 1 when given")
        self.support_threshold = support_threshold
        self.max_edges = max_edges

    # -- φ and π ---------------------------------------------------------
    def filter(self, embedding: Embedding) -> bool:
        if self.max_edges is None:
            return True
        return embedding.num_edges <= self.max_edges

    def process(self, embedding: Embedding) -> None:
        self.map(self.pattern(embedding), Domain.from_embedding(embedding))

    # -- aggregation ------------------------------------------------------
    def reduce(self, key, domains: list[Domain]) -> Domain:
        return Domain.merge_all(domains)

    def pattern_support(self, embedding: Embedding) -> int | None:
        """Support of the embedding's pattern from the generation step's
        aggregates (None before aggregates exist)."""
        quick = self.pattern(embedding)
        merged_domain = self.read_aggregate(quick)
        if merged_domain is None:
            return None
        canonical = quick.canonical()
        return merged_domain.support(canonical.orbits())

    def aggregation_filter(self, embedding: Embedding) -> bool:
        support = self.pattern_support(embedding)
        return support is not None and support >= self.support_threshold

    def aggregation_process(self, embedding: Embedding) -> None:
        support = self.pattern_support(embedding)
        if support is None:  # pragma: no cover - α guarantees presence
            return
        self.output(
            FrequentEmbedding(
                pattern=self.pattern(embedding).canonical(),
                edge_words=embedding.words,
                support=support,
            )
        )

    # -- termination -------------------------------------------------------
    def termination_filter(self, embedding: Embedding) -> bool:
        return self.max_edges is not None and embedding.num_edges >= self.max_edges


def frequent_patterns(
    result: RunResult, support_threshold: int
) -> dict[Pattern, int]:
    """Post-process a run: canonical pattern -> MNI support, frequent only.

    Works off the run's accumulated pattern aggregates, so it includes the
    deepest exploration level even when a ``max_edges`` termination filter
    skipped the α/β pass for it.
    """
    frequent: dict[Pattern, int] = {}
    for pattern, domain in result.final_aggregates.items():
        if not isinstance(pattern, Pattern) or not isinstance(domain, Domain):
            continue
        support = domain.support(pattern.orbits())
        if support >= support_threshold:
            frequent[pattern] = support
    return frequent
